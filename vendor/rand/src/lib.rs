//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so this in-tree stand-in
//! implements exactly the surface the workspace uses (see vendor/README.md).
//! The generator is SplitMix64: statistically fine for tests and workload
//! generation, deterministic per seed, and **not** cryptographically secure.

#![forbid(unsafe_code)]

/// Core random-number-generation trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be sampled uniformly over their whole domain
/// (the `Standard` distribution of real rand).
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128 - low as i128) as u128 + 1;
                // Modulo bias is negligible for test workloads.
                let v = ((rng.next_u64() as u128) % span) as i128 + low as i128;
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + OneDown> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_inclusive(rng, self.start, self.end.one_down())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Helper: the predecessor of a value (to convert exclusive to inclusive ends).
pub trait OneDown {
    /// `self - 1`.
    fn one_down(self) -> Self;
}
macro_rules! impl_one_down {
    ($($t:ty),* $(,)?) => {$(
        impl OneDown for $t {
            fn one_down(self) -> Self { self - 1 }
        }
    )*};
}
impl_one_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
    /// Sample a bool with probability `p` of being true.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64; the real crate uses ChaCha12).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.), public domain reference constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The generator behind [`crate::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use std::sync::atomic::{AtomicU64, Ordering};

static THREAD_RNG_COUNTER: AtomicU64 = AtomicU64::new(0x5EED_0000_0000_0001);

/// A freshly seeded generator (process-unique, not thread-cached like real rand).
pub fn thread_rng() -> rngs::ThreadRng {
    let n = THREAD_RNG_COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(n ^ (t << 17)))
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly choose a reference to one element (None if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = rngs::StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = rngs::StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should not produce identity");
    }
}
