//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the surface used by this workspace's property tests:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! `any::<T>()`, ranges and tuples as strategies, `Just`, `prop_oneof!`,
//! `collection::{vec, btree_map}`, the `prop_assert*!`/`prop_assume!`
//! macros and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (derived from the test name) and there is **no
//! shrinking** — a failure panics with the case number so it can be
//! replayed deterministically.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use rand as __rand;

pub use arbitrary::any;

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic seed for a named test: FNV-1a over the name.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Generate the body of a property test: run `cases` iterations, each with
/// freshly generated inputs. No shrinking; the failing case index is
/// reported via the panic message of the inner assertion macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Closure so that prop_assume! can skip a case via `return`.
                let mut __one_case = || { $body };
                __one_case();
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Uniformly choose among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a property (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
