//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy for `Vec<T>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = rng.gen_range(self.size.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` of values from `element`, with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeMap<K, V>` with entry count drawn from `size`.
pub struct BTreeMapStrategy<KS, VS> {
    keys: KS,
    values: VS,
    size: std::ops::Range<usize>,
}

impl<KS, VS> Strategy for BTreeMapStrategy<KS, VS>
where
    KS: Strategy,
    KS::Value: Ord,
    VS: Strategy,
{
    type Value = std::collections::BTreeMap<KS::Value, VS::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = rng.gen_range(self.size.clone());
        let mut map = std::collections::BTreeMap::new();
        // Duplicate keys collapse, exactly like real proptest's btree_map;
        // bound the attempts so tiny key domains cannot loop forever.
        for _ in 0..target.saturating_mul(4) {
            if map.len() >= target {
                break;
            }
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}

/// `BTreeMap` with keys/values from the given strategies and size in `size`.
pub fn btree_map<KS, VS>(
    keys: KS,
    values: VS,
    size: std::ops::Range<usize>,
) -> BTreeMapStrategy<KS, VS>
where
    KS: Strategy,
    KS::Value: Ord,
    VS: Strategy,
{
    BTreeMapStrategy { keys, values, size }
}
