//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform};

/// A recipe for generating values of some type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe inner trait backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies (from `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of options.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// Ranges are strategies over their element type.
impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + rand::OneDown + 'static,
    std::ops::Range<T>: Clone + SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + 'static,
    std::ops::RangeInclusive<T>: Clone + SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}
