//! Test-runner configuration.

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this subset keeps that so tests
        // that omit a config get comparable coverage.
        ProptestConfig { cases: 256 }
    }
}
