//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl Arbitrary for () {
    fn arbitrary(_rng: &mut StdRng) -> Self {}
}

/// Fixed-size arrays of arbitrary elements (e.g. `[u8; 16]` keys).
impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )+};
}
impl_arbitrary_tuple!((A), (A, B), (A, B, C), (A, B, C, D));

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over the whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
