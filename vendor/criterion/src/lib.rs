//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Supports the shape used by `crates/bench/benches/engine.rs`:
//! `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`] and
//! [`Bencher::iter`]. Timing is a simple wall-clock mean over a fixed
//! iteration count (no warm-up statistics, outlier analysis or plotting).
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! targets) each benchmark body runs exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Prevent the optimiser from discarding a value (best-effort, safe-code
/// variant of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the (harness = false) binary with `--bench`;
        // `cargo test` invokes it bare or with `--test`. Only measure in the
        // former case — everything else is a single-iteration smoke run.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            test_mode: !bench_mode,
            iters: 10,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: if self.test_mode { 1 } else { self.iters },
            elapsed_ns: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            let per_iter = b.elapsed_ns / b.iters.max(1) as u128;
            println!("{name:<40} {per_iter:>12} ns/iter ({} iters)", b.iters);
        }
        self
    }
}

/// Passed to each benchmark closure; times the body of [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `f` repeatedly, timing the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Define a benchmark group: a function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
