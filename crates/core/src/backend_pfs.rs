//! The *trusted* WASI file-system backend: every WASI file maps to an
//! Intel-Protected-FS file (paper §IV-D). Data leaving the enclave is
//! ciphertext; integrity is verified on every read.

use std::collections::HashMap;
use std::sync::Arc;

use twine_pfs::{PfsError, PfsMode, PfsOptions, PfsProfiler, SgxFile};
use twine_sgx::Enclave;
use twine_wasi::{Errno, FsBackend, WasiFile};

use crate::shared_store::SharedStorage;

fn map_err(e: &PfsError) -> Errno {
    match e {
        PfsError::Tampered(_) => Errno::Io,
        PfsError::Io(_) => Errno::Io,
        PfsError::Range(_) => Errno::Inval,
    }
}

/// Trusted backend over `twine-pfs` with one storage array per path.
pub struct PfsBackend {
    enclave: Option<Arc<Enclave>>,
    mode: PfsMode,
    cache_nodes: usize,
    profiler: Option<PfsProfiler>,
    files: HashMap<String, SharedStorage>,
}

impl PfsBackend {
    /// New backend. When `enclave` is given, file keys are derived from the
    /// enclave identity (§IV-E automatic key generation) and storage I/O is
    /// charged as OCALLs.
    #[must_use]
    pub fn new(
        enclave: Option<Arc<Enclave>>,
        mode: PfsMode,
        cache_nodes: usize,
        profiler: Option<PfsProfiler>,
    ) -> Self {
        Self {
            enclave,
            mode,
            cache_nodes,
            profiler,
            files: HashMap::new(),
        }
    }

    fn file_key(&self, path: &str) -> [u8; 16] {
        match &self.enclave {
            Some(e) => e.get_key(twine_crypto::kdf::KeyName::ProtectedFs, path.as_bytes()),
            None => {
                // Stand-alone mode: deterministic per-path key.
                let d = twine_crypto::sha256::Sha256::digest(path.as_bytes());
                d[..16].try_into().expect("16 bytes")
            }
        }
    }

    fn options(&self) -> PfsOptions {
        PfsOptions {
            mode: self.mode,
            cache_nodes: self.cache_nodes,
            enclave: self.enclave.clone(),
            profiler: self.profiler.clone(),
            journal: false,
        }
    }

    /// Ciphertext footprint across all files (bytes).
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.files.values().map(SharedStorage::stored_bytes).sum()
    }

    /// Access a file's untrusted storage (tamper tests / inspection).
    #[must_use]
    pub fn storage_of(&self, path: &str) -> Option<SharedStorage> {
        self.files.get(path).cloned()
    }
}

struct PfsWasiFile {
    inner: SgxFile<SharedStorage>,
}

impl WasiFile for PfsWasiFile {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, Errno> {
        self.inner.read(buf).map_err(|e| map_err(&e))
    }

    fn write(&mut self, buf: &[u8]) -> Result<usize, Errno> {
        self.inner.write(buf).map_err(|e| map_err(&e))
    }

    fn seek(&mut self, pos: u64) -> Result<u64, Errno> {
        self.inner.seek(pos).map_err(|e| map_err(&e))
    }

    fn tell(&self) -> u64 {
        self.inner.tell()
    }

    fn size(&self) -> Result<u64, Errno> {
        Ok(self.inner.size())
    }

    fn set_size(&mut self, size: u64) -> Result<(), Errno> {
        self.inner.set_size(size).map_err(|e| map_err(&e))
    }

    fn sync(&mut self) -> Result<(), Errno> {
        self.inner.flush().map_err(|e| map_err(&e))
    }
}

impl Drop for PfsWasiFile {
    fn drop(&mut self) {
        // Persist on close, like sgx_fclose.
        let _ = self.inner.flush();
    }
}

impl FsBackend for PfsBackend {
    fn open(
        &mut self,
        path: &str,
        create: bool,
        truncate: bool,
    ) -> Result<Box<dyn WasiFile>, Errno> {
        let key = self.file_key(path);
        let known = self.files.contains_key(path);
        if !create && !known {
            return Err(Errno::Noent);
        }
        let storage = self
            .files
            .entry(path.to_string())
            .or_default()
            .clone();
        let opts = self.options();
        let inner = if !known || truncate {
            SgxFile::create(storage, key, opts).map_err(|e| map_err(&e))?
        } else {
            SgxFile::open(storage, key, opts).map_err(|e| map_err(&e))?
        };
        Ok(Box::new(PfsWasiFile { inner }))
    }

    fn exists(&mut self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    fn filesize(&mut self, path: &str) -> Result<u64, Errno> {
        let storage = self.files.get(path).ok_or(Errno::Noent)?.clone();
        let key = self.file_key(path);
        let f = SgxFile::open(storage, key, self.options()).map_err(|e| map_err(&e))?;
        Ok(f.size())
    }

    fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        self.files.remove(path).map(|_| ()).ok_or(Errno::Noent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twine_pfs::DEFAULT_CACHE_NODES;

    fn backend() -> PfsBackend {
        PfsBackend::new(None, PfsMode::Intel, DEFAULT_CACHE_NODES, None)
    }

    #[test]
    fn create_write_reopen() {
        let mut b = backend();
        {
            let mut f = b.open("/data/x.db", true, false).unwrap();
            f.write(b"persisted through pfs").unwrap();
            f.sync().unwrap();
        }
        assert!(b.exists("/data/x.db"));
        assert_eq!(b.filesize("/data/x.db").unwrap(), 21);
        let mut f = b.open("/data/x.db", false, false).unwrap();
        let mut buf = [0u8; 21];
        f.read(&mut buf).unwrap();
        assert_eq!(&buf, b"persisted through pfs");
    }

    #[test]
    fn missing_file_noent() {
        let mut b = backend();
        assert!(b.open("/data/nope", false, false).is_err());
        assert_eq!(b.filesize("/data/nope").err(), Some(Errno::Noent));
    }

    #[test]
    fn truncate_clears() {
        let mut b = backend();
        {
            let mut f = b.open("/d/t", true, false).unwrap();
            f.write(b"old contents").unwrap();
        }
        let f = b.open("/d/t", true, true).unwrap();
        assert_eq!(f.size().unwrap(), 0);
    }

    #[test]
    fn unlink_removes() {
        let mut b = backend();
        b.open("/d/u", true, false).unwrap();
        b.unlink("/d/u").unwrap();
        assert!(!b.exists("/d/u"));
        assert_eq!(b.unlink("/d/u").err(), Some(Errno::Noent));
    }

    #[test]
    fn storage_holds_only_ciphertext() {
        let mut b = backend();
        {
            let mut f = b.open("/d/s", true, false).unwrap();
            f.write(b"THE-SECRET-SENTINEL-VALUE").unwrap();
            f.sync().unwrap();
        }
        let storage = b.storage_of("/d/s").unwrap();
        let leaked = storage.with_inner(|m| {
            let snap = m.snapshot();
            snap.into_iter().flatten().any(|n| {
                n.windows(25).any(|w| w == b"THE-SECRET-SENTINEL-VALUE")
            })
        });
        assert!(!leaked);
        assert!(storage.stored_bytes() > 0);
    }

    #[test]
    fn drop_flushes() {
        let mut b = backend();
        {
            let mut f = b.open("/d/flush", true, false).unwrap();
            f.write(b"no explicit sync").unwrap();
            // dropped here without sync()
        }
        let mut f = b.open("/d/flush", false, false).unwrap();
        let mut buf = [0u8; 16];
        f.read(&mut buf).unwrap();
        assert_eq!(&buf, b"no explicit sync");
    }
}
