//! The multi-tenant session layer: one simulated enclave hosting many named
//! sessions, each with a persistent instance, plus a content-addressed
//! module cache (DESIGN.md §7).
//!
//! The one-shot [`TwineRuntime`](crate::TwineRuntime) rebuilds everything per
//! run; serving heavy traffic needs the standard compile-once /
//! instantiate-many architecture (wasmtime's `Module`/`Store` split, and the
//! long-lived enclave runtime of the 2023 Twine follow-up). This module
//! supplies it in three tiers of reuse:
//!
//! 1. **Module cache** — identical Wasm bytes compile once; every session of
//!    the same application shares one `Arc<CompiledModule>`, keyed by
//!    SHA-256 of the delivered bytes (content-addressed, so the key doubles
//!    as an integrity measurement of what the enclave runs).
//! 2. **Shared linker** — the WASI + libm host-function table is built once
//!    per service and borrowed by every instantiation.
//! 3. **Persistent sessions** — each session owns an [`Instance`] and a
//!    `WasiCtx` that survive across invocations: a *warm* call performs no
//!    decode, validate or instantiate work at all, and a post-instantiation
//!    [`snapshot`](Instance::snapshot) lets a session be recycled to a
//!    fresh-equivalent state without re-running data segments.
//!
//! Isolation between tenants is preserved: every session gets its own EPC
//! base page range (guest pages never alias across sessions), its own fuel
//! budget, its own file-system backend, and its own trusted-clock
//! monotonicity watermark that persists across invocations (§IV-C).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use twine_crypto::Sha256;
use twine_pfs::{PfsMode, PfsProfiler};
use twine_sgx::{Enclave, Processor, SimClock};
use twine_wasi::{FsBackend, Rights, WasiCtx};
use twine_wasm::compile::CompiledModule;
use twine_wasm::{ExecTier, Instance, InstanceSnapshot, Linker, ModuleError, Trap, Value};

use crate::runtime::{
    base_linker, build_wasi_ctx, invoke_in_enclave, make_backend, wasi_backend_into_box, EpcSink,
    FsChoice, RunReport, TwineBuilder, TwineError,
};

/// One cache slot: a [`OnceLock`] so that when many threads race to open
/// sessions over identical bytes, exactly one performs the compile while
/// the others block on the slot and then share the same
/// `Arc<CompiledModule>` (pointer-identical). A failed compile is recorded
/// in the slot (every concurrent waiter of that attempt sees the error)
/// and the slot is then removed so a later open may retry.
type CacheSlot = Arc<OnceLock<Result<Arc<CompiledModule>, ModuleError>>>;

/// A content-addressed cache of compiled modules: identical Wasm bytes
/// (under the same execution tier) compile once and share one
/// `Arc<CompiledModule>` across all sessions of a service.
///
/// Thread-safe with interior mutability (`&self` everywhere): the sharded
/// service hands one `Arc<ModuleCache>` to every worker. The map lock is
/// held only for slot bookkeeping — compilation itself runs *outside* it,
/// so two shards compiling **different** modules proceed in parallel,
/// while racers on the **same** key serialise on the per-key [`OnceLock`]
/// and compile exactly once.
pub struct ModuleCache {
    tier: ExecTier,
    entries: Mutex<HashMap<[u8; 32], CacheSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModuleCache {
    /// Empty cache compiling for `tier`.
    #[must_use]
    pub fn new(tier: ExecTier) -> Self {
        Self {
            tier,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The content address of `wasm` under `tier`: SHA-256 over a
    /// tier-domain-separated encoding of the bytes. Two tiers never share an
    /// entry (their lowered code differs even though semantics agree).
    #[must_use]
    pub fn content_key(wasm: &[u8], tier: ExecTier) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&[match tier {
            ExecTier::Baseline => 0u8,
            ExecTier::Fused => 1u8,
            ExecTier::Reg => 2u8,
        }]);
        h.update(wasm);
        h.finalize()
    }

    /// Look up `wasm` by content, compiling (decode + validate + AoT lower)
    /// only on a miss. Returns the shared module, its content key, and
    /// whether this was a cache hit.
    ///
    /// Concurrent callers with the same bytes compile **once**: the loser
    /// of the slot race blocks until the winner's compile finishes and
    /// receives the identical `Arc` (a hit). Compilation of *distinct*
    /// modules never serialises — the map lock is not held across compiles.
    pub fn get_or_compile(
        &self,
        wasm: &[u8],
    ) -> Result<(Arc<CompiledModule>, [u8; 32], bool), ModuleError> {
        let key = Self::content_key(wasm, self.tier);
        let slot = {
            let mut map = self.entries.lock().unwrap();
            Arc::clone(map.entry(key).or_default())
        };
        let mut compiled_here = false;
        let outcome = slot
            .get_or_init(|| {
                compiled_here = true;
                CompiledModule::from_bytes_with_tier(wasm, self.tier).map(Arc::new)
            })
            .clone();
        match outcome {
            Ok(m) => {
                // Counted only when a module was actually served — a failed
                // compile counts as neither hit nor miss, the same
                // early-return accounting the single-threaded cache had
                // (waiters on a failed attempt were never "served without
                // compiling").
                if compiled_here {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                Ok((m, key, !compiled_here))
            }
            Err(e) => {
                // Failed compiles are not cached: retire this slot (only if
                // it is still *this* attempt's slot) so a later open retries.
                let mut map = self.entries.lock().unwrap();
                if map.get(&key).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                    map.remove(&key);
                }
                Err(e)
            }
        }
    }

    /// The compiled module readily held in a slot, if any.
    fn slot_module(slot: &CacheSlot) -> Option<&Arc<CompiledModule>> {
        slot.get().and_then(|r| r.as_ref().ok())
    }

    /// Number of distinct compiled modules held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache holds no modules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }

    /// Lookups served without compiling.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compile.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drop every cached module no live session references (the cache's
    /// `Arc` is the only one left). Returns how many entries were evicted.
    /// Long-lived services that churn through tenants with distinct
    /// binaries call this to keep the cache bounded by the *live* working
    /// set instead of growing with every binary ever served.
    pub fn evict_unreferenced(&self) -> usize {
        let mut map = self.entries.lock().unwrap();
        let before = map.len();
        map.retain(|_, slot| {
            // A racer that looked the slot up but has not yet cloned the
            // inner module Arc holds a clone of the *slot* Arc (taken
            // under this same map lock), so `strong_count(slot) > 1`
            // keeps the entry alive and preserves pointer identity for
            // that in-flight open. In-flight compiles (no module yet) are
            // kept for the same reason.
            Arc::strong_count(slot) > 1
                || Self::slot_module(slot).is_none_or(|m| Arc::strong_count(m) > 1)
        });
        before - map.len()
    }

    /// Drop all entries (sessions already holding an `Arc` are unaffected;
    /// future opens recompile).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }

    /// Drop one entry if nothing outside the cache references it. Used to
    /// roll back a compile whose session failed to materialise, so failed
    /// opens cannot grow the cache. The slot-count guard (see
    /// [`evict_unreferenced`](Self::evict_unreferenced)) makes this safe
    /// against a concurrent `get_or_compile` that has taken the slot but
    /// not yet the module: such a racer keeps the entry alive.
    fn evict_if_unreferenced(&self, key: &[u8; 32]) {
        let mut map = self.entries.lock().unwrap();
        if map.get(key).is_some_and(|slot| {
            Arc::strong_count(slot) == 1
                && Self::slot_module(slot).is_some_and(|m| Arc::strong_count(m) == 1)
        }) {
            map.remove(key);
        }
    }
}

/// Public per-session bookkeeping.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Content address (SHA-256) of the session's module in the cache.
    pub module_key: [u8; 32],
    /// Size of the delivered Wasm binary in bytes.
    pub wasm_bytes: usize,
    /// Whether opening this session reused an already-compiled module.
    pub cache_hit: bool,
    /// First EPC page of this session's private page range.
    pub epc_base_page: u64,
    /// Warm invocations served so far.
    pub invocations: u64,
}

/// One tenant: a persistent instance + WASI context inside the service's
/// enclave.
struct Session {
    instance: Instance,
    /// Post-instantiation state (data segments applied, start function run)
    /// for pool-recycling via [`TwineService::reset_session`].
    snapshot: InstanceSnapshot,
    /// Keeps the compiled module alive and shared; also handy for tests
    /// asserting that sessions share one cache entry.
    compiled: Arc<CompiledModule>,
    /// Trusted-clock monotonicity watermark (§IV-C), persistent across
    /// invocations and across [`TwineService::reset_session`].
    watermark: Arc<AtomicU64>,
    fuel: Option<u64>,
    stats: SessionStats,
}

/// The per-session construction template a builder configures once and a
/// service (or every shard of a [`crate::ShardedService`]) applies to each
/// new session. Plain data, `Clone + Send`.
#[derive(Clone)]
pub(crate) struct SessionTemplate {
    pub(crate) fs: FsChoice,
    pub(crate) pfs_mode: PfsMode,
    pub(crate) pfs_cache_nodes: usize,
    pub(crate) preopen: String,
    pub(crate) rights: Rights,
    pub(crate) args: Vec<String>,
    pub(crate) env: Vec<(String, String)>,
    pub(crate) fuel: Option<u64>,
}

impl SessionTemplate {
    pub(crate) fn from_builder(b: &TwineBuilder) -> Self {
        Self {
            fs: b.fs,
            pfs_mode: b.pfs_mode,
            pfs_cache_nodes: b.pfs_cache_nodes,
            preopen: b.preopen.clone(),
            rights: b.rights,
            args: b.args.clone(),
            env: b.env.clone(),
            fuel: b.fuel,
        }
    }
}

/// A multi-tenant Twine service: many named sessions inside **one**
/// simulated enclave, sharing a module cache and one host-function table.
///
/// ```
/// use twine_core::{FsChoice, TwineBuilder};
/// use twine_wasm::Value;
///
/// let wasm = twine_minicc::compile_to_bytes(
///     "int double_it(int x) { return 2 * x; }").unwrap();
/// let mut svc = TwineBuilder::new()
///     .fs(FsChoice::ProtectedInMemory)
///     .build_service();
/// svc.open_session("tenant-a", &wasm).unwrap();
/// svc.open_session("tenant-b", &wasm).unwrap(); // compiled once, shared
/// assert_eq!(svc.module_cache().len(), 1);
/// // Warm calls: no decode/validate/instantiate.
/// let out = svc.invoke("tenant-a", "double_it", &[Value::I32(21)]).unwrap();
/// assert_eq!(out[0], Value::I32(42));
/// ```
pub struct TwineService {
    enclave: Arc<Enclave>,
    processor: Processor,
    linker: Arc<Linker>,
    cache: Arc<ModuleCache>,
    sessions: HashMap<String, Session>,
    /// Shared allocator of private EPC slots; slot `n` covers pages
    /// `[(n+1) << 32, ...)`. Shared (`Arc`) so the shards of a
    /// [`crate::ShardedService`] never hand two sessions aliasing ranges.
    epc_slots: Arc<AtomicU64>,
    /// Per-session construction template (from the builder).
    tpl: SessionTemplate,
    profiler: Option<PfsProfiler>,
}

impl TwineService {
    pub(crate) fn from_builder(b: TwineBuilder) -> Self {
        let enclave = b.launch_enclave();
        let profiler = b
            .with_profiler
            .then(|| PfsProfiler::new(enclave.clock().clone()));
        let tpl = SessionTemplate::from_builder(&b);
        Self {
            enclave,
            processor: b.processor,
            linker: Arc::new(base_linker()),
            cache: Arc::new(ModuleCache::new(b.exec_tier)),
            sessions: HashMap::new(),
            epc_slots: Arc::new(AtomicU64::new(0)),
            tpl,
            profiler,
        }
    }

    /// One shard of a [`crate::ShardedService`]: a full `TwineService` over
    /// **shared** immutable artifacts — the one enclave, the one
    /// host-function table, the one module cache and the one EPC-slot
    /// allocator — with its own (shard-local, single-owner) session map.
    pub(crate) fn shard(
        enclave: Arc<Enclave>,
        processor: Processor,
        linker: Arc<Linker>,
        cache: Arc<ModuleCache>,
        epc_slots: Arc<AtomicU64>,
        tpl: SessionTemplate,
        profiler: Option<PfsProfiler>,
    ) -> Self {
        Self {
            enclave,
            processor,
            linker,
            cache,
            sessions: HashMap::new(),
            epc_slots,
            tpl,
            profiler,
        }
    }

    /// The enclave hosting every session.
    #[must_use]
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// The simulated processor.
    #[must_use]
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// The virtual clock (shared by all sessions; includes launch cost).
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        self.enclave.clock()
    }

    /// The content-addressed module cache (thread-safe: eviction policy
    /// belongs to the embedder, e.g. [`ModuleCache::evict_unreferenced`]
    /// after a wave of [`close_session`](Self::close_session)s).
    #[must_use]
    pub fn module_cache(&self) -> &ModuleCache {
        &self.cache
    }

    /// Number of live sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Names of the live sessions (unordered).
    #[must_use]
    pub fn session_names(&self) -> Vec<&str> {
        self.sessions.keys().map(String::as_str).collect()
    }

    /// Bookkeeping for one session.
    #[must_use]
    pub fn session_stats(&self, name: &str) -> Option<&SessionStats> {
        self.sessions.get(name).map(|s| &s.stats)
    }

    /// The compiled module backing a session (shared across sessions with
    /// identical Wasm bytes).
    #[must_use]
    pub fn session_module(&self, name: &str) -> Option<&Arc<CompiledModule>> {
        self.sessions.get(name).map(|s| &s.compiled)
    }

    /// Open a named session: resolve `wasm` through the module cache
    /// (compiling only on a content miss), copy the bytes into reserved
    /// enclave memory, instantiate against the shared linker, and record the
    /// post-instantiation snapshot. This is the *cold* path — every
    /// subsequent [`invoke`](Self::invoke) on the session is warm.
    ///
    /// # Errors
    /// [`TwineError::Session`] if the name is taken;
    /// [`TwineError::Module`] on decode/validate/instantiate failure.
    pub fn open_session(&mut self, name: &str, wasm: &[u8]) -> Result<&SessionStats, TwineError> {
        if self.sessions.contains_key(name) {
            return Err(TwineError::Session(format!(
                "session {name:?} already exists"
            )));
        }
        let (compiled, module_key, cache_hit) =
            self.cache.get_or_compile(wasm).map_err(TwineError::Module)?;
        // Copy into reserved memory: charge the boundary copy (one ECALL,
        // exactly like `TwineRuntime::load_wasm`).
        self.enclave.ecall(|| {
            self.enclave.clock().add_cycles(wasm.len() as u64 / 4);
        });

        let backend = make_backend(
            self.tpl.fs,
            &self.enclave,
            self.tpl.pfs_mode,
            self.tpl.pfs_cache_nodes,
            self.profiler.clone(),
        );
        let watermark = Arc::new(AtomicU64::new(0));
        let ctx = build_wasi_ctx(
            backend,
            &self.tpl.preopen,
            self.tpl.rights,
            &self.tpl.args,
            &self.tpl.env,
            &self.enclave,
            &watermark,
        );

        // The fuel budget applies to the start function too: tenant-supplied
        // instantiation code cannot run unmetered.
        let mut instance = match Instance::instantiate_shared(
            Arc::clone(&compiled),
            &self.linker,
            Box::new(ctx),
            self.tpl.fuel,
        ) {
            Ok(i) => i,
            Err((e, _ctx)) => {
                // Roll back the cache entry if this failed open was the only
                // user, so repeated hostile opens (e.g. trapping start
                // functions) cannot grow enclave memory session-lessly.
                drop(compiled);
                self.cache.evict_if_unreferenced(&module_key);
                return Err(TwineError::Module(e));
            }
        };
        let slot = self.epc_slots.fetch_add(1, Ordering::Relaxed);
        let epc_base_page = (slot + 1) << 32;
        instance.set_page_sink(Some(Box::new(EpcSink::new(
            self.enclave.epc(),
            epc_base_page,
        ))));
        let snapshot = instance.snapshot();
        // Instantiation metering (start function, if any) is not part of any
        // invocation report: every invocation starts from a clean meter.
        instance.meter.reset();

        let session = Session {
            instance,
            snapshot,
            compiled,
            watermark,
            fuel: self.tpl.fuel,
            stats: SessionStats {
                module_key,
                wasm_bytes: wasm.len(),
                cache_hit,
                epc_base_page,
                invocations: 0,
            },
        };
        let prev = self.sessions.insert(name.to_string(), session);
        debug_assert!(prev.is_none(), "session name was checked free above");
        Ok(&self.sessions[name].stats)
    }

    /// Invoke an exported function on a session — the *warm* path: no
    /// decode, validate or instantiate work happens here; per-run WASI state
    /// is recycled in place and guest memory/globals persist from the
    /// previous invocation (tenant state survives across calls).
    pub fn invoke(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, TwineError> {
        self.invoke_raw(session, func, args, false).map(|(_, v)| v)
    }

    /// Run a session's WASI `_start` export.
    pub fn run(&mut self, session: &str) -> Result<RunReport, TwineError> {
        self.invoke_with_report(session, "_start", &[])
            .map(|(report, _)| report)
    }

    /// [`invoke`](Self::invoke), also returning the per-invocation
    /// [`RunReport`] (meter, cycles and EPC counters cover this invocation
    /// only).
    ///
    /// If the guest traps, the session is automatically recycled from its
    /// post-instantiation snapshot — the tenant's next call sees a
    /// fresh-equivalent instance while its protected files survive.
    pub fn invoke_with_report(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
    ) -> Result<(RunReport, Vec<Value>), TwineError> {
        self.invoke_raw(session, func, args, true)
            .map(|(report, v)| (report.expect("report requested"), v))
    }

    /// The warm path proper. `build_report` gates the stdout/stderr/meter
    /// clones so plain [`invoke`](Self::invoke) traffic doesn't pay for a
    /// report it discards.
    fn invoke_raw(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
        build_report: bool,
    ) -> Result<(Option<RunReport>, Vec<Value>), TwineError> {
        let sess = self
            .sessions
            .get_mut(session)
            .ok_or_else(|| TwineError::Session(format!("no session named {session:?}")))?;

        // Recycle per-run state; everything else is warm reuse.
        sess.instance.meter.reset();
        sess.instance.fuel = sess.fuel;
        sess.instance.state::<WasiCtx>().reset_for_invocation();

        let outcome = invoke_in_enclave(&self.enclave, &mut sess.instance, func, args);
        match outcome.values {
            Ok(values) => {
                sess.stats.invocations += 1;
                let report = build_report.then(|| {
                    let fuel_remaining = sess.instance.fuel;
                    let ctx = sess.instance.state::<WasiCtx>();
                    RunReport {
                        exit_code: ctx.exit_code.unwrap_or(0),
                        // Move, don't copy: the next invocation's reset
                        // would discard these buffers anyway.
                        stdout: std::mem::take(&mut ctx.stdout),
                        stderr: std::mem::take(&mut ctx.stderr),
                        wasi_calls: ctx.call_count,
                        meter: outcome.meter,
                        cycles: outcome.cycles,
                        epc: outcome.epc,
                        fuel_remaining,
                    }
                });
                Ok((report, values))
            }
            Err(t) => {
                if !matches!(t, Trap::BadInvoke(_)) {
                    // Guest state is suspect after a trap: restore the
                    // post-instantiation image so the session stays
                    // servable. A BadInvoke (typo'd export, wrong arity or
                    // argument types) is rejected *before* any guest code
                    // runs, so the tenant's state is untouched — don't wipe
                    // it, and don't count it as a served invocation.
                    sess.stats.invocations += 1;
                    sess.instance.reset_to(&sess.snapshot);
                }
                Err(TwineError::Trap(t))
            }
        }
    }

    /// Recycle a session to its post-instantiation state (pool reuse):
    /// memory image, globals and table are restored from the snapshot and
    /// the WASI per-run state is cleared — **without** re-running decode,
    /// validate, instantiate or the data segments. The file-system backend
    /// and the trusted-clock watermark persist (files survive; the clock
    /// stays monotonic).
    pub fn reset_session(&mut self, name: &str) -> Result<(), TwineError> {
        let sess = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| TwineError::Session(format!("no session named {name:?}")))?;
        sess.instance.reset_to(&sess.snapshot);
        sess.instance.state::<WasiCtx>().reset_for_invocation();
        Ok(())
    }

    /// Override the per-invocation fuel budget of one session (defaults to
    /// the builder's fuel).
    pub fn set_session_fuel(&mut self, name: &str, fuel: Option<u64>) -> Result<(), TwineError> {
        let sess = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| TwineError::Session(format!("no session named {name:?}")))?;
        sess.fuel = fuel;
        Ok(())
    }

    /// The trusted-clock watermark of a session (last `clock_time_get`
    /// value handed to the guest; 0 if the guest never read the clock).
    #[must_use]
    pub fn session_clock_watermark(&self, name: &str) -> Option<u64> {
        self.sessions
            .get(name)
            .map(|s| s.watermark.load(Ordering::Relaxed))
    }

    /// Close a session, returning its file-system backend so the embedder
    /// can persist or migrate the tenant's protected files. The cached
    /// compiled module stays in the cache for future sessions — reclaim
    /// orphaned entries with
    /// [`module_cache().evict_unreferenced()`](ModuleCache::evict_unreferenced).
    pub fn close_session(&mut self, name: &str) -> Option<Box<dyn FsBackend>> {
        let sess = self.sessions.remove(name)?;
        sess.instance
            .into_state::<WasiCtx>()
            .map(wasi_backend_into_box)
    }
}
