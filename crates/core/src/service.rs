//! The multi-tenant session layer: one simulated enclave hosting many named
//! sessions, each with a persistent instance, plus a content-addressed
//! module cache (DESIGN.md §7).
//!
//! The one-shot [`TwineRuntime`](crate::TwineRuntime) rebuilds everything per
//! run; serving heavy traffic needs the standard compile-once /
//! instantiate-many architecture (wasmtime's `Module`/`Store` split, and the
//! long-lived enclave runtime of the 2023 Twine follow-up). This module
//! supplies it in three tiers of reuse:
//!
//! 1. **Module cache** — identical Wasm bytes compile once; every session of
//!    the same application shares one `Arc<CompiledModule>`, keyed by
//!    SHA-256 of the delivered bytes (content-addressed, so the key doubles
//!    as an integrity measurement of what the enclave runs).
//! 2. **Shared linker** — the WASI + libm host-function table is built once
//!    per service and borrowed by every instantiation.
//! 3. **Persistent sessions** — each session owns an [`Instance`] and a
//!    `WasiCtx` that survive across invocations: a *warm* call performs no
//!    decode, validate or instantiate work at all, and a post-instantiation
//!    [`snapshot`](Instance::snapshot) lets a session be recycled to a
//!    fresh-equivalent state without re-running data segments.
//!
//! Isolation between tenants is preserved: every session gets its own EPC
//! base page range (guest pages never alias across sessions), its own fuel
//! budget, its own file-system backend, and its own trusted-clock
//! monotonicity watermark that persists across invocations (§IV-C).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use twine_crypto::kdf::KeyName;
use twine_crypto::Sha256;
use twine_pfs::{PfsMode, PfsProfiler};
use twine_sgx::{Enclave, FaultKind, Processor, SimClock};
use twine_wasi::{FsBackend, Rights, WasiCtx};
use twine_wasm::compile::CompiledModule;
use twine_wasm::{
    ExecTier, Instance, InstanceSnapshot, Linker, ModuleError, SnapshotDelta, Trap, Value,
};

use crate::control::{ControlPlane, ControlStats, RateState};
use crate::pool::InstancePool;
use crate::runtime::{
    base_linker, build_wasi_ctx, invoke_in_enclave, make_backend, wasi_backend_into_box, with_retries,
    EpcSink, FsChoice, Overload, RunReport, TwineBuilder, TwineError, RETRY_BACKOFF_CYCLES, RETRY_MAX,
};

/// One cache slot: a [`OnceLock`] so that when many threads race to open
/// sessions over identical bytes, exactly one performs the compile while
/// the others block on the slot and then share the same
/// `Arc<CompiledModule>` (pointer-identical). A failed compile is recorded
/// in the slot (every concurrent waiter of that attempt sees the error)
/// and the slot is then removed so a later open may retry.
type CacheSlot = Arc<OnceLock<Result<Arc<CompiledModule>, ModuleError>>>;

/// A content-addressed cache of compiled modules: identical Wasm bytes
/// (under the same execution tier) compile once and share one
/// `Arc<CompiledModule>` across all sessions of a service.
///
/// Thread-safe with interior mutability (`&self` everywhere): the sharded
/// service hands one `Arc<ModuleCache>` to every worker. The map lock is
/// held only for slot bookkeeping — compilation itself runs *outside* it,
/// so two shards compiling **different** modules proceed in parallel,
/// while racers on the **same** key serialise on the per-key [`OnceLock`]
/// and compile exactly once.
pub struct ModuleCache {
    tier: ExecTier,
    entries: Mutex<HashMap<[u8; 32], CacheSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Soft capacity: whenever an insert grows the map past this,
    /// unreferenced entries are evicted *inline* (demand-driven, not
    /// merely on embedder request). `0` = unbounded.
    capacity: AtomicUsize,
    /// Entries dropped by capacity/pressure eviction.
    capacity_evictions: AtomicU64,
}

impl ModuleCache {
    /// Empty cache compiling for `tier`.
    #[must_use]
    pub fn new(tier: ExecTier) -> Self {
        Self {
            tier,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: AtomicUsize::new(0),
            capacity_evictions: AtomicU64::new(0),
        }
    }

    /// Bound the cache: once more than `cap` distinct modules are held,
    /// every insert first evicts all unreferenced entries (entries still
    /// referenced by live sessions are never dropped — pointer sharing is
    /// preserved — so the cache is bounded by `max(cap, live working
    /// set)`). `None` restores the unbounded default.
    pub fn set_capacity(&self, cap: Option<usize>) {
        self.capacity.store(cap.unwrap_or(0), Ordering::Relaxed);
    }

    /// Entries dropped by capacity/pressure eviction so far.
    #[must_use]
    pub fn capacity_evictions(&self) -> u64 {
        self.capacity_evictions.load(Ordering::Relaxed)
    }

    /// The content address of `wasm` under `tier`: SHA-256 over a
    /// tier-domain-separated encoding of the bytes. Two tiers never share an
    /// entry (their lowered code differs even though semantics agree).
    #[must_use]
    pub fn content_key(wasm: &[u8], tier: ExecTier) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&[match tier {
            ExecTier::Baseline => 0u8,
            ExecTier::Fused => 1u8,
            ExecTier::Reg => 2u8,
        }]);
        h.update(wasm);
        h.finalize()
    }

    /// Look up `wasm` by content, compiling (decode + validate + AoT lower)
    /// only on a miss. Returns the shared module, its content key, and
    /// whether this was a cache hit.
    ///
    /// Concurrent callers with the same bytes compile **once**: the loser
    /// of the slot race blocks until the winner's compile finishes and
    /// receives the identical `Arc` (a hit). Compilation of *distinct*
    /// modules never serialises — the map lock is not held across compiles.
    pub fn get_or_compile(
        &self,
        wasm: &[u8],
    ) -> Result<(Arc<CompiledModule>, [u8; 32], bool), ModuleError> {
        let key = Self::content_key(wasm, self.tier);
        let slot = {
            let mut map = self.entries.lock().unwrap();
            let slot = Arc::clone(map.entry(key).or_default());
            // Demand-driven capacity enforcement (ROADMAP item 5): a full
            // cache under churn evicts its unreferenced entries as part of
            // the very insert that would grow it, instead of waiting for
            // the embedder to call `evict_unreferenced`. The entry just
            // taken holds a second slot-`Arc` (cloned above), so it always
            // survives its own insert's eviction pass.
            let cap = self.capacity.load(Ordering::Relaxed);
            if cap != 0 && map.len() > cap {
                let evicted = Self::evict_unreferenced_locked(&mut map);
                self.capacity_evictions
                    .fetch_add(evicted as u64, Ordering::Relaxed);
            }
            slot
        };
        let mut compiled_here = false;
        let outcome = slot
            .get_or_init(|| {
                compiled_here = true;
                CompiledModule::from_bytes_with_tier(wasm, self.tier).map(Arc::new)
            })
            .clone();
        match outcome {
            Ok(m) => {
                // Counted only when a module was actually served — a failed
                // compile counts as neither hit nor miss, the same
                // early-return accounting the single-threaded cache had
                // (waiters on a failed attempt were never "served without
                // compiling").
                if compiled_here {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                Ok((m, key, !compiled_here))
            }
            Err(e) => {
                // Failed compiles are not cached: retire this slot (only if
                // it is still *this* attempt's slot) so a later open retries.
                let mut map = self.entries.lock().unwrap();
                if map.get(&key).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                    map.remove(&key);
                }
                Err(e)
            }
        }
    }

    /// The compiled module readily held in a slot, if any.
    fn slot_module(slot: &CacheSlot) -> Option<&Arc<CompiledModule>> {
        slot.get().and_then(|r| r.as_ref().ok())
    }

    /// Number of distinct compiled modules held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache holds no modules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }

    /// Lookups served without compiling.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compile.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drop every cached module no live session references (the cache's
    /// `Arc` is the only one left). Returns how many entries were evicted.
    /// Long-lived services that churn through tenants with distinct
    /// binaries call this to keep the cache bounded by the *live* working
    /// set instead of growing with every binary ever served.
    pub fn evict_unreferenced(&self) -> usize {
        let mut map = self.entries.lock().unwrap();
        Self::evict_unreferenced_locked(&mut map)
    }

    fn evict_unreferenced_locked(map: &mut HashMap<[u8; 32], CacheSlot>) -> usize {
        let before = map.len();
        map.retain(|_, slot| {
            // A racer that looked the slot up but has not yet cloned the
            // inner module Arc holds a clone of the *slot* Arc (taken
            // under this same map lock), so `strong_count(slot) > 1`
            // keeps the entry alive and preserves pointer identity for
            // that in-flight open. In-flight compiles (no module yet) are
            // kept for the same reason.
            Arc::strong_count(slot) > 1
                || Self::slot_module(slot).is_none_or(|m| Arc::strong_count(m) > 1)
        });
        before - map.len()
    }

    /// Drop all entries (sessions already holding an `Arc` are unaffected;
    /// future opens recompile).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }

    /// Drop one entry if nothing outside the cache references it. Used to
    /// roll back a compile whose session failed to materialise, so failed
    /// opens cannot grow the cache. The slot-count guard (see
    /// [`evict_unreferenced`](Self::evict_unreferenced)) makes this safe
    /// against a concurrent `get_or_compile` that has taken the slot but
    /// not yet the module: such a racer keeps the entry alive.
    fn evict_if_unreferenced(&self, key: &[u8; 32]) {
        let mut map = self.entries.lock().unwrap();
        if map.get(key).is_some_and(|slot| {
            Arc::strong_count(slot) == 1
                && Self::slot_module(slot).is_some_and(|m| Arc::strong_count(m) == 1)
        }) {
            map.remove(key);
        }
    }
}

/// Public per-session bookkeeping.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Content address (SHA-256) of the session's module in the cache.
    pub module_key: [u8; 32],
    /// Size of the delivered Wasm binary in bytes.
    pub wasm_bytes: usize,
    /// Whether opening this session reused an already-compiled module.
    pub cache_hit: bool,
    /// First EPC page of this session's private page range.
    pub epc_base_page: u64,
    /// Warm invocations served so far.
    pub invocations: u64,
}

/// Session state that survives parking: everything except the live
/// [`Instance`] (whose guest-visible state travels through the sealed
/// snapshot) and the `WasiCtx` (which moves between the instance's host
/// data and the parked slot).
struct SessionCommon {
    /// Keeps the compiled module alive and shared; also handy for tests
    /// asserting that sessions share one cache entry.
    compiled: Arc<CompiledModule>,
    /// Post-instantiation state (data segments applied, start function run)
    /// for pool-recycling via [`TwineService::reset_session`] and
    /// post-trap recovery. For pooled sessions this is the module's
    /// **shared** base image (one `Arc` per (module, tier), not one clone
    /// per session); the session's dirty bitmap is re-based against it at
    /// open, so resets and park deltas touch only dirty pages.
    base_snapshot: Arc<InstanceSnapshot>,
    /// Whether this session rides the pooling/memory-image fast path:
    /// `base_snapshot` is the module's shared base image, parks seal
    /// O(dirty pages) deltas against it, and the instance recycles through
    /// the pool. Decided once at open (pooling enabled ∧ module poolable).
    pooled: bool,
    /// Trusted-clock monotonicity watermark (§IV-C), persistent across
    /// invocations, [`TwineService::reset_session`] and park/restore.
    watermark: Arc<AtomicU64>,
    fuel: Option<u64>,
    /// Per-invocation preemption deadline (defaults to the control
    /// plane's; overridable per session).
    deadline: Option<u64>,
    stats: SessionStats,
    /// LRU use sequence (bumped on open/invoke/reset): the eviction policy
    /// parks the live session with the smallest value.
    last_use: u64,
    /// Fuel-rate token-bucket state (persists across parking, so a tenant
    /// cannot launder its debt through an eviction cycle).
    rate: RateState,
    /// The delivered Wasm bytes, kept only when a durable park store is
    /// configured: the durable record embeds them so
    /// [`TwineService::recover`] can recompile after a restart.
    wasm: Option<Arc<Vec<u8>>>,
}

/// One live tenant: a persistent instance + WASI context inside the
/// service's enclave.
pub(crate) struct Session {
    instance: Instance,
    common: SessionCommon,
}

/// One parked tenant: guest state sealed out of the enclave, EPC pages
/// released. The WASI context (with the tenant's protected files) stays
/// with the service — files are independently protected by the PFS layer;
/// what the seal protects is the *guest memory image*.
pub(crate) struct ParkedSession {
    /// `seal(InstanceSnapshot::to_bytes)` of the state at park time.
    sealed: Vec<u8>,
    ctx: WasiCtx,
    common: SessionCommon,
}

/// A session-table slot: live or parked.
// Variant sizes differ by design: a live slot keeps the whole `Session`
// inline and hot (one invoke = one map lookup, no extra chase), and a
// shard holds at most `max_live_sessions` of them.
#[allow(clippy::large_enum_variant)]
pub(crate) enum SessionSlot {
    Live(Session),
    Parked(ParkedSession),
    /// A parked session whose image could not be restored (unsealing kept
    /// failing beyond the retry budget). The sealed state and WASI context
    /// are preserved — nothing is lost, and a fixed blob could in
    /// principle be re-adopted — but invocations are rejected typed
    /// ([`TwineError::Quarantined`]) instead of crashing the service or
    /// serving corrupt state.
    Quarantined(ParkedSession, String),
}

impl SessionSlot {
    fn common(&self) -> &SessionCommon {
        match self {
            SessionSlot::Live(s) => &s.common,
            SessionSlot::Parked(p) => &p.common,
            SessionSlot::Quarantined(p, _) => &p.common,
        }
    }

    fn common_mut(&mut self) -> &mut SessionCommon {
        match self {
            SessionSlot::Live(s) => &mut s.common,
            SessionSlot::Parked(p) => &mut p.common,
            SessionSlot::Quarantined(p, _) => &mut p.common,
        }
    }
}

/// The per-session construction template a builder configures once and a
/// service (or every shard of a [`crate::ShardedService`]) applies to each
/// new session. Plain data, `Clone + Send`.
#[derive(Clone)]
pub(crate) struct SessionTemplate {
    pub(crate) fs: FsChoice,
    pub(crate) pfs_mode: PfsMode,
    pub(crate) pfs_cache_nodes: usize,
    pub(crate) preopen: String,
    pub(crate) rights: Rights,
    pub(crate) args: Vec<String>,
    pub(crate) env: Vec<(String, String)>,
    pub(crate) fuel: Option<u64>,
}

impl SessionTemplate {
    pub(crate) fn from_builder(b: &TwineBuilder) -> Self {
        Self {
            fs: b.fs,
            pfs_mode: b.pfs_mode,
            pfs_cache_nodes: b.pfs_cache_nodes,
            preopen: b.preopen.clone(),
            rights: b.rights,
            args: b.args.clone(),
            env: b.env.clone(),
            fuel: b.fuel,
        }
    }
}

/// A multi-tenant Twine service: many named sessions inside **one**
/// simulated enclave, sharing a module cache and one host-function table.
///
/// ```
/// use twine_core::{FsChoice, TwineBuilder};
/// use twine_wasm::Value;
///
/// let wasm = twine_minicc::compile_to_bytes(
///     "int double_it(int x) { return 2 * x; }").unwrap();
/// let mut svc = TwineBuilder::new()
///     .fs(FsChoice::ProtectedInMemory)
///     .build_service();
/// svc.open_session("tenant-a", &wasm).unwrap();
/// svc.open_session("tenant-b", &wasm).unwrap(); // compiled once, shared
/// assert_eq!(svc.module_cache().len(), 1);
/// // Warm calls: no decode/validate/instantiate.
/// let out = svc.invoke("tenant-a", "double_it", &[Value::I32(21)]).unwrap();
/// assert_eq!(out[0], Value::I32(42));
/// ```
pub struct TwineService {
    pub(crate) enclave: Arc<Enclave>,
    processor: Processor,
    linker: Arc<Linker>,
    cache: Arc<ModuleCache>,
    pub(crate) sessions: HashMap<String, SessionSlot>,
    /// Tenant database sessions (DESIGN.md §13): each owns a private
    /// protected backend holding its database, served through the same
    /// park/evict/restore lifecycle as Wasm sessions. Disjoint namespace
    /// check with `sessions` at open.
    pub(crate) db_sessions: HashMap<String, crate::dbsession::DbSession>,
    /// Shared allocator of private EPC slots; slot `n` covers pages
    /// `[(n+1) << 32, ...)`. Shared (`Arc`) so the shards of a
    /// [`crate::ShardedService`] never hand two sessions aliasing ranges.
    pub(crate) epc_slots: Arc<AtomicU64>,
    /// Per-session construction template (from the builder).
    pub(crate) tpl: SessionTemplate,
    pub(crate) profiler: Option<PfsProfiler>,
    /// Control-plane policy (eviction, preemption, admission). Defaults
    /// are all-off: a default service behaves exactly like before the
    /// control plane existed.
    pub(crate) control: ControlPlane,
    /// Shared epoch counter for asynchronous preemption; one counter is
    /// shared by every shard of a [`crate::ShardedService`].
    epoch: Arc<AtomicU64>,
    /// Monotonic use sequence feeding the LRU eviction policy.
    pub(crate) use_seq: u64,
    pub(crate) control_stats: ControlStats,
    /// Pre-instantiated base-state slots (DESIGN.md §11); shared across
    /// the shards of a [`crate::ShardedService`]. Capacity 0 when pooling
    /// is off — every `put` then drops the instance.
    pool: Arc<InstancePool>,
    /// Whether `control_stats` fills the enclave-global `faults_injected`
    /// gauge. True for a standalone service; false for the shards of a
    /// [`crate::ShardedService`] (the handle fills it exactly once after
    /// merging, so the shared plan's count is not multiplied by the shard
    /// count).
    fill_faults: bool,
}

impl TwineService {
    pub(crate) fn from_builder(b: TwineBuilder) -> Self {
        let enclave = b.launch_enclave();
        let profiler = b
            .with_profiler
            .then(|| PfsProfiler::new(enclave.clock().clone()));
        let tpl = SessionTemplate::from_builder(&b);
        let cache = Arc::new(ModuleCache::new(b.exec_tier));
        cache.set_capacity(b.control.module_cache_capacity);
        let pool = Arc::new(InstancePool::new(
            b.control.pool_slots_per_module.unwrap_or(0),
        ));
        Self {
            enclave,
            processor: b.processor,
            linker: Arc::new(base_linker()),
            cache,
            sessions: HashMap::new(),
            db_sessions: HashMap::new(),
            epc_slots: Arc::new(AtomicU64::new(0)),
            tpl,
            profiler,
            control: b.control,
            epoch: Arc::new(AtomicU64::new(0)),
            use_seq: 0,
            control_stats: ControlStats::default(),
            pool,
            fill_faults: true,
        }
    }

    /// One shard of a [`crate::ShardedService`]: a full `TwineService` over
    /// **shared** immutable artifacts — the one enclave, the one
    /// host-function table, the one module cache, the one EPC-slot
    /// allocator and the one epoch counter — with its own (shard-local,
    /// single-owner) session map.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn shard(
        enclave: Arc<Enclave>,
        processor: Processor,
        linker: Arc<Linker>,
        cache: Arc<ModuleCache>,
        epc_slots: Arc<AtomicU64>,
        tpl: SessionTemplate,
        profiler: Option<PfsProfiler>,
        control: ControlPlane,
        epoch: Arc<AtomicU64>,
        pool: Arc<InstancePool>,
    ) -> Self {
        Self {
            enclave,
            processor,
            linker,
            cache,
            sessions: HashMap::new(),
            db_sessions: HashMap::new(),
            epc_slots,
            tpl,
            profiler,
            control,
            epoch,
            use_seq: 0,
            control_stats: ControlStats::default(),
            pool,
            fill_faults: false,
        }
    }

    /// The enclave hosting every session.
    #[must_use]
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// The simulated processor.
    #[must_use]
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// The virtual clock (shared by all sessions; includes launch cost).
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        self.enclave.clock()
    }

    /// The content-addressed module cache (thread-safe: eviction policy
    /// belongs to the embedder, e.g. [`ModuleCache::evict_unreferenced`]
    /// after a wave of [`close_session`](Self::close_session)s).
    #[must_use]
    pub fn module_cache(&self) -> &ModuleCache {
        &self.cache
    }

    /// Number of open sessions (live + parked).
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of live (unparked) sessions.
    #[must_use]
    pub fn live_session_count(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| matches!(s, SessionSlot::Live(_)))
            .count()
    }

    /// Number of parked (sealed-out) sessions.
    #[must_use]
    pub fn parked_session_count(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| matches!(s, SessionSlot::Parked(_)))
            .count()
    }

    /// Whether a session is currently parked.
    #[must_use]
    pub fn session_parked(&self, name: &str) -> Option<bool> {
        self.sessions
            .get(name)
            .map(|s| matches!(s, SessionSlot::Parked(_)))
    }

    /// Control-plane counters, with the live/parked gauges filled in at
    /// read time (and, for a standalone service, the enclave-global
    /// fault-injection gauge).
    #[must_use]
    pub fn control_stats(&self) -> ControlStats {
        let mut stats = ControlStats {
            live_sessions: (self.live_session_count() + self.live_db_session_count()) as u64,
            parked_sessions: (self.parked_session_count() + self.parked_db_session_count())
                as u64,
            ..self.control_stats
        };
        if self.fill_faults {
            if let Some(plan) = self.enclave.fault_plan() {
                stats.faults_injected = plan.total_injected();
            }
        }
        stats
    }

    /// Whether a session is quarantined (its parked image failed to
    /// restore; see [`TwineError::Quarantined`]).
    #[must_use]
    pub fn session_quarantined(&self, name: &str) -> Option<bool> {
        self.sessions
            .get(name)
            .map(|s| matches!(s, SessionSlot::Quarantined(..)))
    }

    /// Number of pre-instantiated base-state slots currently parked in the
    /// instance pool (across all modules; shared across shards).
    #[must_use]
    pub fn pooled_slot_count(&self) -> usize {
        self.pool.len()
    }

    /// Bump the shared preemption epoch (see
    /// [`ControlPlane::epoch_slack`]): every in-flight invocation armed
    /// with a smaller slack than the bumps it has survived yields with
    /// [`Trap::DeadlineExceeded`] at its next control transfer.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Names of the open sessions (unordered; includes parked).
    #[must_use]
    pub fn session_names(&self) -> Vec<&str> {
        self.sessions.keys().map(String::as_str).collect()
    }

    /// Bookkeeping for one session.
    #[must_use]
    pub fn session_stats(&self, name: &str) -> Option<&SessionStats> {
        self.sessions.get(name).map(|s| &s.common().stats)
    }

    /// The compiled module backing a session (shared across sessions with
    /// identical Wasm bytes).
    #[must_use]
    pub fn session_module(&self, name: &str) -> Option<&Arc<CompiledModule>> {
        self.sessions.get(name).map(|s| &s.common().compiled)
    }

    /// Check a pre-instantiated slot out of the pool, validating it first:
    /// a slot flagged by the fault plan's pool-corruption schedule, or one
    /// genuinely carrying residual dirty pages, is discarded (counted and
    /// logged) instead of being handed to a tenant — the caller falls back
    /// to a fresh instantiation, which is semantically identical.
    fn pool_checkout(&mut self, module_key: &[u8; 32]) -> Option<Instance> {
        let mut attempt = 0u32;
        while let Some(slot) = self.pool.take(module_key) {
            let injected = self
                .enclave
                .fault_plan()
                .is_some_and(|p| p.should_fire(FaultKind::PoolCorrupt, attempt));
            if injected || slot.dirty_page_count() != 0 {
                self.control_stats.pool_discards += 1;
                eprintln!(
                    "twine-core: discarding corrupt pool slot for module {:02x}{:02x}{:02x}{:02x}…",
                    module_key[0], module_key[1], module_key[2], module_key[3]
                );
                attempt += 1;
                continue;
            }
            return Some(slot);
        }
        None
    }

    /// The key protecting durable park-record files: derived from the
    /// processor + measurement (like sealing), so a restarted enclave of
    /// the same identity re-derives it and a different enclave cannot.
    pub(crate) fn record_key(&self) -> [u8; 16] {
        self.enclave.get_key(KeyName::Seal, b"park-records")
    }

    /// Prefix `inner` with the durable freshness wrapper (format byte 3 +
    /// monotonic tag); identity when no durable store is configured.
    pub(crate) fn wrap_freshness(tag: Option<u64>, inner: Vec<u8>) -> Vec<u8> {
        match tag {
            None => inner,
            Some(tag) => {
                let mut out = Vec::with_capacity(inner.len() + 9);
                out.push(3u8);
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&inner);
                out
            }
        }
    }

    /// Split a parked image into its freshness tag (if wrapped) and inner
    /// snapshot/delta payload.
    pub(crate) fn unwrap_freshness(bytes: &[u8]) -> (Option<u64>, &[u8]) {
        match bytes.split_first() {
            Some((3, rest)) if rest.len() >= 8 => {
                let (tag, inner) = rest.split_at(8);
                (Some(u64::from_le_bytes(tag.try_into().unwrap())), inner)
            }
            _ => (None, bytes),
        }
    }

    /// Open a named session: resolve `wasm` through the module cache
    /// (compiling only on a content miss), copy the bytes into reserved
    /// enclave memory, instantiate against the shared linker, and record the
    /// post-instantiation snapshot. This is the *cold* path — every
    /// subsequent [`invoke`](Self::invoke) on the session is warm.
    ///
    /// # Errors
    /// [`TwineError::Session`] if the name is taken;
    /// [`TwineError::Module`] on decode/validate/instantiate failure.
    pub fn open_session(&mut self, name: &str, wasm: &[u8]) -> Result<&SessionStats, TwineError> {
        if self.sessions.contains_key(name) || self.db_sessions.contains_key(name) {
            return Err(TwineError::Session(format!(
                "session {name:?} already exists"
            )));
        }
        let (compiled, module_key, cache_hit) =
            self.cache.get_or_compile(wasm).map_err(TwineError::Module)?;
        // Copy into reserved memory: charge the boundary copy (one ECALL,
        // exactly like `TwineRuntime::load_wasm`).
        self.enclave.ecall(|| {
            self.enclave.clock().add_cycles(wasm.len() as u64 / 4);
        });

        let backend = make_backend(
            self.tpl.fs,
            &self.enclave,
            self.tpl.pfs_mode,
            self.tpl.pfs_cache_nodes,
            self.profiler.clone(),
        );
        let watermark = Arc::new(AtomicU64::new(0));
        let ctx = build_wasi_ctx(
            backend,
            &self.tpl.preopen,
            self.tpl.rights,
            &self.tpl.args,
            &self.tpl.env,
            &self.enclave,
            &watermark,
        );

        // The pooling fast path (DESIGN.md §11): a poolable module's open
        // checks a pre-instantiated base-state slot out of the pool instead
        // of instantiating, when one is available.
        let pooled = self.control.pool_slots_per_module.is_some() && compiled.poolable();
        let mut instance = match pooled.then(|| self.pool_checkout(&module_key)).flatten() {
            Some(mut slot) => {
                self.control_stats.pool_hits += 1;
                // The slot parks with a placeholder `Box<()>`; hand it the
                // tenant's context. It is already at the base image with a
                // clean dirty bitmap and meter (reset on its way in).
                drop(slot.replace_host_data(Box::new(ctx)));
                slot.fuel = self.tpl.fuel;
                slot
            }
            None => {
                if pooled {
                    self.control_stats.pool_misses += 1;
                }
                // The fuel budget applies to the start function too:
                // tenant-supplied instantiation code cannot run unmetered.
                match Instance::instantiate_shared(
                    Arc::clone(&compiled),
                    &self.linker,
                    Box::new(ctx),
                    self.tpl.fuel,
                ) {
                    Ok(i) => i,
                    Err((e, _ctx)) => {
                        // Roll back the cache entry if this failed open was
                        // the only user, so repeated hostile opens (e.g.
                        // trapping start functions) cannot grow enclave
                        // memory session-lessly.
                        drop(compiled);
                        self.cache.evict_if_unreferenced(&module_key);
                        return Err(TwineError::Module(e));
                    }
                }
            }
        };
        let slot = self.epc_slots.fetch_add(1, Ordering::Relaxed);
        let epc_base_page = (slot + 1) << 32;
        instance.set_page_sink(Some(Box::new(EpcSink::new(
            self.enclave.epc(),
            epc_base_page,
        ))));
        if self.control.epoch_slack.is_some() {
            instance.set_epoch(Some(Arc::clone(&self.epoch)));
        }
        // Pooled sessions share one base image per (module, tier) — captured
        // by whichever open got there first (any racer would capture
        // identical bytes: poolable modules instantiate deterministically).
        // Unpooled sessions keep a private copy, exactly as before pooling.
        let snapshot = if pooled {
            Arc::clone(compiled.base_image_or_init(|| instance.snapshot()))
        } else {
            Arc::new(instance.snapshot())
        };
        // Re-base the dirty bitmap: from here on it over-approximates the
        // pages differing from `snapshot`, which is what makes
        // O(dirty-pages) resets and park deltas sound.
        instance.clear_dirty();
        // Instantiation metering (start function, if any) is not part of any
        // invocation report: every invocation starts from a clean meter.
        instance.meter.reset();

        self.use_seq += 1;
        let session = Session {
            instance,
            common: SessionCommon {
                compiled,
                base_snapshot: snapshot,
                pooled,
                watermark,
                fuel: self.tpl.fuel,
                deadline: self.control.deadline,
                stats: SessionStats {
                    module_key,
                    wasm_bytes: wasm.len(),
                    cache_hit,
                    epc_base_page,
                    invocations: 0,
                },
                last_use: self.use_seq,
                rate: RateState::default(),
                wasm: self
                    .control
                    .durable_parks
                    .is_some()
                    .then(|| Arc::new(wasm.to_vec())),
            },
        };
        let prev = self
            .sessions
            .insert(name.to_string(), SessionSlot::Live(session));
        debug_assert!(prev.is_none(), "session name was checked free above");
        // A fresh session counts against the eviction budget: park LRU
        // peers (never the newcomer) if this open pushed past it.
        self.enforce_pressure(Some(name));
        Ok(&self.sessions[name].common().stats)
    }

    /// Invoke an exported function on a session — the *warm* path: no
    /// decode, validate or instantiate work happens here; per-run WASI state
    /// is recycled in place and guest memory/globals persist from the
    /// previous invocation (tenant state survives across calls).
    pub fn invoke(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, TwineError> {
        self.invoke_raw(session, func, args, false).map(|(_, v)| v)
    }

    /// Run a session's WASI `_start` export.
    pub fn run(&mut self, session: &str) -> Result<RunReport, TwineError> {
        self.invoke_with_report(session, "_start", &[])
            .map(|(report, _)| report)
    }

    /// [`invoke`](Self::invoke), also returning the per-invocation
    /// [`RunReport`] (meter, cycles and EPC counters cover this invocation
    /// only).
    ///
    /// If the guest traps, the session is automatically recycled from its
    /// post-instantiation snapshot — the tenant's next call sees a
    /// fresh-equivalent instance while its protected files survive.
    pub fn invoke_with_report(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
    ) -> Result<(RunReport, Vec<Value>), TwineError> {
        self.invoke_raw(session, func, args, true)
            .map(|(report, v)| (report.expect("report requested"), v))
    }

    /// The warm path proper. `build_report` gates the stdout/stderr/meter
    /// clones so plain [`invoke`](Self::invoke) traffic doesn't pay for a
    /// report it discards.
    fn invoke_raw(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
        build_report: bool,
    ) -> Result<(Option<RunReport>, Vec<Value>), TwineError> {
        // Admission first — a rate-capped tenant is rejected *before* any
        // restore work, so it cannot force seal traffic while throttled.
        let now_cycles = self.enclave.clock().cycles();
        self.use_seq += 1;
        let use_seq = self.use_seq;
        {
            let common = self
                .sessions
                .get_mut(session)
                .ok_or_else(|| TwineError::Session(format!("no session named {session:?}")))?
                .common_mut();
            common.last_use = use_seq;
            if let Some(rate) = self.control.fuel_rate {
                if !common.rate.admit(rate, now_cycles) {
                    self.control_stats.rate_rejections += 1;
                    return Err(TwineError::Overloaded(Overload::RateLimited {
                        tenant: session.to_string(),
                    }));
                }
            }
        }
        // Restore a parked session warm. Done before `invoke_in_enclave`
        // captures its cycle baseline, so the invocation report covers the
        // invocation only (restore cost lands on the shared clock).
        self.ensure_live(session)?;
        let epoch_deadline = self
            .control
            .epoch_slack
            .map(|s| self.epoch.load(Ordering::Relaxed).saturating_add(s));

        let sess = match self.sessions.get_mut(session) {
            Some(SessionSlot::Live(s)) => s,
            _ => unreachable!("ensure_live leaves the session live"),
        };
        // Recycle per-run state; everything else is warm reuse.
        sess.instance.meter.reset();
        sess.instance.fuel = sess.common.fuel;
        sess.instance.deadline = sess.common.deadline;
        if let Some(d) = epoch_deadline {
            sess.instance.epoch_deadline = d;
        }
        sess.instance.state::<WasiCtx>().reset_for_invocation();

        let outcome = invoke_in_enclave(&self.enclave, &mut sess.instance, func, args);
        self.control_stats.retries += outcome.retries;
        if self.control.fuel_rate.is_some() {
            sess.common.rate.charge(outcome.meter.total());
        }
        let result = match outcome.values {
            Ok(values) => {
                sess.common.stats.invocations += 1;
                let report = build_report.then(|| {
                    let fuel_remaining = sess.instance.fuel;
                    let ctx = sess.instance.state::<WasiCtx>();
                    RunReport {
                        exit_code: ctx.exit_code.unwrap_or(0),
                        // Move, don't copy: the next invocation's reset
                        // would discard these buffers anyway.
                        stdout: std::mem::take(&mut ctx.stdout),
                        stderr: std::mem::take(&mut ctx.stderr),
                        wasi_calls: ctx.call_count,
                        meter: outcome.meter,
                        cycles: outcome.cycles,
                        epc: outcome.epc,
                        fuel_remaining,
                    }
                });
                Ok((report, values))
            }
            Err(t) => {
                match t {
                    // A BadInvoke (typo'd export, wrong arity or argument
                    // types) is rejected *before* any guest code runs, so
                    // the tenant's state is untouched — don't wipe it, and
                    // don't count it as a served invocation.
                    Trap::BadInvoke(_) => {}
                    // Preemption is scheduler policy, not a guest fault:
                    // metering was rolled back exactly and guest state is a
                    // deterministic prefix of the full run, so keep it —
                    // the tenant resumes where it left off on its next
                    // admitted call.
                    Trap::DeadlineExceeded => {
                        sess.common.stats.invocations += 1;
                        self.control_stats.deadline_preemptions += 1;
                    }
                    // Guest state is suspect after a genuine trap: restore
                    // the post-instantiation image so the session stays
                    // servable. O(dirty pages) — the bitmap was re-based
                    // against this snapshot at open.
                    _ => {
                        sess.common.stats.invocations += 1;
                        sess.instance.reset_to_image(&sess.common.base_snapshot);
                    }
                }
                Err(TwineError::Trap(t))
            }
        };
        // The invocation may have grown guest memory / EPC residency.
        self.enforce_pressure(Some(session));
        result
    }

    /// Park a live session: flush its page sink, snapshot its guest state,
    /// **seal** the image (it leaves the enclave, so it leaves encrypted
    /// and integrity-bound — accounted as boundary traffic like a
    /// protected-file write) and release its EPC pages. Idempotent on an
    /// already-parked session. The next invoke restores it warm,
    /// bit-identical to never having been parked.
    pub fn park_session(&mut self, name: &str) -> Result<(), TwineError> {
        match self.sessions.get(name) {
            None => {
                return Err(TwineError::Session(format!("no session named {name:?}")));
            }
            // A quarantined session is already sealed out of the enclave;
            // parking it again is a no-op, like an ordinary parked one.
            Some(SessionSlot::Parked(_) | SessionSlot::Quarantined(..)) => return Ok(()),
            Some(SessionSlot::Live(_)) => {}
        }
        let Some(SessionSlot::Live(sess)) = self.sessions.remove(name) else {
            unreachable!("matched Live above");
        };
        let Session {
            mut instance,
            common,
        } = sess;
        instance.flush_page_sink();
        let mem_bytes = instance.memory().map_or(0, |m| m.size_bytes() as u64);
        // Pooled sessions seal an O(dirty pages) delta against the module's
        // shared base image (format version 2); everything else seals the
        // full snapshot exactly as before pooling existed (version 1). The
        // restore path dispatches on the version byte after unsealing.
        // With a durable store, the image is additionally wrapped with a
        // monotonic freshness tag (format byte 3) before sealing.
        let durable = self.control.durable_parks.clone();
        let tag = durable.as_ref().map(|d| d.peek(name) + 1);
        let mut used_fallback = false;
        let mut bytes = Self::wrap_freshness(
            tag,
            if common.pooled {
                instance.snapshot_delta(&common.base_snapshot).to_bytes()
            } else {
                instance.snapshot().to_bytes()
            },
        );
        // Seal under the bounded-retry policy. A pooled park whose delta
        // seal faults degrades gracefully: the first retry switches to the
        // full image — more boundary traffic, never data loss. A hard
        // failure reinstates the live session untouched.
        let mut retries = 0u64;
        let sealed = {
            let mut attempt = 0u32;
            loop {
                match self.enclave.ecall(|| self.enclave.try_seal(attempt, &bytes)) {
                    Ok(s) => break Ok(s),
                    Err(e) if e.is_transient() && attempt + 1 < RETRY_MAX => {
                        if common.pooled && !used_fallback {
                            used_fallback = true;
                            self.control_stats.fallback_parks += 1;
                            bytes = Self::wrap_freshness(tag, instance.snapshot().to_bytes());
                        }
                        attempt += 1;
                        retries += 1;
                        self.enclave.clock().add_cycles(RETRY_BACKOFF_CYCLES << attempt);
                    }
                    Err(e) => break Err(e),
                }
            }
        };
        self.control_stats.retries += retries;
        let reinstate_live = |svc: &mut Self, instance: Instance, common: SessionCommon| {
            svc.sessions
                .insert(name.to_string(), SessionSlot::Live(Session { instance, common }));
        };
        let sealed = match sealed {
            Ok(s) => s,
            Err(e) => {
                reinstate_live(self, instance, common);
                return Err(TwineError::Sgx(e));
            }
        };
        // The sealed image crosses the boundary outward (an idempotent
        // transfer: a faulted OCALL is simply re-issued).
        let mut retries = 0u64;
        let transfer = with_retries(&self.enclave, &mut retries, |attempt| {
            self.enclave.try_ocall(attempt, sealed.len() as u64, || ())
        });
        self.control_stats.retries += retries;
        if let Err(e) = transfer {
            reinstate_live(self, instance, common);
            return Err(TwineError::Sgx(e));
        }
        // Durable write-through: journalled record first, counter bump
        // second — recovery accepts `tag >= counter`, so a crash between
        // the two still recovers the record just written.
        if let (Some(store), Some(wasm)) = (&durable, &common.wasm) {
            if let Err(e) = store.write_record(name, self.record_key(), wasm, &sealed) {
                reinstate_live(self, instance, common);
                return Err(TwineError::Session(format!(
                    "durable park of {name:?} failed: {e}"
                )));
            }
            store.bump(name);
        }
        // Release the session's resident EPC pages (4 KiB granularity, the
        // same the page sink touches in).
        self.enclave
            .epc()
            .discard_range(common.stats.epc_base_page, mem_bytes.div_ceil(4096));
        self.control_stats.parks += 1;
        self.control_stats.sealed_bytes += sealed.len() as u64;
        let ctx = if common.pooled {
            // Recycle the instance itself: O(dirty pages) reset back to the
            // base image, then into the pool, where the next open (or delta
            // restore) of the same module checks it out — no allocation, no
            // data-segment replay.
            instance.reset_to_image(&common.base_snapshot);
            instance.set_page_sink(None);
            instance.set_epoch(None);
            let ctx = *instance
                .replace_host_data(Box::new(()))
                .downcast::<WasiCtx>()
                .expect("service sessions hold a WasiCtx");
            self.pool.put(common.stats.module_key, instance);
            ctx
        } else {
            instance
                .into_state::<WasiCtx>()
                .expect("service sessions hold a WasiCtx")
        };
        if common.pooled && !used_fallback {
            self.control_stats.delta_sealed_bytes += sealed.len() as u64;
        }
        self.sessions.insert(
            name.to_string(),
            SessionSlot::Parked(ParkedSession {
                sealed,
                ctx,
                common,
            }),
        );
        Ok(())
    }

    /// Restore a parked session to live (no-op when already live): the
    /// sealed image crosses back into the enclave, is unsealed and
    /// rehydrated into a fresh instance at the same EPC base range. On any
    /// failure the parked slot is reinstated untouched.
    fn ensure_live(&mut self, name: &str) -> Result<(), TwineError> {
        match self.sessions.get(name) {
            None => {
                return Err(TwineError::Session(format!("no session named {name:?}")));
            }
            Some(SessionSlot::Live(_)) => return Ok(()),
            Some(SessionSlot::Quarantined(_, reason)) => {
                return Err(TwineError::Quarantined {
                    session: name.to_string(),
                    reason: reason.clone(),
                });
            }
            Some(SessionSlot::Parked(_)) => {}
        }
        let Some(SessionSlot::Parked(parked)) = self.sessions.remove(name) else {
            unreachable!("matched Parked above");
        };
        let ParkedSession {
            sealed,
            ctx,
            common,
        } = parked;
        // The sealed image crosses the boundary inward (idempotent
        // transfer, retried on injected faults).
        let mut retries = 0u64;
        let transfer = with_retries(&self.enclave, &mut retries, |attempt| {
            self.enclave.try_ocall(attempt, sealed.len() as u64, || ())
        });
        let reinstate = |svc: &mut Self, ctx: WasiCtx, common: SessionCommon, sealed: Vec<u8>| {
            svc.sessions.insert(
                name.to_string(),
                SessionSlot::Parked(ParkedSession {
                    sealed,
                    ctx,
                    common,
                }),
            );
        };
        if let Err(e) = transfer {
            self.control_stats.retries += retries;
            reinstate(self, ctx, common, sealed);
            return Err(TwineError::Sgx(e));
        }
        // Unseal under the bounded-retry policy: an injected corruption of
        // the inward copy heals on a re-read. If unsealing still fails —
        // retries exhausted, or a genuinely tampered blob — the session is
        // *quarantined*: its sealed state and files are preserved, but it
        // is typed out of service instead of crashing it.
        let unsealed = {
            let mut attempt = 0u32;
            loop {
                match self.enclave.ecall(|| self.enclave.try_unseal(attempt, &sealed)) {
                    Ok(b) => break Ok(b),
                    Err(e) if e.is_transient() && attempt + 1 < RETRY_MAX => {
                        attempt += 1;
                        retries += 1;
                        self.enclave.clock().add_cycles(RETRY_BACKOFF_CYCLES << attempt);
                    }
                    Err(e) => break Err(e),
                }
            }
        };
        self.control_stats.retries += retries;
        let bytes = match unsealed {
            Ok(b) => b,
            Err(e) => {
                let reason = format!("parked image failed to unseal: {e}");
                self.control_stats.quarantines += 1;
                self.sessions.insert(
                    name.to_string(),
                    SessionSlot::Quarantined(
                        ParkedSession {
                            sealed,
                            ctx,
                            common,
                        },
                        reason.clone(),
                    ),
                );
                return Err(TwineError::Quarantined {
                    session: name.to_string(),
                    reason,
                });
            }
        };
        // Strip the durable freshness wrapper if present (warm restores
        // never leave the service's custody, so the tag is not re-checked
        // here — recover() is where freshness gates admission), then
        // dispatch on the image format version: 2 = delta against the
        // module's shared base image (pooled park), 1 = full snapshot.
        let (_tag, payload) = Self::unwrap_freshness(&bytes);
        let mut instance = if payload.first() == Some(&2) {
            let Some(delta) = SnapshotDelta::from_bytes(payload) else {
                reinstate(self, ctx, common, sealed);
                return Err(TwineError::Session(format!(
                    "session {name:?}: corrupt parked image"
                )));
            };
            // Obtain an instance at the base state: a pool slot if one is
            // parked (likely the very slot this session recycled), else a
            // fresh instantiation (deterministic — poolable modules have no
            // start function).
            let mut instance = match self.pool_checkout(&common.stats.module_key) {
                Some(mut slot) => {
                    self.control_stats.pool_hits += 1;
                    drop(slot.replace_host_data(Box::new(ctx)));
                    slot
                }
                None => {
                    self.control_stats.pool_misses += 1;
                    match Instance::instantiate_shared(
                        Arc::clone(&common.compiled),
                        &self.linker,
                        Box::new(ctx),
                        None,
                    ) {
                        Ok(mut i) => {
                            i.clear_dirty();
                            i.meter.reset();
                            i
                        }
                        Err((e, host_data)) => {
                            let ctx = *host_data.downcast::<WasiCtx>().expect("wasi ctx");
                            reinstate(self, ctx, common, sealed);
                            return Err(TwineError::Module(e));
                        }
                    }
                }
            };
            self.control_stats.dirty_pages_restored += delta.page_count() as u64;
            if !instance.apply_delta(&delta) {
                let ctx = *instance
                    .replace_host_data(Box::new(()))
                    .downcast::<WasiCtx>()
                    .expect("wasi ctx");
                reinstate(self, ctx, common, sealed);
                return Err(TwineError::Session(format!(
                    "session {name:?}: parked delta does not fit its module"
                )));
            }
            instance
        } else {
            let Some(snap) = InstanceSnapshot::from_bytes(payload) else {
                reinstate(self, ctx, common, sealed);
                return Err(TwineError::Session(format!(
                    "session {name:?}: corrupt parked image"
                )));
            };
            match Instance::from_snapshot(
                Arc::clone(&common.compiled),
                &self.linker,
                &snap,
                Box::new(ctx),
            ) {
                Ok(i) => i,
                Err((e, host_data)) => {
                    let ctx = *host_data.downcast::<WasiCtx>().expect("wasi ctx");
                    reinstate(self, ctx, common, sealed);
                    return Err(TwineError::Module(e));
                }
            }
        };
        instance.set_page_sink(Some(Box::new(EpcSink::new(
            self.enclave.epc(),
            common.stats.epc_base_page,
        ))));
        if self.control.epoch_slack.is_some() {
            instance.set_epoch(Some(Arc::clone(&self.epoch)));
        }
        self.control_stats.restores += 1;
        self.control_stats.unsealed_bytes += sealed.len() as u64;
        self.sessions
            .insert(name.to_string(), SessionSlot::Live(Session { instance, common }));
        Ok(())
    }

    /// Whether EPC residency exceeds the configured park watermark.
    fn epc_over_watermark(&self) -> bool {
        let Some(frac) = self.control.epc_park_watermark else {
            return false;
        };
        let epc = self.enclave.epc();
        let limit = epc.limit_pages();
        if limit == 0 {
            return false;
        }
        #[allow(clippy::cast_precision_loss)]
        let threshold = (limit as f64 * frac).max(0.0) as usize;
        epc.resident_pages() > threshold
    }

    /// Whether the eviction policy wants fewer live sessions right now.
    fn over_pressure(&self, live: usize) -> bool {
        self.control.max_live_sessions.is_some_and(|max| live > max)
            || self.epc_over_watermark()
    }

    /// Park least-recently-used live sessions while the eviction policy
    /// reports pressure (live count over budget, or EPC residency over the
    /// watermark). `exclude` protects the session currently being served —
    /// eviction never races the in-flight invoke.
    pub(crate) fn enforce_pressure(&mut self, exclude: Option<&str>) {
        // Pool capacity rides the same pressure signal the eviction policy
        // uses: when EPC residency crosses the watermark, idle
        // pre-instantiated slots are freed *before* any live tenant is
        // parked — spare warm capacity is the cheapest memory to give back.
        if self.epc_over_watermark() {
            self.pool.drain();
        }
        loop {
            let live = self.live_session_count() + self.live_db_session_count();
            if live == 0 || !self.over_pressure(live) {
                return;
            }
            // One LRU policy across both session kinds: the victim is the
            // least-recently-used live session, Wasm or database.
            let wasm_victim = self
                .sessions
                .iter()
                .filter(|(n, s)| {
                    matches!(s, SessionSlot::Live(_)) && exclude != Some(n.as_str())
                })
                .min_by_key(|(_, s)| s.common().last_use)
                .map(|(n, s)| (n.clone(), s.common().last_use));
            let db_victim = self
                .db_sessions
                .iter()
                .filter(|(n, d)| d.is_live() && exclude != Some(n.as_str()))
                .min_by_key(|(_, d)| d.last_use)
                .map(|(n, d)| (n.clone(), d.last_use));
            let parked = match (wasm_victim, db_victim) {
                (Some((w, wu)), Some((_, du))) if wu <= du => self.park_session(&w).is_ok(),
                (_, Some((d, _))) => self.db_park_session(&d).is_ok(),
                (Some((w, _)), None) => self.park_session(&w).is_ok(),
                // Only the excluded session is live: nothing to park.
                (None, None) => return,
            };
            if !parked {
                return;
            }
        }
    }

    /// Recycle a session to its post-instantiation state (pool reuse):
    /// memory image, globals and table are restored from the snapshot and
    /// the WASI per-run state is cleared — **without** re-running decode,
    /// validate, instantiate or the data segments. The file-system backend
    /// and the trusted-clock watermark persist (files survive; the clock
    /// stays monotonic).
    pub fn reset_session(&mut self, name: &str) -> Result<(), TwineError> {
        self.ensure_live(name)?;
        self.use_seq += 1;
        let use_seq = self.use_seq;
        let Some(SessionSlot::Live(sess)) = self.sessions.get_mut(name) else {
            unreachable!("ensure_live leaves the session live");
        };
        sess.common.last_use = use_seq;
        sess.instance.reset_to_image(&sess.common.base_snapshot);
        sess.instance.state::<WasiCtx>().reset_for_invocation();
        Ok(())
    }

    /// Override the per-invocation fuel budget of one session (defaults to
    /// the builder's fuel).
    pub fn set_session_fuel(&mut self, name: &str, fuel: Option<u64>) -> Result<(), TwineError> {
        let slot = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| TwineError::Session(format!("no session named {name:?}")))?;
        slot.common_mut().fuel = fuel;
        Ok(())
    }

    /// Override the per-invocation preemption deadline of one session
    /// (defaults to [`ControlPlane::deadline`]). Like fuel, the deadline
    /// is denominated in baseline-constituent instructions; unlike fuel,
    /// exceeding it is a scheduler yield, not a tenant fault — guest state
    /// is kept, not wiped.
    pub fn set_session_deadline(
        &mut self,
        name: &str,
        deadline: Option<u64>,
    ) -> Result<(), TwineError> {
        let slot = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| TwineError::Session(format!("no session named {name:?}")))?;
        slot.common_mut().deadline = deadline;
        Ok(())
    }

    /// The trusted-clock watermark of a session (last `clock_time_get`
    /// value handed to the guest; 0 if the guest never read the clock).
    #[must_use]
    pub fn session_clock_watermark(&self, name: &str) -> Option<u64> {
        self.sessions
            .get(name)
            .map(|s| s.common().watermark.load(Ordering::Relaxed))
    }

    /// Close a session (live or parked), returning its file-system backend
    /// so the embedder can persist or migrate the tenant's protected
    /// files. The cached compiled module stays in the cache for future
    /// sessions — reclaim orphaned entries with
    /// [`module_cache().evict_unreferenced()`](ModuleCache::evict_unreferenced).
    pub fn close_session(&mut self, name: &str) -> Option<Box<dyn FsBackend>> {
        let slot = self.sessions.remove(name)?;
        // Retire the durable record and bump the session's monotonic
        // counter: a replay of the removed record now carries a stale tag
        // and recover() rejects it.
        if let Some(store) = &self.control.durable_parks {
            store.remove_record(name);
            store.bump(name);
        }
        match slot {
            SessionSlot::Live(mut sess) => {
                // Release the session's EPC pages: a closed tenant must not
                // keep pinning residency. Flush first so buffered page
                // transitions fold before the discard, not after.
                sess.instance.flush_page_sink();
                let mem_bytes = sess.instance.memory().map_or(0, |m| m.size_bytes() as u64);
                self.enclave.epc().discard_range(
                    sess.common.stats.epc_base_page,
                    mem_bytes.div_ceil(4096),
                );
                if sess.common.pooled {
                    // Recycle the instance into the pool: the next open of
                    // this module skips instantiation entirely.
                    let mut instance = sess.instance;
                    instance.reset_to_image(&sess.common.base_snapshot);
                    instance.set_page_sink(None);
                    instance.set_epoch(None);
                    let ctx = *instance
                        .replace_host_data(Box::new(()))
                        .downcast::<WasiCtx>()
                        .expect("service sessions hold a WasiCtx");
                    self.pool.put(sess.common.stats.module_key, instance);
                    return Some(wasi_backend_into_box(ctx));
                }
                sess.instance
                    .into_state::<WasiCtx>()
                    .map(wasi_backend_into_box)
            }
            // A parked session's pages were already discarded at park time;
            // its WASI context is right here. Closing a quarantined session
            // likewise returns its backend — the tenant's protected files
            // were never part of the damaged sealed image.
            SessionSlot::Parked(parked) | SessionSlot::Quarantined(parked, _) => {
                Some(wasi_backend_into_box(parked.ctx))
            }
        }
    }

    /// Rebuild the session table from the durable park store after a
    /// (simulated) enclave crash/restart: for every durable record, verify
    /// journal integrity, unseal the image, check its freshness tag
    /// against the processor monotonic counter, recompile the module and
    /// re-admit the session **parked** — its first invoke restores it
    /// bit-identical to the state it durably parked with.
    ///
    /// Freshness: a record whose tag is `>= counter` is accepted (a crash
    /// between record write and counter bump leaves exactly one record one
    /// ahead) and the counter fast-forwards; a *stale* tag is a
    /// rollback/replay and fails typed with [`TwineError::Rollback`].
    ///
    /// Protected files are **not** recovered — they live in per-session
    /// backend storage outside the park image; a recovered session starts
    /// with a fresh backend, exactly like a new open.
    ///
    /// Returns the recovered session names (sorted — recovery order is
    /// deterministic).
    pub fn recover(&mut self) -> Result<Vec<String>, TwineError> {
        let Some(store) = self.control.durable_parks.clone() else {
            return Err(TwineError::Session(
                "recover() requires ControlPlane::durable_parks".to_string(),
            ));
        };
        let key = self.record_key();
        let mut recovered = Vec::new();
        for name in store.session_names() {
            if self.sessions.contains_key(&name) || self.db_sessions.contains_key(&name) {
                continue;
            }
            let (wasm, sealed) = store.read_record(&name, key).map_err(|e| {
                TwineError::Session(format!("durable record for {name:?}: {e}"))
            })?;
            // The sealed image crosses back into the enclave; unseal it to
            // validate integrity and read the freshness tag. Transient
            // (injected) faults are retried like any warm restore.
            let mut retries = 0u64;
            with_retries(&self.enclave, &mut retries, |attempt| {
                self.enclave.try_ocall(attempt, sealed.len() as u64, || ())
            })
            .map_err(TwineError::Sgx)?;
            let bytes = with_retries(&self.enclave, &mut retries, |attempt| {
                self.enclave.ecall(|| self.enclave.try_unseal(attempt, &sealed))
            })
            .map_err(TwineError::Sgx)?;
            self.control_stats.retries += retries;
            let (tag, payload) = Self::unwrap_freshness(&bytes);
            let Some(tag) = tag else {
                return Err(TwineError::Session(format!(
                    "durable record for {name:?} lacks a freshness tag"
                )));
            };
            let want = store.peek(&name);
            if tag < want {
                self.control_stats.rollback_rejected += 1;
                return Err(TwineError::Rollback {
                    session: name,
                    have: tag,
                    want,
                });
            }
            store.fast_forward(&name, tag);
            // Format byte 4: a database-session manifest. Rebuild the
            // tenant's protected backend from the manifest's file images
            // and re-admit the DB session parked — its first statement
            // reopens the database bit-identical to the parked state.
            if payload.first() == Some(&crate::dbsession::DB_MANIFEST_FORMAT) {
                self.db_recover_record(&name, payload, sealed)?;
                self.control_stats.recovered_sessions += 1;
                recovered.push(name);
                continue;
            }
            let pooled = payload.first() == Some(&2);

            let (compiled, module_key, cache_hit) =
                self.cache.get_or_compile(&wasm).map_err(TwineError::Module)?;
            let backend = make_backend(
                self.tpl.fs,
                &self.enclave,
                self.tpl.pfs_mode,
                self.tpl.pfs_cache_nodes,
                self.profiler.clone(),
            );
            let watermark = Arc::new(AtomicU64::new(0));
            let ctx = build_wasi_ctx(
                backend,
                &self.tpl.preopen,
                self.tpl.rights,
                &self.tpl.args,
                &self.tpl.env,
                &self.enclave,
                &watermark,
            );
            // A throwaway instantiation re-derives the base snapshot the
            // restore path patches against (deterministic: same module,
            // same data segments — and for pooled modules the shared base
            // image is captured once per (module, tier) anyway).
            let fresh = match Instance::instantiate_shared(
                Arc::clone(&compiled),
                &self.linker,
                Box::new(ctx),
                self.tpl.fuel,
            ) {
                Ok(i) => i,
                Err((e, _ctx)) => {
                    self.cache.evict_if_unreferenced(&module_key);
                    return Err(TwineError::Module(e));
                }
            };
            let base_snapshot = if pooled {
                Arc::clone(compiled.base_image_or_init(|| fresh.snapshot()))
            } else {
                Arc::new(fresh.snapshot())
            };
            let ctx = fresh
                .into_state::<WasiCtx>()
                .expect("recover instantiates with a WasiCtx");
            let slot = self.epc_slots.fetch_add(1, Ordering::Relaxed);
            let epc_base_page = (slot + 1) << 32;
            self.use_seq += 1;
            let common = SessionCommon {
                compiled,
                base_snapshot,
                pooled,
                watermark,
                fuel: self.tpl.fuel,
                deadline: self.control.deadline,
                stats: SessionStats {
                    module_key,
                    wasm_bytes: wasm.len(),
                    cache_hit,
                    epc_base_page,
                    invocations: 0,
                },
                last_use: self.use_seq,
                rate: RateState::default(),
                wasm: Some(Arc::new(wasm)),
            };
            self.sessions.insert(
                name.clone(),
                SessionSlot::Parked(ParkedSession {
                    sealed,
                    ctx,
                    common,
                }),
            );
            self.control_stats.recovered_sessions += 1;
            recovered.push(name);
        }
        Ok(recovered)
    }
}
