//! The multi-tenant session layer: one simulated enclave hosting many named
//! sessions, each with a persistent instance, plus a content-addressed
//! module cache (DESIGN.md §7).
//!
//! The one-shot [`TwineRuntime`](crate::TwineRuntime) rebuilds everything per
//! run; serving heavy traffic needs the standard compile-once /
//! instantiate-many architecture (wasmtime's `Module`/`Store` split, and the
//! long-lived enclave runtime of the 2023 Twine follow-up). This module
//! supplies it in three tiers of reuse:
//!
//! 1. **Module cache** — identical Wasm bytes compile once; every session of
//!    the same application shares one `Arc<CompiledModule>`, keyed by
//!    SHA-256 of the delivered bytes (content-addressed, so the key doubles
//!    as an integrity measurement of what the enclave runs).
//! 2. **Shared linker** — the WASI + libm host-function table is built once
//!    per service and borrowed by every instantiation.
//! 3. **Persistent sessions** — each session owns an [`Instance`] and a
//!    `WasiCtx` that survive across invocations: a *warm* call performs no
//!    decode, validate or instantiate work at all, and a post-instantiation
//!    [`snapshot`](Instance::snapshot) lets a session be recycled to a
//!    fresh-equivalent state without re-running data segments.
//!
//! Isolation between tenants is preserved: every session gets its own EPC
//! base page range (guest pages never alias across sessions), its own fuel
//! budget, its own file-system backend, and its own trusted-clock
//! monotonicity watermark that persists across invocations (§IV-C).

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use twine_crypto::Sha256;
use twine_pfs::{PfsMode, PfsProfiler};
use twine_sgx::{Enclave, Processor, SimClock};
use twine_wasi::{FsBackend, Rights, WasiCtx};
use twine_wasm::compile::CompiledModule;
use twine_wasm::{ExecTier, Instance, InstanceSnapshot, Linker, ModuleError, Trap, Value};

use crate::runtime::{
    base_linker, build_wasi_ctx, invoke_in_enclave, make_backend, wasi_backend_into_box, EpcSink,
    FsChoice, RunReport, TwineBuilder, TwineError,
};

/// A content-addressed cache of compiled modules: identical Wasm bytes
/// (under the same execution tier) compile once and share one
/// `Arc<CompiledModule>` across all sessions of a service.
pub struct ModuleCache {
    tier: ExecTier,
    entries: HashMap<[u8; 32], Arc<CompiledModule>>,
    hits: u64,
    misses: u64,
}

impl ModuleCache {
    /// Empty cache compiling for `tier`.
    #[must_use]
    pub fn new(tier: ExecTier) -> Self {
        Self {
            tier,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The content address of `wasm` under `tier`: SHA-256 over a
    /// tier-domain-separated encoding of the bytes. Two tiers never share an
    /// entry (their lowered code differs even though semantics agree).
    #[must_use]
    pub fn content_key(wasm: &[u8], tier: ExecTier) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&[match tier {
            ExecTier::Baseline => 0u8,
            ExecTier::Fused => 1u8,
            ExecTier::Reg => 2u8,
        }]);
        h.update(wasm);
        h.finalize()
    }

    /// Look up `wasm` by content, compiling (decode + validate + AoT lower)
    /// only on a miss. Returns the shared module, its content key, and
    /// whether this was a cache hit.
    pub fn get_or_compile(
        &mut self,
        wasm: &[u8],
    ) -> Result<(Arc<CompiledModule>, [u8; 32], bool), ModuleError> {
        let key = Self::content_key(wasm, self.tier);
        if let Some(m) = self.entries.get(&key) {
            self.hits += 1;
            return Ok((Arc::clone(m), key, true));
        }
        let compiled = Arc::new(CompiledModule::from_bytes_with_tier(wasm, self.tier)?);
        self.entries.insert(key, Arc::clone(&compiled));
        self.misses += 1;
        Ok((compiled, key, false))
    }

    /// Number of distinct compiled modules held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no modules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served without compiling.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compile.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop every cached module no live session references (the cache's
    /// `Arc` is the only one left). Returns how many entries were evicted.
    /// Long-lived services that churn through tenants with distinct
    /// binaries call this to keep the cache bounded by the *live* working
    /// set instead of growing with every binary ever served.
    pub fn evict_unreferenced(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, m| Arc::strong_count(m) > 1);
        before - self.entries.len()
    }

    /// Drop all entries (sessions already holding an `Arc` are unaffected;
    /// future opens recompile).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drop one entry if nothing outside the cache references it. Used to
    /// roll back a compile whose session failed to materialise, so failed
    /// opens cannot grow the cache.
    fn evict_if_unreferenced(&mut self, key: &[u8; 32]) {
        if self.entries.get(key).is_some_and(|m| Arc::strong_count(m) == 1) {
            self.entries.remove(key);
        }
    }
}

/// Public per-session bookkeeping.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Content address (SHA-256) of the session's module in the cache.
    pub module_key: [u8; 32],
    /// Size of the delivered Wasm binary in bytes.
    pub wasm_bytes: usize,
    /// Whether opening this session reused an already-compiled module.
    pub cache_hit: bool,
    /// First EPC page of this session's private page range.
    pub epc_base_page: u64,
    /// Warm invocations served so far.
    pub invocations: u64,
}

/// One tenant: a persistent instance + WASI context inside the service's
/// enclave.
struct Session {
    instance: Instance,
    /// Post-instantiation state (data segments applied, start function run)
    /// for pool-recycling via [`TwineService::reset_session`].
    snapshot: InstanceSnapshot,
    /// Keeps the compiled module alive and shared; also handy for tests
    /// asserting that sessions share one cache entry.
    compiled: Arc<CompiledModule>,
    /// Trusted-clock monotonicity watermark (§IV-C), persistent across
    /// invocations and across [`TwineService::reset_session`].
    watermark: Rc<Cell<u64>>,
    fuel: Option<u64>,
    stats: SessionStats,
}

/// A multi-tenant Twine service: many named sessions inside **one**
/// simulated enclave, sharing a module cache and one host-function table.
///
/// ```
/// use twine_core::{FsChoice, TwineBuilder};
/// use twine_wasm::Value;
///
/// let wasm = twine_minicc::compile_to_bytes(
///     "int double_it(int x) { return 2 * x; }").unwrap();
/// let mut svc = TwineBuilder::new()
///     .fs(FsChoice::ProtectedInMemory)
///     .build_service();
/// svc.open_session("tenant-a", &wasm).unwrap();
/// svc.open_session("tenant-b", &wasm).unwrap(); // compiled once, shared
/// assert_eq!(svc.module_cache().len(), 1);
/// // Warm calls: no decode/validate/instantiate.
/// let out = svc.invoke("tenant-a", "double_it", &[Value::I32(21)]).unwrap();
/// assert_eq!(out[0], Value::I32(42));
/// ```
pub struct TwineService {
    enclave: Rc<Enclave>,
    processor: Processor,
    linker: Rc<Linker>,
    cache: ModuleCache,
    sessions: HashMap<String, Session>,
    /// Next private EPC slot; slot `n` covers pages `[(n+1) << 32, ...)`.
    next_epc_slot: u64,
    // Per-session construction template (from the builder).
    fs: FsChoice,
    pfs_mode: PfsMode,
    pfs_cache_nodes: usize,
    preopen: String,
    rights: Rights,
    args: Vec<String>,
    env: Vec<(String, String)>,
    profiler: Option<PfsProfiler>,
    fuel: Option<u64>,
}

impl TwineService {
    pub(crate) fn from_builder(b: TwineBuilder) -> Self {
        let enclave = b.launch_enclave();
        let profiler = b
            .with_profiler
            .then(|| PfsProfiler::new(enclave.clock().clone()));
        Self {
            enclave,
            processor: b.processor,
            linker: Rc::new(base_linker()),
            cache: ModuleCache::new(b.exec_tier),
            sessions: HashMap::new(),
            next_epc_slot: 0,
            fs: b.fs,
            pfs_mode: b.pfs_mode,
            pfs_cache_nodes: b.pfs_cache_nodes,
            preopen: b.preopen,
            rights: b.rights,
            args: b.args,
            env: b.env,
            profiler,
            fuel: b.fuel,
        }
    }

    /// The enclave hosting every session.
    #[must_use]
    pub fn enclave(&self) -> &Rc<Enclave> {
        &self.enclave
    }

    /// The simulated processor.
    #[must_use]
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// The virtual clock (shared by all sessions; includes launch cost).
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        self.enclave.clock()
    }

    /// The content-addressed module cache.
    #[must_use]
    pub fn module_cache(&self) -> &ModuleCache {
        &self.cache
    }

    /// Mutable access to the module cache (eviction policy belongs to the
    /// embedder: e.g. [`ModuleCache::evict_unreferenced`] after a wave of
    /// [`close_session`](Self::close_session)s).
    pub fn module_cache_mut(&mut self) -> &mut ModuleCache {
        &mut self.cache
    }

    /// Number of live sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Names of the live sessions (unordered).
    #[must_use]
    pub fn session_names(&self) -> Vec<&str> {
        self.sessions.keys().map(String::as_str).collect()
    }

    /// Bookkeeping for one session.
    #[must_use]
    pub fn session_stats(&self, name: &str) -> Option<&SessionStats> {
        self.sessions.get(name).map(|s| &s.stats)
    }

    /// The compiled module backing a session (shared across sessions with
    /// identical Wasm bytes).
    #[must_use]
    pub fn session_module(&self, name: &str) -> Option<&Arc<CompiledModule>> {
        self.sessions.get(name).map(|s| &s.compiled)
    }

    /// Open a named session: resolve `wasm` through the module cache
    /// (compiling only on a content miss), copy the bytes into reserved
    /// enclave memory, instantiate against the shared linker, and record the
    /// post-instantiation snapshot. This is the *cold* path — every
    /// subsequent [`invoke`](Self::invoke) on the session is warm.
    ///
    /// # Errors
    /// [`TwineError::Session`] if the name is taken;
    /// [`TwineError::Module`] on decode/validate/instantiate failure.
    pub fn open_session(&mut self, name: &str, wasm: &[u8]) -> Result<&SessionStats, TwineError> {
        if self.sessions.contains_key(name) {
            return Err(TwineError::Session(format!(
                "session {name:?} already exists"
            )));
        }
        let (compiled, module_key, cache_hit) =
            self.cache.get_or_compile(wasm).map_err(TwineError::Module)?;
        // Copy into reserved memory: charge the boundary copy (one ECALL,
        // exactly like `TwineRuntime::load_wasm`).
        self.enclave.ecall(|| {
            self.enclave.clock().add_cycles(wasm.len() as u64 / 4);
        });

        let backend = make_backend(
            self.fs,
            &self.enclave,
            self.pfs_mode,
            self.pfs_cache_nodes,
            self.profiler.clone(),
        );
        let watermark = Rc::new(Cell::new(0u64));
        let ctx = build_wasi_ctx(
            backend,
            &self.preopen,
            self.rights,
            &self.args,
            &self.env,
            &self.enclave,
            &watermark,
        );

        // The fuel budget applies to the start function too: tenant-supplied
        // instantiation code cannot run unmetered.
        let mut instance = match Instance::instantiate_shared(
            Arc::clone(&compiled),
            &self.linker,
            Box::new(ctx),
            self.fuel,
        ) {
            Ok(i) => i,
            Err((e, _ctx)) => {
                // Roll back the cache entry if this failed open was the only
                // user, so repeated hostile opens (e.g. trapping start
                // functions) cannot grow enclave memory session-lessly.
                drop(compiled);
                self.cache.evict_if_unreferenced(&module_key);
                return Err(TwineError::Module(e));
            }
        };
        let slot = self.next_epc_slot;
        self.next_epc_slot += 1;
        let epc_base_page = (slot + 1) << 32;
        instance.set_page_sink(Some(Box::new(EpcSink {
            epc: self.enclave.epc(),
            base_page: epc_base_page,
        })));
        let snapshot = instance.snapshot();
        // Instantiation metering (start function, if any) is not part of any
        // invocation report: every invocation starts from a clean meter.
        instance.meter.reset();

        let session = Session {
            instance,
            snapshot,
            compiled,
            watermark,
            fuel: self.fuel,
            stats: SessionStats {
                module_key,
                wasm_bytes: wasm.len(),
                cache_hit,
                epc_base_page,
                invocations: 0,
            },
        };
        let prev = self.sessions.insert(name.to_string(), session);
        debug_assert!(prev.is_none(), "session name was checked free above");
        Ok(&self.sessions[name].stats)
    }

    /// Invoke an exported function on a session — the *warm* path: no
    /// decode, validate or instantiate work happens here; per-run WASI state
    /// is recycled in place and guest memory/globals persist from the
    /// previous invocation (tenant state survives across calls).
    pub fn invoke(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, TwineError> {
        self.invoke_raw(session, func, args, false).map(|(_, v)| v)
    }

    /// Run a session's WASI `_start` export.
    pub fn run(&mut self, session: &str) -> Result<RunReport, TwineError> {
        self.invoke_with_report(session, "_start", &[])
            .map(|(report, _)| report)
    }

    /// [`invoke`](Self::invoke), also returning the per-invocation
    /// [`RunReport`] (meter, cycles and EPC counters cover this invocation
    /// only).
    ///
    /// If the guest traps, the session is automatically recycled from its
    /// post-instantiation snapshot — the tenant's next call sees a
    /// fresh-equivalent instance while its protected files survive.
    pub fn invoke_with_report(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
    ) -> Result<(RunReport, Vec<Value>), TwineError> {
        self.invoke_raw(session, func, args, true)
            .map(|(report, v)| (report.expect("report requested"), v))
    }

    /// The warm path proper. `build_report` gates the stdout/stderr/meter
    /// clones so plain [`invoke`](Self::invoke) traffic doesn't pay for a
    /// report it discards.
    fn invoke_raw(
        &mut self,
        session: &str,
        func: &str,
        args: &[Value],
        build_report: bool,
    ) -> Result<(Option<RunReport>, Vec<Value>), TwineError> {
        let sess = self
            .sessions
            .get_mut(session)
            .ok_or_else(|| TwineError::Session(format!("no session named {session:?}")))?;

        // Recycle per-run state; everything else is warm reuse.
        sess.instance.meter.reset();
        sess.instance.fuel = sess.fuel;
        sess.instance.state::<WasiCtx>().reset_for_invocation();

        let outcome = invoke_in_enclave(&self.enclave, &mut sess.instance, func, args);
        match outcome.values {
            Ok(values) => {
                sess.stats.invocations += 1;
                let report = build_report.then(|| {
                    let ctx = sess.instance.state::<WasiCtx>();
                    RunReport {
                        exit_code: ctx.exit_code.unwrap_or(0),
                        // Move, don't copy: the next invocation's reset
                        // would discard these buffers anyway.
                        stdout: std::mem::take(&mut ctx.stdout),
                        stderr: std::mem::take(&mut ctx.stderr),
                        wasi_calls: ctx.call_count,
                        meter: outcome.meter,
                        cycles: outcome.cycles,
                        epc: outcome.epc,
                    }
                });
                Ok((report, values))
            }
            Err(t) => {
                if !matches!(t, Trap::BadInvoke(_)) {
                    // Guest state is suspect after a trap: restore the
                    // post-instantiation image so the session stays
                    // servable. A BadInvoke (typo'd export, wrong arity or
                    // argument types) is rejected *before* any guest code
                    // runs, so the tenant's state is untouched — don't wipe
                    // it, and don't count it as a served invocation.
                    sess.stats.invocations += 1;
                    sess.instance.reset_to(&sess.snapshot);
                }
                Err(TwineError::Trap(t))
            }
        }
    }

    /// Recycle a session to its post-instantiation state (pool reuse):
    /// memory image, globals and table are restored from the snapshot and
    /// the WASI per-run state is cleared — **without** re-running decode,
    /// validate, instantiate or the data segments. The file-system backend
    /// and the trusted-clock watermark persist (files survive; the clock
    /// stays monotonic).
    pub fn reset_session(&mut self, name: &str) -> Result<(), TwineError> {
        let sess = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| TwineError::Session(format!("no session named {name:?}")))?;
        sess.instance.reset_to(&sess.snapshot);
        sess.instance.state::<WasiCtx>().reset_for_invocation();
        Ok(())
    }

    /// Override the per-invocation fuel budget of one session (defaults to
    /// the builder's fuel).
    pub fn set_session_fuel(&mut self, name: &str, fuel: Option<u64>) -> Result<(), TwineError> {
        let sess = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| TwineError::Session(format!("no session named {name:?}")))?;
        sess.fuel = fuel;
        Ok(())
    }

    /// The trusted-clock watermark of a session (last `clock_time_get`
    /// value handed to the guest; 0 if the guest never read the clock).
    #[must_use]
    pub fn session_clock_watermark(&self, name: &str) -> Option<u64> {
        self.sessions.get(name).map(|s| s.watermark.get())
    }

    /// Close a session, returning its file-system backend so the embedder
    /// can persist or migrate the tenant's protected files. The cached
    /// compiled module stays in the cache for future sessions — reclaim
    /// orphaned entries with
    /// [`module_cache_mut().evict_unreferenced()`](ModuleCache::evict_unreferenced).
    pub fn close_session(&mut self, name: &str) -> Option<Box<dyn FsBackend>> {
        let sess = self.sessions.remove(name)?;
        sess.instance
            .into_state::<WasiCtx>()
            .map(wasi_backend_into_box)
    }
}
