//! Control-plane policy configuration and counters (DESIGN.md §10).
//!
//! The paper positions Twine as a *service* substrate — one long-lived
//! enclave serving many tenants (§VI runs SQLite workloads behind it). A
//! serving runtime needs three policies the execution engine itself cannot
//! provide:
//!
//! 1. **Eviction** — EPC is scarce (93 MiB usable, §II-B); idle sessions
//!    must not pin resident pages forever. The control plane parks the
//!    least-recently-used sessions: their state is snapshotted, **sealed**
//!    (it leaves the enclave, so it leaves encrypted and integrity-bound,
//!    exactly like protected files), and their EPC pages are released. The
//!    next invoke restores them warm, bit-identical to never having left.
//! 2. **Preemption** — one guest must not monopolise a shard. A
//!    per-invocation deadline (in fuel units, i.e. baseline-constituent
//!    instructions) and/or a shared epoch counter stop a runaway
//!    invocation with exact metering, surfaced as
//!    [`Trap::DeadlineExceeded`](twine_wasm::Trap::DeadlineExceeded).
//! 3. **Admission control** — bounded per-shard queues, per-tenant
//!    in-flight caps and fuel-rate buckets reject excess load *typed*
//!    ([`TwineError::Overloaded`](crate::TwineError)) instead of queueing
//!    it unboundedly.
//!
//! Everything here is plain data; the mechanisms live in
//! `service.rs`/`sharded.rs` (policy) and `twine-wasm`'s dispatch loops
//! (deadline/epoch).

/// Per-tenant fuel-rate cap: a token bucket over *virtual time*. A session
/// accrues `fuel_per_mcycle` units of allowance per million virtual-clock
/// cycles; every invocation's retired instructions add to its debt. An
/// invocation is rejected ([`crate::TwineError::Overloaded`]) while the
/// outstanding debt exceeds `burst`.
///
/// Virtual-time based, so the policy is about the *modelled* machine: a
/// tenant that burns simulated cycles is throttled no matter how fast the
/// host executes the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuelRate {
    /// Allowance accrued per 1e6 virtual cycles.
    pub fuel_per_mcycle: u64,
    /// Maximum outstanding debt before invocations are rejected.
    pub burst: u64,
}

/// Control-plane configuration, set once on the
/// [`TwineBuilder`](crate::TwineBuilder) and applied by every
/// [`TwineService`](crate::TwineService) / shard. All knobs default to
/// `None` — the control plane is fully opt-in and a default-configured
/// service behaves exactly as before it existed.
#[derive(Debug, Clone, Default)]
pub struct ControlPlane {
    /// Park least-recently-used sessions beyond this many live (unparked)
    /// sessions per service/shard.
    pub max_live_sessions: Option<usize>,
    /// Park LRU sessions while EPC residency exceeds this fraction of the
    /// EPC page budget (e.g. `0.9` parks once the pool is 90% full). The
    /// pressure signal is the enclave's lock-free resident-page mirror.
    pub epc_park_watermark: Option<f64>,
    /// Default per-invocation preemption deadline, in fuel units
    /// (baseline-constituent instructions). Overridable per session.
    pub deadline: Option<u64>,
    /// Enable epoch preemption: an invocation survives this many epoch
    /// bumps before yielding with `DeadlineExceeded`. Shard workers bump
    /// the shared epoch once per processed command, and an optional ticker
    /// (`epoch_interval_ms`) bumps it on wall-clock time.
    pub epoch_slack: Option<u64>,
    /// Bound each shard's command queue to this depth; invoke/open
    /// commands that find the queue full are rejected with
    /// [`crate::TwineError::Overloaded`] instead of queueing unboundedly.
    pub queue_depth: Option<usize>,
    /// Per-tenant cap on in-flight commands across the sharded service
    /// (an `invoke_batch` counts as one). Excess calls are rejected with
    /// [`crate::TwineError::Overloaded`].
    pub max_in_flight: Option<u64>,
    /// Per-tenant fuel-rate token bucket (see [`FuelRate`]).
    pub fuel_rate: Option<FuelRate>,
    /// Evict unreferenced module-cache entries whenever the cache holds
    /// more than this many compiled modules (wired to the same pressure
    /// enforcement as session parking).
    pub module_cache_capacity: Option<usize>,
    /// Spawn a wall-clock epoch ticker bumping the shared epoch counter
    /// every this many milliseconds (only meaningful with `epoch_slack`;
    /// protects even a single busy shard from a runaway guest).
    pub epoch_interval_ms: Option<u64>,
    /// Keep up to this many pre-instantiated instance slots per (module,
    /// tier) in an instance pool shared by every shard of the service.
    /// With a pool, opening a session over known bytes (and
    /// restoring a parked one) becomes a slot checkout plus an
    /// O(dirty-pages) patch, and parking seals only the delta against the
    /// module's shared base image instead of the full memory image. Slots
    /// are drained whenever EPC residency crosses `epc_park_watermark` —
    /// idle pre-instantiated capacity is the first casualty of pressure.
    /// `None` (the default) disables pooling entirely: every park seals
    /// the full image, byte-compatible with the pre-pool control plane.
    pub pool_slots_per_module: Option<usize>,
    /// Durable park store: when set, every park additionally writes the
    /// sealed image through to rollback-protected untrusted storage (a
    /// journalled record file per session, tagged with a processor
    /// monotonic counter), and [`TwineService::recover`] can rebuild the
    /// session table from it after a simulated enclave crash/restart.
    /// Stale (replayed) images are rejected with
    /// [`crate::TwineError::Rollback`].
    ///
    /// [`TwineService::recover`]: crate::TwineService::recover
    pub durable_parks: Option<crate::DurableParkStore>,
}

/// Control-plane counters. Per-[`TwineService`](crate::TwineService)
/// (per-shard); [`ShardedService::control_stats`] sums them across shards
/// and adds the handle-level admission counters.
///
/// [`ShardedService::control_stats`]: crate::ShardedService::control_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Sessions parked (sealed out) by the eviction policy or
    /// `park_session`.
    pub parks: u64,
    /// Parked sessions restored warm on demand.
    pub restores: u64,
    /// Bytes of sealed session state written out across the enclave
    /// boundary (also accounted in the enclave's `boundary_bytes`).
    pub sealed_bytes: u64,
    /// Bytes of sealed session state read back in for restores.
    pub unsealed_bytes: u64,
    /// Invocations stopped by the deadline/epoch preemption policy.
    pub deadline_preemptions: u64,
    /// Invocations rejected by the per-tenant fuel-rate bucket.
    pub rate_rejections: u64,
    /// Commands rejected because a bounded shard queue was full
    /// (handle-level; always 0 on a single `TwineService`).
    pub queue_rejections: u64,
    /// Commands rejected by the per-tenant in-flight cap (handle-level;
    /// always 0 on a single `TwineService`).
    pub inflight_rejections: u64,
    /// Live (unparked) sessions at read time.
    pub live_sessions: u64,
    /// Parked sessions at read time.
    pub parked_sessions: u64,
    /// Pool-eligible opens/restores served from a pre-instantiated slot.
    pub pool_hits: u64,
    /// Pool-eligible opens/restores that had to instantiate fresh (pool
    /// empty, drained by pressure, or slot not yet returned).
    pub pool_misses: u64,
    /// 4 KiB pages patched onto base-state instances by delta restores.
    pub dirty_pages_restored: u64,
    /// Bytes of sealed **delta** images written out (also counted in
    /// `sealed_bytes`; the gap between the two is full-image traffic).
    pub delta_sealed_bytes: u64,
    /// Faults fired by an installed [`FaultPlan`](twine_sgx::FaultPlan)
    /// across the whole enclave (gauge, read from the plan; a sharded
    /// aggregate fills it once at the handle, not per shard).
    pub faults_injected: u64,
    /// Boundary crossings retried after a transient injected fault
    /// (ECALL/OCALL/seal/unseal attempts beyond the first).
    pub retries: u64,
    /// Pooled parks that fell back to sealing the full image because the
    /// delta seal kept faulting (graceful degradation, never data loss).
    pub fallback_parks: u64,
    /// Sessions quarantined because their parked image could not be
    /// restored (unseal kept failing): state preserved, invocations
    /// rejected typed instead of crashing the service.
    pub quarantines: u64,
    /// Pooled instance slots discarded at checkout because validation
    /// flagged them (injected corruption or residual dirty pages); the
    /// open falls back to a fresh instantiation.
    pub pool_discards: u64,
    /// Sessions rebuilt from durable parks by [`recover`]
    /// (restart recovery, not warm restores).
    ///
    /// [`recover`]: crate::TwineService::recover
    pub recovered_sessions: u64,
    /// Durable park images rejected during [`recover`] because their
    /// freshness tag was older than the processor monotonic counter (a
    /// rollback/replay attempt).
    ///
    /// [`recover`]: crate::TwineService::recover
    pub rollback_rejected: u64,
    /// SQL statements executed across every DB session (each statement of
    /// a batch counts once).
    pub db_statements: u64,
    /// DB-session statements served from a per-session prepared-statement
    /// cache — zero parser work (the warm path of the plan-cache fix).
    pub stmt_cache_hits: u64,
    /// DB-session statements that had to be parsed and planned.
    pub stmt_cache_misses: u64,
}

impl ControlStats {
    /// Sum counters (gauges included — the sharded aggregate's gauges are
    /// the across-shard totals).
    pub fn merge(&mut self, other: &ControlStats) {
        self.parks += other.parks;
        self.restores += other.restores;
        self.sealed_bytes += other.sealed_bytes;
        self.unsealed_bytes += other.unsealed_bytes;
        self.deadline_preemptions += other.deadline_preemptions;
        self.rate_rejections += other.rate_rejections;
        self.queue_rejections += other.queue_rejections;
        self.inflight_rejections += other.inflight_rejections;
        self.live_sessions += other.live_sessions;
        self.parked_sessions += other.parked_sessions;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.dirty_pages_restored += other.dirty_pages_restored;
        self.delta_sealed_bytes += other.delta_sealed_bytes;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.fallback_parks += other.fallback_parks;
        self.quarantines += other.quarantines;
        self.pool_discards += other.pool_discards;
        self.recovered_sessions += other.recovered_sessions;
        self.rollback_rejected += other.rollback_rejected;
        self.db_statements += other.db_statements;
        self.stmt_cache_hits += other.stmt_cache_hits;
        self.stmt_cache_misses += other.stmt_cache_misses;
    }
}

/// Per-session fuel-rate bucket state (virtual-time token bucket).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RateState {
    /// Outstanding debt in fuel units.
    pub(crate) debt: u64,
    /// Virtual-clock cycles at the last admission check.
    pub(crate) last_cycles: u64,
}

impl RateState {
    /// Refill allowance for the elapsed virtual time, then report whether
    /// an invocation may be admitted under `rate`.
    pub(crate) fn admit(&mut self, rate: FuelRate, now_cycles: u64) -> bool {
        let dt = now_cycles.saturating_sub(self.last_cycles);
        let allowance = dt.saturating_mul(rate.fuel_per_mcycle) / 1_000_000;
        self.debt = self.debt.saturating_sub(allowance);
        self.last_cycles = now_cycles;
        self.debt <= rate.burst
    }

    /// Charge retired work to the bucket.
    pub(crate) fn charge(&mut self, fuel_spent: u64) {
        self.debt = self.debt.saturating_add(fuel_spent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_bucket_refills_with_virtual_time() {
        let rate = FuelRate {
            fuel_per_mcycle: 1_000,
            burst: 500,
        };
        let mut rs = RateState::default();
        assert!(rs.admit(rate, 0));
        rs.charge(1_000);
        // Debt 1000 > burst 500: rejected until time passes.
        assert!(!rs.admit(rate, 0));
        // 400k cycles -> 400 allowance: debt 600, still over burst.
        assert!(!rs.admit(rate, 400_000));
        // Another 200k cycles -> 200 more: debt 400 <= burst.
        assert!(rs.admit(rate, 600_000));
    }

    #[test]
    fn merge_sums_all_counters() {
        let mut a = ControlStats {
            parks: 1,
            restores: 2,
            ..ControlStats::default()
        };
        let b = ControlStats {
            parks: 10,
            queue_rejections: 3,
            ..ControlStats::default()
        };
        a.merge(&b);
        assert_eq!(a.parks, 11);
        assert_eq!(a.restores, 2);
        assert_eq!(a.queue_rejections, 3);
    }
}
