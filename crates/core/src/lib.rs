//! # twine-core — TWINE: a trusted runtime for WebAssembly
//!
//! The paper's primary contribution (§IV): a lightweight, embeddable Wasm
//! runtime nested inside an SGX enclave, exposing WASI to unmodified guest
//! applications and translating it either to *trusted* implementations
//! (the protected file system of `twine-pfs`) or to a *generic untrusted
//! POSIX layer* that leaves the enclave through OCALLs.
//!
//! ```text
//!          ┌──────────────────── enclave (twine-sgx) ───────────────────┐
//!          │  Wasm app (AoT-compiled, from reserved memory)             │
//!          │      │ WASI imports                                        │
//!          │  ┌───▼────────── twine-wasi ABI ────────────┐              │
//!          │  │ trusted impls          generic POSIX     │              │
//!          │  │  fs → twine-pfs         clock → OCALL    │              │
//!          │  │  random → in-enclave    (monotonic guard)│              │
//!          │  └───────┬──────────────────────┬───────────┘              │
//!          └──────────┼──────────────────────┼──────────────────────────┘
//!                 ciphertext             OCALL boundary
//!                     ▼                      ▼
//!              untrusted storage        host OS services
//! ```
//!
//! ## Usage
//!
//! ```
//! use twine_core::{TwineBuilder, FsChoice};
//!
//! let mut twine = TwineBuilder::new()
//!     .fs(FsChoice::ProtectedInMemory)
//!     .build();
//! let wasm = twine_minicc::compile_to_bytes(
//!     "int add(int a, int b) { return a + b; }").unwrap();
//! let app = twine.load_wasm(&wasm).unwrap();
//! let out = twine.invoke(&app, "add", &[2.into(), 40.into()]).unwrap();
//! assert_eq!(out[0], twine_wasm::Value::I32(42));
//! ```
//!
//! The single ECALL design of §IV-C is preserved: one enclave call runs the
//! whole guest application; all host interaction happens through WASI.
//!
//! **Dependency graph**: the integration crate — composes `twine-wasm`
//! (engine + [`ExecTier`]), `twine-wasi` (ABI), `twine-pfs`/`twine-sgx`
//! (trusted fs inside the simulated enclave) and `twine-minicc` (doctests).
//! Consumed by `twine-baselines` and `twine-bench`. Paper anchor: §IV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend_host;
pub mod backend_pfs;
pub mod control;
mod dbsession;
pub mod durable;
pub(crate) mod pool;
pub mod provision;
pub mod runtime;
pub mod service;
pub mod sharded;
pub mod shared_store;

pub use backend_host::HostBackend;
pub use backend_pfs::PfsBackend;
pub use control::{ControlPlane, ControlStats, FuelRate};
pub use durable::DurableParkStore;
pub use provision::{ApplicationProvider, EncryptedApp};
pub use runtime::{FsChoice, Overload, RunReport, TwineApp, TwineBuilder, TwineError, TwineRuntime};
pub use service::{ModuleCache, SessionStats, TwineService};
pub use sharded::{ShardStats, ShardedService};
pub use twine_sqldb::db::StmtCacheStats;
pub use twine_wasm::ExecTier;
