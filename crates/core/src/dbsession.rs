//! Tenant database sessions: secure DB-as-a-service on the serving plane
//! (DESIGN.md §13).
//!
//! The paper's flagship workload is SQLite over the protected file system
//! (§V-C/D); this module lifts it from a one-shot benchmark body onto the
//! session layer. Each DB session owns a **private protected backend**
//! (the same `make_backend` product a Wasm session gets — for the default
//! [`FsChoice::ProtectedInMemory`](crate::FsChoice) every database byte is
//! sealed by `twine-pfs` before it leaves the enclave), and the database
//! opened through [`BackendVfs`] stores its pages *and its rollback
//! journal* in that backend. Because the database is backend state, the
//! session lifecycle carries it for free:
//!
//! * **Warm statements** reuse a live [`Connection`] with its per-session
//!   prepared-statement cache — repeated SQL text does zero parser work
//!   (the replanning fix; counters surface in
//!   [`ControlStats::stmt_cache_hits`](crate::ControlStats)).
//! * **Park/evict** closes the connection (flushing every page into the
//!   backend), seals a *manifest* of the backend's database files (format
//!   byte 4, freshness-wrapped when a durable store is configured) and
//!   releases the session's EPC pages. DB sessions ride the same LRU
//!   pressure policy as Wasm sessions.
//! * **Restore** re-runs the inward transfer + unseal (with the bounded
//!   retry policy; a hard unseal failure quarantines the session) and
//!   reopens the connection over the retained backend — bit-identical to
//!   never having been parked, including crash recovery through the
//!   database's own journal if a park was cut short.
//! * **Durable parks / recover** write the sealed manifest through the
//!   rollback-protected [`DurableParkStore`](crate::DurableParkStore);
//!   after a simulated enclave restart, [`TwineService::recover`]
//!   rebuilds the backend from the manifest's file images and re-admits
//!   the session parked.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use twine_sgx::Enclave;
use twine_sqldb::backend_vfs::BackendVfs;
use twine_sqldb::db::StmtCacheStats;
use twine_sqldb::value::Row;
use twine_sqldb::{Connection, SharedBackend};
use twine_wasi::Errno;

use crate::runtime::{
    make_backend, with_retries, TwineError, RETRY_BACKOFF_CYCLES, RETRY_MAX,
};
use crate::service::TwineService;

/// Park-image format byte for a DB-session manifest (1 = full snapshot,
/// 2 = pooled delta, 3 = freshness wrapper — all owned by `service.rs`).
pub(crate) const DB_MANIFEST_FORMAT: u8 = 4;

/// File name of the tenant database inside its private backend namespace.
const DB_FILE: &str = "tenant.db";

/// `(path, bytes)` image of every file in a parked session's backend.
type ManifestFiles = Vec<(String, Vec<u8>)>;

/// One tenant database session: a private protected backend holding the
/// database, plus the live connection (absent while parked).
pub(crate) struct DbSession {
    /// The session's private backend; the database and its journal live
    /// here, protected by the PFS layer like any session file.
    pub(crate) backend: SharedBackend,
    /// Live connection with its prepared-statement cache; `None` parked.
    pub(crate) conn: Option<Connection>,
    /// Path of the database file inside the backend namespace.
    pub(crate) db_path: String,
    /// First EPC page of this session's private page range (the pager's
    /// page hook touches `epc_base_page + db_page`).
    pub(crate) epc_base_page: u64,
    /// LRU use sequence, shared with Wasm sessions' eviction policy.
    pub(crate) last_use: u64,
    /// Sealed park manifest retained while parked; verified (inward
    /// transfer + unseal) on restore.
    pub(crate) sealed: Option<Vec<u8>>,
    /// Plan-cache counters folded from connections closed by earlier
    /// parks (each park closes the connection; its counters fold here so
    /// per-session totals survive eviction cycles).
    pub(crate) folded_stmt: StmtCacheStats,
    /// Statements prepared on behalf of this session.
    pub(crate) statements: u64,
    /// Quarantine reason, when the park manifest failed to unseal beyond
    /// the retry budget.
    pub(crate) quarantined: Option<String>,
}

impl DbSession {
    /// Whether this session currently holds a live connection.
    pub(crate) fn is_live(&self) -> bool {
        self.conn.is_some() && self.quarantined.is_none()
    }
}

fn db_err(op: &str, path: &str, e: Errno) -> TwineError {
    TwineError::Db(format!("{op} {path}: {e:?}"))
}

/// Sum two plan-cache counter snapshots fieldwise.
fn add_stmt(a: StmtCacheStats, b: StmtCacheStats) -> StmtCacheStats {
    StmtCacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        parses: a.parses + b.parses,
        evictions: a.evictions + b.evictions,
    }
}

impl TwineService {
    /// Open a named database session: a private protected backend is
    /// created from the service's file-system template, a database file
    /// is initialised inside it, and a connection (with its
    /// prepared-statement cache) is kept live for warm statements.
    ///
    /// DB sessions share the Wasm sessions' name space, EPC-slot
    /// allocator and LRU eviction policy.
    ///
    /// # Errors
    /// [`TwineError::Session`] if the name is taken;
    /// [`TwineError::Db`] if the database cannot be initialised.
    pub fn db_open_session(&mut self, name: &str) -> Result<(), TwineError> {
        if self.sessions.contains_key(name) || self.db_sessions.contains_key(name) {
            return Err(TwineError::Session(format!(
                "session {name:?} already exists"
            )));
        }
        let backend: SharedBackend = Arc::new(Mutex::new(make_backend(
            self.tpl.fs,
            &self.enclave,
            self.tpl.pfs_mode,
            self.tpl.pfs_cache_nodes,
            self.profiler.clone(),
        )));
        let db_path = format!("{}/{}", self.tpl.preopen, DB_FILE);
        let slot = self.epc_slots.fetch_add(1, Ordering::Relaxed);
        let epc_base_page = (slot + 1) << 32;
        let conn = Self::db_connect(&self.enclave, &backend, &db_path, epc_base_page)?;
        self.use_seq += 1;
        self.db_sessions.insert(
            name.to_string(),
            DbSession {
                backend,
                conn: Some(conn),
                db_path,
                epc_base_page,
                last_use: self.use_seq,
                sealed: None,
                folded_stmt: StmtCacheStats::default(),
                statements: 0,
                quarantined: None,
            },
        );
        // A fresh DB session counts against the same eviction budget.
        self.enforce_pressure(Some(name));
        Ok(())
    }

    /// Open a connection over a session backend and wire its pager page
    /// hook into the session's private EPC range (a database page cached
    /// inside the enclave is EPC residency, exactly like guest memory).
    fn db_connect(
        enclave: &Arc<Enclave>,
        backend: &SharedBackend,
        db_path: &str,
        epc_base_page: u64,
    ) -> Result<Connection, TwineError> {
        let vfs = BackendVfs::from_shared(backend.clone());
        let mut conn = Connection::open(Box::new(vfs), db_path)
            .map_err(|e| TwineError::Db(e.to_string()))?;
        let epc = enclave.epc();
        conn.set_page_hook(Some(Box::new(move |page, _write| {
            epc.touch(epc_base_page + u64::from(page));
        })));
        Ok(conn)
    }

    /// Execute one SQL statement on a session's database (warm path:
    /// repeated SQL text is served from the session's plan cache with
    /// zero parser work). Returns the number of affected rows.
    ///
    /// # Errors
    /// [`TwineError::Session`] for an unknown name,
    /// [`TwineError::Quarantined`] for a damaged parked session,
    /// [`TwineError::Db`] for a statement the database rejects.
    pub fn db_execute(&mut self, name: &str, sql: &str) -> Result<u64, TwineError> {
        self.db_ensure_live(name)?;
        self.db_run(name, |conn| {
            conn.execute(sql).map(|r| r.affected)
        })
    }

    /// Execute one SQL statement and return its result rows.
    ///
    /// # Errors
    /// As [`db_execute`](Self::db_execute).
    pub fn db_query(&mut self, name: &str, sql: &str) -> Result<Vec<Row>, TwineError> {
        self.db_ensure_live(name)?;
        self.db_run(name, |conn| conn.execute(sql).map(|r| r.rows))
    }

    /// Execute a batch of statements in order on a session's database,
    /// returning the total affected-row count. The first failing
    /// statement aborts the remainder (statements already executed keep
    /// their effects — batch entries are individually autocommitted, or
    /// grouped by explicit BEGIN/COMMIT entries inside the batch).
    ///
    /// # Errors
    /// As [`db_execute`](Self::db_execute).
    pub fn db_execute_batch(
        &mut self,
        name: &str,
        stmts: &[String],
    ) -> Result<u64, TwineError> {
        self.db_ensure_live(name)?;
        self.db_run(name, |conn| {
            let mut affected = 0u64;
            for sql in stmts {
                affected += conn.execute(sql)?.affected;
            }
            Ok(affected)
        })
    }

    /// Names of the tables in a session's database schema (sorted — the
    /// serving-plane analogue of reading `sqlite_master`).
    ///
    /// # Errors
    /// As [`db_execute`](Self::db_execute).
    pub fn db_table_names(&mut self, name: &str) -> Result<Vec<String>, TwineError> {
        self.db_ensure_live(name)?;
        self.db_run(name, |conn| {
            let mut tables: Vec<String> = conn.schema().tables.keys().cloned().collect();
            tables.sort();
            Ok(tables)
        })
    }

    /// Run `f` on the session's live connection, folding the plan-cache
    /// counter deltas into the control-plane stats.
    fn db_run<T>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Connection) -> twine_sqldb::DbResult<T>,
    ) -> Result<T, TwineError> {
        let sess = self
            .db_sessions
            .get_mut(name)
            .expect("db_ensure_live leaves the session present");
        let conn = sess
            .conn
            .as_mut()
            .expect("db_ensure_live leaves the session live");
        let before = conn.stmt_cache_stats();
        let out = f(conn);
        let after = conn.stmt_cache_stats();
        let prepared = (after.hits + after.misses) - (before.hits + before.misses);
        sess.statements += prepared;
        self.control_stats.stmt_cache_hits += after.hits - before.hits;
        self.control_stats.stmt_cache_misses += after.misses - before.misses;
        self.control_stats.db_statements += prepared;
        out.map_err(|e| TwineError::Db(e.to_string()))
    }

    /// Restore a parked DB session to live (bumps LRU; no-op when
    /// already live): the sealed manifest crosses back into the enclave
    /// and is unsealed (integrity check under the bounded retry policy —
    /// a hard failure quarantines the session), then the connection is
    /// reopened over the retained backend.
    fn db_ensure_live(&mut self, name: &str) -> Result<(), TwineError> {
        self.use_seq += 1;
        let use_seq = self.use_seq;
        let (sealed, backend, db_path, epc_base_page, live, quarantined) = {
            let sess = self
                .db_sessions
                .get_mut(name)
                .ok_or_else(|| TwineError::Session(format!("no session named {name:?}")))?;
            sess.last_use = use_seq;
            (
                sess.sealed.clone(),
                sess.backend.clone(),
                sess.db_path.clone(),
                sess.epc_base_page,
                sess.conn.is_some(),
                sess.quarantined.clone(),
            )
        };
        if let Some(reason) = quarantined {
            return Err(TwineError::Quarantined {
                session: name.to_string(),
                reason,
            });
        }
        if live {
            return Ok(());
        }
        if let Some(sealed) = &sealed {
            // Inward transfer of the manifest (idempotent; retried on
            // injected faults).
            let mut retries = 0u64;
            let transfer = with_retries(&self.enclave, &mut retries, |attempt| {
                self.enclave.try_ocall(attempt, sealed.len() as u64, || ())
            });
            self.control_stats.retries += retries;
            transfer.map_err(TwineError::Sgx)?;
            // Unseal to validate integrity. The backend is authoritative
            // for the data; what the unseal proves is that the park-time
            // manifest (and thus the durable record, when one exists) is
            // intact. A hard failure quarantines the session.
            let mut retries = 0u64;
            let unsealed = {
                let mut attempt = 0u32;
                loop {
                    match self
                        .enclave
                        .ecall(|| self.enclave.try_unseal(attempt, sealed))
                    {
                        Ok(b) => break Ok(b),
                        Err(e) if e.is_transient() && attempt + 1 < RETRY_MAX => {
                            attempt += 1;
                            retries += 1;
                            self.enclave
                                .clock()
                                .add_cycles(RETRY_BACKOFF_CYCLES << attempt);
                        }
                        Err(e) => break Err(e),
                    }
                }
            };
            self.control_stats.retries += retries;
            match unsealed {
                Ok(bytes) => {
                    let (_tag, payload) = Self::unwrap_freshness(&bytes);
                    if Self::decode_db_manifest(payload).is_none() {
                        let reason = "parked DB manifest is corrupt".to_string();
                        self.db_quarantine(name, &reason);
                        return Err(TwineError::Quarantined {
                            session: name.to_string(),
                            reason,
                        });
                    }
                }
                Err(e) => {
                    let reason = format!("parked DB manifest failed to unseal: {e}");
                    self.db_quarantine(name, &reason);
                    return Err(TwineError::Quarantined {
                        session: name.to_string(),
                        reason,
                    });
                }
            }
            self.control_stats.unsealed_bytes += sealed.len() as u64;
        }
        let conn = Self::db_connect(&self.enclave, &backend, &db_path, epc_base_page)?;
        self.control_stats.restores += 1;
        let sess = self
            .db_sessions
            .get_mut(name)
            .expect("session checked present above");
        sess.conn = Some(conn);
        // The restore re-admitted a live session (and its page cache):
        // under a live-session budget someone else may have to park.
        self.enforce_pressure(Some(name));
        Ok(())
    }

    fn db_quarantine(&mut self, name: &str, reason: &str) {
        self.control_stats.quarantines += 1;
        if let Some(sess) = self.db_sessions.get_mut(name) {
            sess.quarantined = Some(reason.to_string());
        }
    }

    /// Park a DB session: close the connection (every dirty page flushes
    /// into the protected backend), seal a manifest of the database files
    /// (freshness-wrapped when a durable store is configured, then
    /// written through the rollback-protected record file), and release
    /// the session's EPC pages. Idempotent on an already-parked session.
    ///
    /// # Errors
    /// [`TwineError::Session`] for an unknown name; [`TwineError::Sgx`]
    /// if sealing/transfer faults outlast the retry budget (the database
    /// itself is already safe in the backend — only the manifest, and
    /// with it the durable record, is missing).
    pub fn db_park_session(&mut self, name: &str) -> Result<(), TwineError> {
        let (conn, backend, db_path, epc_base_page) = {
            let sess = match self.db_sessions.get_mut(name) {
                None => {
                    return Err(TwineError::Session(format!("no session named {name:?}")));
                }
                Some(s) => s,
            };
            let Some(conn) = sess.conn.take() else {
                // Already parked (or quarantined, i.e. sealed out too).
                return Ok(());
            };
            // The close below drops the connection's counters; fold them
            // into the session so per-tenant totals survive eviction.
            sess.folded_stmt = add_stmt(sess.folded_stmt, conn.stmt_cache_stats());
            (
                conn,
                sess.backend.clone(),
                sess.db_path.clone(),
                sess.epc_base_page,
            )
        };
        let db_pages = u64::from(conn.page_count());
        // Close flushes every cached page through the VFS into the
        // backend; from here the backend alone is the database. If the
        // close itself fails the session stays parked — the database's
        // rollback journal makes the next reopen recover consistently.
        conn.close().map_err(|e| TwineError::Db(e.to_string()))?;
        let manifest = Self::encode_db_manifest(&backend, &db_path)?;
        let durable = self.control.durable_parks.clone();
        let tag = durable.as_ref().map(|d| d.peek(name) + 1);
        let bytes = Self::wrap_freshness(tag, manifest);
        // Seal under the bounded-retry policy, like a Wasm-session park.
        let mut retries = 0u64;
        let sealed = with_retries(&self.enclave, &mut retries, |attempt| {
            self.enclave.ecall(|| self.enclave.try_seal(attempt, &bytes))
        });
        self.control_stats.retries += retries;
        let sealed = sealed.map_err(TwineError::Sgx)?;
        // The sealed manifest crosses the boundary outward.
        let mut retries = 0u64;
        let transfer = with_retries(&self.enclave, &mut retries, |attempt| {
            self.enclave.try_ocall(attempt, sealed.len() as u64, || ())
        });
        self.control_stats.retries += retries;
        transfer.map_err(TwineError::Sgx)?;
        // Durable write-through: record first, counter bump second (the
        // same crash window the Wasm park path tolerates).
        if let Some(store) = &durable {
            store
                .write_record(name, self.record_key(), &[], &sealed)
                .map_err(|e| {
                    TwineError::Session(format!("durable park of {name:?} failed: {e}"))
                })?;
            store.bump(name);
        }
        // Release the pages the pager's cache had resident (+1 for the
        // header page the hook also touches via page id offsets).
        self.enclave
            .epc()
            .discard_range(epc_base_page, db_pages + 1);
        self.control_stats.parks += 1;
        self.control_stats.sealed_bytes += sealed.len() as u64;
        if let Some(sess) = self.db_sessions.get_mut(name) {
            sess.sealed = Some(sealed);
        }
        Ok(())
    }

    /// Close a DB session (live or parked), returning its backend so the
    /// embedder can persist or migrate the tenant's protected database.
    /// Retires any durable record (a replay is then rejected as stale).
    pub fn db_close_session(&mut self, name: &str) -> Option<SharedBackend> {
        let sess = self.db_sessions.remove(name)?;
        if let Some(store) = &self.control.durable_parks {
            store.remove_record(name);
            store.bump(name);
        }
        if let Some(conn) = sess.conn {
            let db_pages = u64::from(conn.page_count());
            let _ = conn.close();
            self.enclave
                .epc()
                .discard_range(sess.epc_base_page, db_pages + 1);
        }
        Some(sess.backend)
    }

    /// Number of open DB sessions (live + parked).
    #[must_use]
    pub fn db_session_count(&self) -> usize {
        self.db_sessions.len()
    }

    /// Number of live (unparked) DB sessions.
    #[must_use]
    pub fn live_db_session_count(&self) -> usize {
        self.db_sessions.values().filter(|s| s.is_live()).count()
    }

    /// Number of parked (connection closed, manifest sealed) DB sessions.
    #[must_use]
    pub fn parked_db_session_count(&self) -> usize {
        self.db_sessions
            .values()
            .filter(|s| s.conn.is_none() && s.quarantined.is_none())
            .count()
    }

    /// Whether a DB session is currently parked.
    #[must_use]
    pub fn db_session_parked(&self, name: &str) -> Option<bool> {
        self.db_sessions.get(name).map(|s| s.conn.is_none())
    }

    /// Whether a DB session is quarantined (its park manifest failed to
    /// restore).
    #[must_use]
    pub fn db_session_quarantined(&self, name: &str) -> Option<bool> {
        self.db_sessions.get(name).map(|s| s.quarantined.is_some())
    }

    /// Names of the open DB sessions (unordered; includes parked).
    #[must_use]
    pub fn db_session_names(&self) -> Vec<&str> {
        self.db_sessions.keys().map(String::as_str).collect()
    }

    /// Cumulative plan-cache counters for one DB session, surviving
    /// park/restore cycles (counters of closed connections fold in).
    #[must_use]
    pub fn db_stmt_cache_stats(&self, name: &str) -> Option<StmtCacheStats> {
        self.db_sessions.get(name).map(|s| {
            s.conn
                .as_ref()
                .map_or(s.folded_stmt, |c| add_stmt(s.folded_stmt, c.stmt_cache_stats()))
        })
    }

    /// Encode the park manifest: format byte 4, the database path, then
    /// every database file (the database itself and, if a park interrupted
    /// a transaction, its rollback journal) with its full contents read
    /// back through the backend.
    fn encode_db_manifest(
        backend: &SharedBackend,
        db_path: &str,
    ) -> Result<Vec<u8>, TwineError> {
        let mut out = vec![DB_MANIFEST_FORMAT];
        out.extend_from_slice(&(db_path.len() as u32).to_le_bytes());
        out.extend_from_slice(db_path.as_bytes());
        let paths = [db_path.to_string(), format!("{db_path}-journal")];
        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        {
            let mut b = backend.lock().unwrap();
            for path in &paths {
                if !b.exists(path) {
                    continue;
                }
                let mut f = b
                    .open(path, false, false)
                    .map_err(|e| db_err("open", path, e))?;
                let size = f.size().map_err(|e| db_err("size", path, e))?;
                f.seek(0).map_err(|e| db_err("seek", path, e))?;
                let mut data = vec![0u8; size as usize];
                let mut done = 0;
                while done < data.len() {
                    let n = f
                        .read(&mut data[done..])
                        .map_err(|e| db_err("read", path, e))?;
                    if n == 0 {
                        break;
                    }
                    done += n;
                }
                files.push((path.clone(), data));
            }
        }
        out.extend_from_slice(&(files.len() as u32).to_le_bytes());
        for (path, data) in files {
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(&data);
        }
        Ok(out)
    }

    /// Decode a park manifest into `(db_path, files)`. `None` on any
    /// structural corruption.
    fn decode_db_manifest(payload: &[u8]) -> Option<(String, ManifestFiles)> {
        let rest = payload.strip_prefix(&[DB_MANIFEST_FORMAT])?;
        let (path_len, rest) = read_u32(rest)?;
        let (db_path, mut rest) = read_str(rest, path_len as usize)?;
        let (count, r) = read_u32(rest)?;
        rest = r;
        let mut files = Vec::new();
        for _ in 0..count {
            let (plen, r) = read_u32(rest)?;
            let (path, r) = read_str(r, plen as usize)?;
            let (dlen, r) = read_u64(r)?;
            if r.len() < dlen as usize {
                return None;
            }
            let (data, r) = r.split_at(dlen as usize);
            files.push((path, data.to_vec()));
            rest = r;
        }
        Some((db_path, files))
    }

    /// Rebuild a DB session from a durable park record (dispatched by
    /// [`TwineService::recover`] on format byte 4): write the manifest's
    /// file images into a fresh protected backend and re-admit the
    /// session **parked** — its first statement reopens the database
    /// bit-identical to the durably parked state.
    pub(crate) fn db_recover_record(
        &mut self,
        name: &str,
        payload: &[u8],
        sealed: Vec<u8>,
    ) -> Result<(), TwineError> {
        let (db_path, files) = Self::decode_db_manifest(payload).ok_or_else(|| {
            TwineError::Session(format!("durable DB record for {name:?} is corrupt"))
        })?;
        let backend: SharedBackend = Arc::new(Mutex::new(make_backend(
            self.tpl.fs,
            &self.enclave,
            self.tpl.pfs_mode,
            self.tpl.pfs_cache_nodes,
            self.profiler.clone(),
        )));
        {
            let mut b = backend.lock().unwrap();
            for (path, data) in &files {
                let mut f = b
                    .open(path, true, true)
                    .map_err(|e| db_err("create", path, e))?;
                let mut done = 0;
                while done < data.len() {
                    let n = f
                        .write(&data[done..])
                        .map_err(|e| db_err("write", path, e))?;
                    if n == 0 {
                        return Err(TwineError::Db(format!("short write on {path}")));
                    }
                    done += n;
                }
                f.sync().map_err(|e| db_err("sync", path, e))?;
            }
        }
        let slot = self.epc_slots.fetch_add(1, Ordering::Relaxed);
        let epc_base_page = (slot + 1) << 32;
        self.use_seq += 1;
        self.db_sessions.insert(
            name.to_string(),
            DbSession {
                backend,
                conn: None,
                db_path,
                epc_base_page,
                last_use: self.use_seq,
                sealed: Some(sealed),
                folded_stmt: StmtCacheStats::default(),
                statements: 0,
                quarantined: None,
            },
        );
        Ok(())
    }
}

fn read_u32(b: &[u8]) -> Option<(u32, &[u8])> {
    if b.len() < 4 {
        return None;
    }
    let (n, rest) = b.split_at(4);
    Some((u32::from_le_bytes(n.try_into().unwrap()), rest))
}

fn read_u64(b: &[u8]) -> Option<(u64, &[u8])> {
    if b.len() < 8 {
        return None;
    }
    let (n, rest) = b.split_at(8);
    Some((u64::from_le_bytes(n.try_into().unwrap()), rest))
}

fn read_str(b: &[u8], len: usize) -> Option<(String, &[u8])> {
    if b.len() < len {
        return None;
    }
    let (s, rest) = b.split_at(len);
    Some((String::from_utf8(s.to_vec()).ok()?, rest))
}
