//! The sharded, multi-threaded service: N worker threads, each owning a
//! [`TwineService`] shard, all inside **one** simulated enclave
//! (DESIGN.md §9).
//!
//! The Twine follow-up runtime serves many tenants from one long-lived
//! enclave; a single-threaded service caps that at one core. This module
//! partitions the *session namespace* across worker threads by stable
//! session-key hash, while every expensive immutable artifact stays
//! shared: the enclave (clock, EPC pool, boundary counters), the
//! host-function [`Linker`](twine_wasm::Linker), the content-addressed
//! [`ModuleCache`], and the EPC-slot allocator. Per-session mutable state
//! (the `Instance`, its `WasiCtx`, the frame arena) is **single-owner**:
//! it lives on exactly one shard thread and is never locked.
//!
//! # Determinism
//!
//! Commands for one session always route to the same shard and are
//! processed in channel FIFO order, so a client that issues its calls for
//! a given session sequentially observes exactly the per-session ordering
//! of a single-threaded service. Everything a session computes depends
//! only on its own state: results, traps, per-class meters and fuel are
//! **bit-identical** to a single-threaded replay of the same per-session
//! call sequence (the `concurrent_serving` differential suite enforces
//! this). Only *globally shared counters* — virtual-clock cycles, EPC
//! fault counts, boundary stats — depend on cross-shard interleaving.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use twine_sgx::{Enclave, SimClock};
use twine_wasi::FsBackend;
use twine_wasm::Value;

use crate::control::{ControlPlane, ControlStats};
use crate::runtime::{Overload, RunReport, TwineBuilder, TwineError};

/// Reply payload of an invoke command (report present iff requested).
type InvokeReply = Result<(Option<RunReport>, Vec<Value>), TwineError>;
use crate::service::{ModuleCache, SessionStats, SessionTemplate, TwineService};

/// Per-shard serving counters, for load inspection and the `fig8_serving
/// --threads` harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Live sessions on this shard.
    pub sessions: usize,
    /// Invocations (including `run`s) served by this shard.
    pub invocations: u64,
    /// Nanoseconds this shard spent *processing* commands (excludes idle
    /// waiting on its queue). On Linux this is the worker thread's actual
    /// CPU time (`/proc/thread-self/schedstat`), so it stays accurate even
    /// when the host has fewer cores than shards and the scheduler
    /// time-slices them; elsewhere it falls back to wall-clock spent
    /// inside command processing. On a machine with one core per shard,
    /// `max(busy_ns)` across shards models the parallel makespan of the
    /// served work — the modelled-scaling figure of `fig8_serving
    /// --threads` (DESIGN.md §9).
    pub busy_ns: u64,
}

/// This thread's cumulative on-CPU nanoseconds (Linux:
/// `/proc/thread-self/schedstat`, first field; computed precisely at read
/// time by the kernel). `None` where unavailable.
fn thread_cpu_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    s.split_whitespace().next()?.parse().ok()
}

/// One request to a shard worker. Every variant carries a reply sender of
/// the **unified** [`Reply`] type: the public API is synchronous per
/// caller, concurrency comes from many caller threads addressing disjoint
/// shards.
///
/// Replies travel over a per-client-thread channel that is **reused
/// across calls** (see [`with_reply_channel`]). PR 5 allocated a fresh
/// mpsc channel pair per request; at serving rates that was two shared
/// allocations and two atomics of channel setup per call, paid on every
/// warm invocation from every client — measurable allocator and cache
/// traffic once many shards ran hot (ROADMAP open item 1). A batch
/// ([`Cmd::InvokeBatch`]) crosses the queue once in each direction for
/// its whole run of calls.
enum Cmd {
    Open {
        name: String,
        wasm: Vec<u8>,
        reply: Sender<Reply>,
    },
    Invoke {
        name: String,
        func: String,
        args: Vec<Value>,
        want_report: bool,
        reply: Sender<Reply>,
    },
    InvokeBatch {
        name: String,
        func: String,
        args_list: Vec<Vec<Value>>,
        reply: Sender<Reply>,
    },
    Reset {
        name: String,
        reply: Sender<Reply>,
    },
    SetFuel {
        name: String,
        fuel: Option<u64>,
        reply: Sender<Reply>,
    },
    SetDeadline {
        name: String,
        deadline: Option<u64>,
        reply: Sender<Reply>,
    },
    Park {
        name: String,
        reply: Sender<Reply>,
    },
    ControlStats {
        reply: Sender<Reply>,
    },
    Watermark {
        name: String,
        reply: Sender<Reply>,
    },
    Close {
        name: String,
        reply: Sender<Reply>,
    },
    Stats {
        name: String,
        reply: Sender<Reply>,
    },
    Parked {
        name: String,
        reply: Sender<Reply>,
    },
    Module {
        name: String,
        reply: Sender<Reply>,
    },
    ShardStats {
        reply: Sender<Reply>,
    },
    DbOpen {
        name: String,
        reply: Sender<Reply>,
    },
    DbExec {
        name: String,
        sql: String,
        reply: Sender<Reply>,
    },
    DbQuery {
        name: String,
        sql: String,
        reply: Sender<Reply>,
    },
    DbBatch {
        name: String,
        stmts: Vec<String>,
        reply: Sender<Reply>,
    },
    DbPark {
        name: String,
        reply: Sender<Reply>,
    },
    DbClose {
        name: String,
        reply: Sender<Reply>,
    },
    DbParked {
        name: String,
        reply: Sender<Reply>,
    },
    DbStmtStats {
        name: String,
        reply: Sender<Reply>,
    },
    DbTables {
        name: String,
        reply: Sender<Reply>,
    },
}

/// A shard worker's answer to one [`Cmd`] (variants mirror the commands).
enum Reply {
    Open(Result<SessionStats, TwineError>),
    Invoke(InvokeReply),
    InvokeBatch(Result<Vec<Vec<Value>>, TwineError>),
    Unit(Result<(), TwineError>),
    Watermark(Option<u64>),
    Close(Option<Box<dyn FsBackend>>),
    Stats(Option<SessionStats>),
    Parked(Option<bool>),
    Module(Option<Arc<twine_wasm::compile::CompiledModule>>),
    ShardStats(ShardStats),
    Control(ControlStats),
    DbAffected(Result<u64, TwineError>),
    DbRows(Result<Vec<twine_sqldb::value::Row>, TwineError>),
    DbClose(Option<twine_sqldb::SharedBackend>),
    DbParked(Option<bool>),
    DbStmtStats(Option<twine_sqldb::db::StmtCacheStats>),
    DbTables(Result<Vec<String>, TwineError>),
}

/// A shard's command queue sender: unbounded by default, bounded when the
/// control plane sets [`ControlPlane::queue_depth`].
enum ShardTx {
    Unbounded(Sender<Cmd>),
    Bounded(SyncSender<Cmd>),
}

/// Why a non-blocking send did not enqueue.
enum SendAttempt {
    Full,
    Disconnected,
}

impl ShardTx {
    /// Blocking send — for control/introspection commands, which are never
    /// load-shed. Workers always drain their queue, so on a full bounded
    /// queue this waits briefly instead of deadlocking.
    fn send(&self, cmd: Cmd) -> Result<(), ()> {
        match self {
            ShardTx::Unbounded(tx) => tx.send(cmd).map_err(|_| ()),
            ShardTx::Bounded(tx) => tx.send(cmd).map_err(|_| ()),
        }
    }

    /// Non-blocking send — for load-bearing commands (open/invoke/batch):
    /// a full bounded queue rejects (backpressure) instead of queueing
    /// unboundedly.
    fn try_send(&self, cmd: Cmd) -> Result<(), SendAttempt> {
        match self {
            ShardTx::Unbounded(tx) => tx.send(cmd).map_err(|_| SendAttempt::Disconnected),
            ShardTx::Bounded(tx) => tx.try_send(cmd).map_err(|e| match e {
                TrySendError::Full(_) => SendAttempt::Full,
                TrySendError::Disconnected(_) => SendAttempt::Disconnected,
            }),
        }
    }
}

/// RAII decrement of a tenant's in-flight count (see
/// [`ControlPlane::max_in_flight`]). Held by the caller across the
/// send → recv round trip, so the count covers queued *and* executing
/// commands.
struct InFlightGuard<'a> {
    map: &'a Mutex<HashMap<String, u64>>,
    name: String,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut m = self.map.lock().unwrap();
        if let Some(n) = m.get_mut(&self.name) {
            *n -= 1;
            if *n == 0 {
                m.remove(&self.name);
            }
        }
    }
}

/// Run `f` with this thread's reusable reply channel. One channel pair per
/// client thread for its lifetime, instead of one per call: requests are
/// strictly sequential per thread (send → block on recv), so the channel
/// is empty between calls. Stale replies can only exist if a previous call
/// panicked between send and recv — drained defensively before reuse.
fn with_reply_channel<R>(f: impl FnOnce(&Sender<Reply>, &Receiver<Reply>) -> R) -> R {
    thread_local! {
        static REPLY: (Sender<Reply>, Receiver<Reply>) = channel();
    }
    REPLY.with(|(tx, rx)| {
        while rx.try_recv().is_ok() {}
        f(tx, rx)
    })
}

/// A multi-threaded, sharded Twine service: named sessions partitioned
/// across worker threads by session-key hash, sharing one enclave, one
/// linker and one module cache.
///
/// The handle is `Send + Sync`: any number of client threads may call it
/// concurrently. Calls for the *same* session issued sequentially by one
/// client keep single-threaded semantics exactly (see the module docs).
///
/// ```
/// use twine_core::TwineBuilder;
/// use twine_wasm::Value;
///
/// let wasm = twine_minicc::compile_to_bytes(
///     "int double_it(int x) { return 2 * x; }").unwrap();
/// let svc = TwineBuilder::new().build_sharded(4);
/// svc.open_session("tenant-a", &wasm).unwrap();
/// svc.open_session("tenant-b", &wasm).unwrap(); // compiled once, shared
/// assert_eq!(svc.module_cache().len(), 1);
/// let out = svc.invoke("tenant-a", "double_it", &[Value::I32(21)]).unwrap();
/// assert_eq!(out[0], Value::I32(42));
/// ```
pub struct ShardedService {
    shards: Vec<ShardTx>,
    workers: Vec<JoinHandle<()>>,
    enclave: Arc<Enclave>,
    cache: Arc<ModuleCache>,
    control: ControlPlane,
    /// Shared preemption epoch (one counter across all shards; see
    /// [`ControlPlane::epoch_slack`]).
    epoch: Arc<AtomicU64>,
    /// Per-tenant in-flight command counts (only consulted when
    /// [`ControlPlane::max_in_flight`] is set).
    in_flight: Mutex<HashMap<String, u64>>,
    queue_rejections: AtomicU64,
    inflight_rejections: AtomicU64,
    /// Wall-clock epoch ticker: dropping the sender wakes and ends it.
    ticker: Option<(Sender<()>, JoinHandle<()>)>,
}

impl ShardedService {
    pub(crate) fn from_builder(b: TwineBuilder, threads: usize) -> Self {
        let threads = threads.max(1);
        let enclave = b.launch_enclave();
        let profiler = b
            .with_profiler
            .then(|| twine_pfs::PfsProfiler::new(enclave.clock().clone()));
        let linker = Arc::new(crate::runtime::base_linker());
        let cache = Arc::new(ModuleCache::new(b.exec_tier));
        let control = b.control.clone();
        cache.set_capacity(control.module_cache_capacity);
        let epc_slots = Arc::new(AtomicU64::new(0));
        let epoch = Arc::new(AtomicU64::new(0));
        let tpl = SessionTemplate::from_builder(&b);
        // One pool for the whole fleet: a slot parked by one shard warms
        // another shard's cold open (instances carry no shard-local state).
        let pool = Arc::new(crate::pool::InstancePool::new(
            control.pool_slots_per_module.unwrap_or(0),
        ));

        let mut shards = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = match control.queue_depth {
                Some(d) => {
                    let (t, r) = sync_channel(d.max(1));
                    (ShardTx::Bounded(t), r)
                }
                None => {
                    let (t, r) = channel();
                    (ShardTx::Unbounded(t), r)
                }
            };
            let shard = TwineService::shard(
                Arc::clone(&enclave),
                b.processor.clone(),
                Arc::clone(&linker),
                Arc::clone(&cache),
                Arc::clone(&epc_slots),
                tpl.clone(),
                profiler.clone(),
                control.clone(),
                Arc::clone(&epoch),
                Arc::clone(&pool),
            );
            // Workers advance the shared epoch once per processed command
            // (only when epoch preemption is armed): a busy fleet of shards
            // preempts long invocations without any wall-clock dependence.
            let epoch_bump = control.epoch_slack.is_some().then(|| Arc::clone(&epoch));
            workers.push(
                std::thread::Builder::new()
                    .name(format!("twine-shard-{i}"))
                    .spawn(move || shard_main(shard, &rx, epoch_bump))
                    .expect("spawn shard worker"),
            );
            shards.push(tx);
        }
        // Optional wall-clock ticker: protects even a single busy shard
        // from a runaway guest (worker bumps only land *between* commands).
        let ticker = match (control.epoch_slack, control.epoch_interval_ms) {
            (Some(_), Some(ms)) => {
                let (stop_tx, stop_rx) = channel::<()>();
                let ep = Arc::clone(&epoch);
                let h = std::thread::Builder::new()
                    .name("twine-epoch-ticker".into())
                    .spawn(move || {
                        while let Err(RecvTimeoutError::Timeout) =
                            stop_rx.recv_timeout(Duration::from_millis(ms.max(1)))
                        {
                            ep.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn epoch ticker");
                Some((stop_tx, h))
            }
            _ => None,
        };
        Self {
            shards,
            workers,
            enclave,
            cache,
            control,
            epoch,
            in_flight: Mutex::new(HashMap::new()),
            queue_rejections: AtomicU64::new(0),
            inflight_rejections: AtomicU64::new(0),
            ticker,
        }
    }

    /// Number of shards (worker threads).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session name routes to: a stable FNV-1a 64 hash of the
    /// name, mod the shard count — independent of process, platform and
    /// `HashMap` seeding, so placement (and thus per-shard load) is
    /// reproducible.
    #[must_use]
    pub fn shard_of(&self, name: &str) -> usize {
        (fnv1a(name.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// The enclave hosting every shard's sessions.
    #[must_use]
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// The shared virtual clock (all shards charge it).
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        self.enclave.clock()
    }

    /// The content-addressed module cache shared by all shards.
    #[must_use]
    pub fn module_cache(&self) -> &ModuleCache {
        &self.cache
    }

    /// Send one command to `shard` over this client thread's reusable
    /// reply channel and wait for the worker's answer. Blocking enqueue —
    /// control/introspection commands are never load-shed.
    fn send(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<Reply>) -> Cmd,
    ) -> Result<Reply, TwineError> {
        with_reply_channel(|tx, rx| {
            self.shards[shard]
                .send(make(tx.clone()))
                .map_err(|()| TwineError::Session("shard worker terminated".into()))?;
            rx.recv()
                .map_err(|_| TwineError::Session("shard worker terminated".into()))
        })
    }

    /// [`send`](Self::send) for load-bearing commands (open/invoke/batch):
    /// when the shard queue is bounded and full, reject with
    /// [`TwineError::Overloaded`] instead of blocking — typed
    /// backpressure the caller may retry on.
    fn send_load(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<Reply>) -> Cmd,
    ) -> Result<Reply, TwineError> {
        with_reply_channel(|tx, rx| {
            match self.shards[shard].try_send(make(tx.clone())) {
                Ok(()) => {}
                Err(SendAttempt::Full) => {
                    self.queue_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(TwineError::Overloaded(Overload::QueueFull {
                        shard,
                        depth: self.control.queue_depth.unwrap_or(0),
                    }));
                }
                Err(SendAttempt::Disconnected) => {
                    return Err(TwineError::Session("shard worker terminated".into()));
                }
            }
            rx.recv()
                .map_err(|_| TwineError::Session("shard worker terminated".into()))
        })
    }

    /// Count `name` against its tenant in-flight cap, if one is
    /// configured. The returned guard releases the slot when the caller's
    /// round trip completes (any exit path).
    fn acquire_in_flight(&self, name: &str) -> Result<Option<InFlightGuard<'_>>, TwineError> {
        let Some(max) = self.control.max_in_flight else {
            return Ok(None);
        };
        let mut m = self.in_flight.lock().unwrap();
        let n = m.entry(name.to_string()).or_insert(0);
        if *n >= max {
            if *n == 0 {
                m.remove(name);
            }
            self.inflight_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(TwineError::Overloaded(Overload::InFlight {
                tenant: name.to_string(),
                max,
            }));
        }
        *n += 1;
        Ok(Some(InFlightGuard {
            map: &self.in_flight,
            name: name.to_string(),
        }))
    }

    /// Open a named session on the shard owning `name` (cold path). See
    /// [`TwineService::open_session`].
    pub fn open_session(&self, name: &str, wasm: &[u8]) -> Result<SessionStats, TwineError> {
        match self.send_load(self.shard_of(name), |reply| Cmd::Open {
            name: name.to_string(),
            wasm: wasm.to_vec(),
            reply,
        })? {
            Reply::Open(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Invoke an exported function on a session (warm path). See
    /// [`TwineService::invoke`].
    pub fn invoke(
        &self,
        session: &str,
        func: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, TwineError> {
        self.invoke_inner(session, func, args, false)
            .map(|(_, values)| values)
    }

    /// [`invoke`](Self::invoke), also returning the per-invocation
    /// [`RunReport`].
    pub fn invoke_with_report(
        &self,
        session: &str,
        func: &str,
        args: &[Value],
    ) -> Result<(RunReport, Vec<Value>), TwineError> {
        self.invoke_inner(session, func, args, true)
            .map(|(report, values)| (report.expect("report requested"), values))
    }

    /// Invoke the same export several times in one shard round trip — the
    /// pipelined warm path. A batch is processed in order on the session's
    /// shard (semantically identical to that many sequential
    /// [`invoke`](Self::invoke)s), but pays the cross-thread hand-off once
    /// per batch instead of once per call; high-throughput clients use this
    /// to amortise queueing exactly as Twine's single-ECALL design
    /// amortises the enclave boundary. Returns each call's results, in
    /// order; the first trap aborts the remainder of the batch.
    pub fn invoke_batch(
        &self,
        session: &str,
        func: &str,
        args_list: Vec<Vec<Value>>,
    ) -> Result<Vec<Vec<Value>>, TwineError> {
        let _guard = self.acquire_in_flight(session)?;
        match self.send_load(self.shard_of(session), |reply| Cmd::InvokeBatch {
            name: session.to_string(),
            func: func.to_string(),
            args_list,
            reply,
        })? {
            Reply::InvokeBatch(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Run a session's WASI `_start` export.
    pub fn run(&self, session: &str) -> Result<RunReport, TwineError> {
        self.invoke_inner(session, "_start", &[], true)
            .map(|(report, _)| report.expect("report requested"))
    }

    fn invoke_inner(
        &self,
        session: &str,
        func: &str,
        args: &[Value],
        want_report: bool,
    ) -> InvokeReply {
        let _guard = self.acquire_in_flight(session)?;
        match self.send_load(self.shard_of(session), |reply| Cmd::Invoke {
            name: session.to_string(),
            func: func.to_string(),
            args: args.to_vec(),
            want_report,
            reply,
        })? {
            Reply::Invoke(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Recycle a session to its post-instantiation state. See
    /// [`TwineService::reset_session`].
    pub fn reset_session(&self, name: &str) -> Result<(), TwineError> {
        match self.send(self.shard_of(name), |reply| Cmd::Reset {
            name: name.to_string(),
            reply,
        })? {
            Reply::Unit(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Override one session's per-invocation fuel budget.
    pub fn set_session_fuel(&self, name: &str, fuel: Option<u64>) -> Result<(), TwineError> {
        match self.send(self.shard_of(name), |reply| Cmd::SetFuel {
            name: name.to_string(),
            fuel,
            reply,
        })? {
            Reply::Unit(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Override one session's per-invocation preemption deadline. See
    /// [`TwineService::set_session_deadline`].
    pub fn set_session_deadline(
        &self,
        name: &str,
        deadline: Option<u64>,
    ) -> Result<(), TwineError> {
        match self.send(self.shard_of(name), |reply| Cmd::SetDeadline {
            name: name.to_string(),
            deadline,
            reply,
        })? {
            Reply::Unit(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Park a session (seal its state out of the enclave and release its
    /// EPC pages). See [`TwineService::park_session`].
    pub fn park_session(&self, name: &str) -> Result<(), TwineError> {
        match self.send(self.shard_of(name), |reply| Cmd::Park {
            name: name.to_string(),
            reply,
        })? {
            Reply::Unit(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Bump the shared preemption epoch by hand (see
    /// [`ControlPlane::epoch_slack`]); shard workers and the optional
    /// wall-clock ticker bump it automatically.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Control-plane counters summed across every shard, plus the
    /// handle-level admission counters (queue / in-flight rejections).
    #[must_use]
    pub fn control_stats(&self) -> ControlStats {
        let mut total = ControlStats::default();
        for i in 0..self.shards.len() {
            if let Ok(Reply::Control(s)) = self.send(i, |reply| Cmd::ControlStats { reply }) {
                total.merge(&s);
            }
        }
        total.queue_rejections += self.queue_rejections.load(Ordering::Relaxed);
        total.inflight_rejections += self.inflight_rejections.load(Ordering::Relaxed);
        // The fault-injection gauge is enclave-global (the plan is shared
        // by every shard); fill it exactly once at the handle instead of
        // summing one full copy per shard.
        if let Some(plan) = self.enclave.fault_plan() {
            total.faults_injected = plan.total_injected();
        }
        total
    }

    /// The trusted-clock watermark of a session.
    #[must_use]
    pub fn session_clock_watermark(&self, name: &str) -> Option<u64> {
        match self.send(self.shard_of(name), |reply| Cmd::Watermark {
            name: name.to_string(),
            reply,
        }) {
            Ok(Reply::Watermark(r)) => r,
            Ok(_) => unreachable!("shard protocol mismatch"),
            Err(_) => None,
        }
    }

    /// The compiled module backing a session. Pointer-identical across
    /// every session (on every shard) opened over the same Wasm bytes —
    /// the compile-once contract the `compile_race` suite asserts.
    #[must_use]
    pub fn session_module(
        &self,
        name: &str,
    ) -> Option<Arc<twine_wasm::compile::CompiledModule>> {
        match self.send(self.shard_of(name), |reply| Cmd::Module {
            name: name.to_string(),
            reply,
        }) {
            Ok(Reply::Module(r)) => r,
            Ok(_) => unreachable!("shard protocol mismatch"),
            Err(_) => None,
        }
    }

    /// Whether a session is currently parked (sealed out of the enclave).
    /// `None` when no session of that name exists or its shard is gone.
    /// See [`TwineService::session_parked`].
    #[must_use]
    pub fn session_parked(&self, name: &str) -> Option<bool> {
        match self.send(self.shard_of(name), |reply| Cmd::Parked {
            name: name.to_string(),
            reply,
        }) {
            Ok(Reply::Parked(r)) => r,
            Ok(_) => unreachable!("shard protocol mismatch"),
            Err(_) => None,
        }
    }

    /// Bookkeeping for one session.
    #[must_use]
    pub fn session_stats(&self, name: &str) -> Option<SessionStats> {
        match self.send(self.shard_of(name), |reply| Cmd::Stats {
            name: name.to_string(),
            reply,
        }) {
            Ok(Reply::Stats(r)) => r,
            Ok(_) => unreachable!("shard protocol mismatch"),
            Err(_) => None,
        }
    }

    /// Close a session, returning its file-system backend (the per-session
    /// state is `Send`, so it crosses back from the worker thread).
    ///
    /// `Ok(None)` means no session of that name exists; `Err` means the
    /// owning shard worker has terminated — distinguished so an embedder
    /// persisting a tenant's protected files on close cannot mistake a
    /// dead shard for "nothing to save" and silently drop file state.
    ///
    /// # Errors
    /// [`TwineError::Session`] if the shard worker is gone.
    pub fn close_session(
        &self,
        name: &str,
    ) -> Result<Option<Box<dyn FsBackend>>, TwineError> {
        match self.send(self.shard_of(name), |reply| Cmd::Close {
            name: name.to_string(),
            reply,
        })? {
            Reply::Close(r) => Ok(r),
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Open a named database session on the shard owning `name` (cold
    /// path). See [`TwineService::db_open_session`].
    pub fn db_open_session(&self, name: &str) -> Result<(), TwineError> {
        match self.send_load(self.shard_of(name), |reply| Cmd::DbOpen {
            name: name.to_string(),
            reply,
        })? {
            Reply::Unit(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Execute one SQL statement on a session's database (warm path).
    /// See [`TwineService::db_execute`].
    pub fn db_execute(&self, name: &str, sql: &str) -> Result<u64, TwineError> {
        let _guard = self.acquire_in_flight(name)?;
        match self.send_load(self.shard_of(name), |reply| Cmd::DbExec {
            name: name.to_string(),
            sql: sql.to_string(),
            reply,
        })? {
            Reply::DbAffected(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Execute one SQL statement and return its result rows. See
    /// [`TwineService::db_query`].
    pub fn db_query(
        &self,
        name: &str,
        sql: &str,
    ) -> Result<Vec<twine_sqldb::value::Row>, TwineError> {
        let _guard = self.acquire_in_flight(name)?;
        match self.send_load(self.shard_of(name), |reply| Cmd::DbQuery {
            name: name.to_string(),
            sql: sql.to_string(),
            reply,
        })? {
            Reply::DbRows(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Execute a batch of statements in one shard round trip (the
    /// transactional warm path: wrap the batch in BEGIN/COMMIT entries to
    /// run it as one database transaction). Counts as one in-flight
    /// command, like [`invoke_batch`](Self::invoke_batch). See
    /// [`TwineService::db_execute_batch`].
    pub fn db_execute_batch(
        &self,
        name: &str,
        stmts: Vec<String>,
    ) -> Result<u64, TwineError> {
        let _guard = self.acquire_in_flight(name)?;
        match self.send_load(self.shard_of(name), |reply| Cmd::DbBatch {
            name: name.to_string(),
            stmts,
            reply,
        })? {
            Reply::DbAffected(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Names of the tables in a session's database schema. See
    /// [`TwineService::db_table_names`].
    pub fn db_table_names(&self, name: &str) -> Result<Vec<String>, TwineError> {
        let _guard = self.acquire_in_flight(name)?;
        match self.send_load(self.shard_of(name), |reply| Cmd::DbTables {
            name: name.to_string(),
            reply,
        })? {
            Reply::DbTables(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Park a database session (close its connection, seal its manifest,
    /// release its EPC pages). See [`TwineService::db_park_session`].
    pub fn db_park_session(&self, name: &str) -> Result<(), TwineError> {
        match self.send(self.shard_of(name), |reply| Cmd::DbPark {
            name: name.to_string(),
            reply,
        })? {
            Reply::Unit(r) => r,
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Whether a database session is currently parked. See
    /// [`TwineService::db_session_parked`].
    #[must_use]
    pub fn db_session_parked(&self, name: &str) -> Option<bool> {
        match self.send(self.shard_of(name), |reply| Cmd::DbParked {
            name: name.to_string(),
            reply,
        }) {
            Ok(Reply::DbParked(r)) => r,
            Ok(_) => unreachable!("shard protocol mismatch"),
            Err(_) => None,
        }
    }

    /// Cumulative plan-cache counters for one database session. See
    /// [`TwineService::db_stmt_cache_stats`].
    #[must_use]
    pub fn db_stmt_cache_stats(
        &self,
        name: &str,
    ) -> Option<twine_sqldb::db::StmtCacheStats> {
        match self.send(self.shard_of(name), |reply| Cmd::DbStmtStats {
            name: name.to_string(),
            reply,
        }) {
            Ok(Reply::DbStmtStats(r)) => r,
            Ok(_) => unreachable!("shard protocol mismatch"),
            Err(_) => None,
        }
    }

    /// Close a database session, returning its protected backend (the
    /// tenant's database survives the session). Semantics mirror
    /// [`close_session`](Self::close_session): `Ok(None)` = no such
    /// session, `Err` = dead shard worker.
    ///
    /// # Errors
    /// [`TwineError::Session`] if the shard worker is gone.
    pub fn db_close_session(
        &self,
        name: &str,
    ) -> Result<Option<twine_sqldb::SharedBackend>, TwineError> {
        match self.send(self.shard_of(name), |reply| Cmd::DbClose {
            name: name.to_string(),
            reply,
        })? {
            Reply::DbClose(r) => Ok(r),
            _ => unreachable!("shard protocol mismatch"),
        }
    }

    /// Open sessions (live + parked) across all shards.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.shard_stats().iter().map(|s| s.sessions).sum()
    }

    /// Per-shard serving counters (indexed by shard).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..self.shards.len())
            .map(
                |i| match self.send(i, |reply| Cmd::ShardStats { reply }) {
                    Ok(Reply::ShardStats(s)) => s,
                    Ok(_) => unreachable!("shard protocol mismatch"),
                    Err(_) => ShardStats::default(),
                },
            )
            .collect()
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        // Dropping the stop sender wakes the epoch ticker's recv_timeout
        // immediately; join it before the epoch Arc's last strong owner
        // could matter.
        if let Some((stop_tx, h)) = self.ticker.take() {
            drop(stop_tx);
            let _ = h.join();
        }
        // Closing the command channels ends each worker's recv loop; join
        // so sessions (and their protected files) are dropped before the
        // enclave handle goes away.
        self.shards.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Stable 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The worker loop: single owner of this shard's sessions. Processes its
/// queue in FIFO order until every handle to the service is dropped.
fn shard_main(mut shard: TwineService, rx: &Receiver<Cmd>, epoch_bump: Option<Arc<AtomicU64>>) {
    let mut invocations = 0u64;
    // Wall-clock fallback accumulator; superseded by thread CPU time when
    // the platform provides it (see `ShardStats::busy_ns`).
    let mut wall_busy_ns = 0u64;
    let cpu0 = thread_cpu_ns();
    while let Ok(cmd) = rx.recv() {
        // With epoch preemption armed, every processed command advances
        // the shared epoch: cross-shard traffic preempts a long invocation
        // without any wall-clock dependence (deterministic tests bump by
        // hand instead).
        if let Some(ep) = &epoch_bump {
            ep.fetch_add(1, Ordering::Relaxed);
        }
        let t0 = Instant::now();
        match cmd {
            Cmd::Open { name, wasm, reply } => {
                let r = shard.open_session(&name, &wasm).cloned();
                let _ = reply.send(Reply::Open(r));
            }
            Cmd::Invoke {
                name,
                func,
                args,
                want_report,
                reply,
            } => {
                invocations += 1;
                let r = if want_report {
                    shard
                        .invoke_with_report(&name, &func, &args)
                        .map(|(report, values)| (Some(report), values))
                } else {
                    shard.invoke(&name, &func, &args).map(|values| (None, values))
                };
                let _ = reply.send(Reply::Invoke(r));
            }
            Cmd::InvokeBatch {
                name,
                func,
                args_list,
                reply,
            } => {
                let mut run = || -> Result<Vec<Vec<Value>>, TwineError> {
                    let mut out = Vec::with_capacity(args_list.len());
                    for args in &args_list {
                        invocations += 1;
                        out.push(shard.invoke(&name, &func, args)?);
                    }
                    Ok(out)
                };
                let _ = reply.send(Reply::InvokeBatch(run()));
            }
            Cmd::Reset { name, reply } => {
                let _ = reply.send(Reply::Unit(shard.reset_session(&name)));
            }
            Cmd::SetFuel { name, fuel, reply } => {
                let _ = reply.send(Reply::Unit(shard.set_session_fuel(&name, fuel)));
            }
            Cmd::SetDeadline {
                name,
                deadline,
                reply,
            } => {
                let _ = reply.send(Reply::Unit(shard.set_session_deadline(&name, deadline)));
            }
            Cmd::Park { name, reply } => {
                let _ = reply.send(Reply::Unit(shard.park_session(&name)));
            }
            Cmd::ControlStats { reply } => {
                let _ = reply.send(Reply::Control(shard.control_stats()));
            }
            Cmd::Watermark { name, reply } => {
                let _ = reply.send(Reply::Watermark(shard.session_clock_watermark(&name)));
            }
            Cmd::Close { name, reply } => {
                let _ = reply.send(Reply::Close(shard.close_session(&name)));
            }
            Cmd::Stats { name, reply } => {
                let _ = reply.send(Reply::Stats(shard.session_stats(&name).cloned()));
            }
            Cmd::Parked { name, reply } => {
                let _ = reply.send(Reply::Parked(shard.session_parked(&name)));
            }
            Cmd::Module { name, reply } => {
                let _ = reply.send(Reply::Module(shard.session_module(&name).map(Arc::clone)));
            }
            Cmd::ShardStats { reply } => {
                let busy_ns = cpu0
                    .and_then(|c0| Some(thread_cpu_ns()? - c0))
                    .unwrap_or(wall_busy_ns);
                let _ = reply.send(Reply::ShardStats(ShardStats {
                    sessions: shard.session_count() + shard.db_session_count(),
                    invocations,
                    busy_ns,
                }));
            }
            Cmd::DbOpen { name, reply } => {
                let _ = reply.send(Reply::Unit(shard.db_open_session(&name)));
            }
            Cmd::DbExec { name, sql, reply } => {
                invocations += 1;
                let _ = reply.send(Reply::DbAffected(shard.db_execute(&name, &sql)));
            }
            Cmd::DbQuery { name, sql, reply } => {
                invocations += 1;
                let _ = reply.send(Reply::DbRows(shard.db_query(&name, &sql)));
            }
            Cmd::DbBatch { name, stmts, reply } => {
                invocations += stmts.len() as u64;
                let _ = reply.send(Reply::DbAffected(shard.db_execute_batch(&name, &stmts)));
            }
            Cmd::DbPark { name, reply } => {
                let _ = reply.send(Reply::Unit(shard.db_park_session(&name)));
            }
            Cmd::DbClose { name, reply } => {
                let _ = reply.send(Reply::DbClose(shard.db_close_session(&name)));
            }
            Cmd::DbParked { name, reply } => {
                let _ = reply.send(Reply::DbParked(shard.db_session_parked(&name)));
            }
            Cmd::DbStmtStats { name, reply } => {
                let _ = reply.send(Reply::DbStmtStats(shard.db_stmt_cache_stats(&name)));
            }
            Cmd::DbTables { name, reply } => {
                let _ = reply.send(Reply::DbTables(shard.db_table_names(&name)));
            }
        }
        wall_busy_ns += t0.elapsed().as_nanos() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Pinned values: shard placement must never change across builds.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"tenant-0"), fnv1a(b"tenant-0"));
        assert_ne!(fnv1a(b"tenant-0"), fnv1a(b"tenant-1"));
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let svc = TwineBuilder::new().build_sharded(4);
        for name in ["a", "b", "session-42", "zzz"] {
            let s = svc.shard_of(name);
            assert!(s < 4);
            assert_eq!(s, svc.shard_of(name));
        }
    }

    #[test]
    fn unknown_session_errors() {
        let svc = TwineBuilder::new().build_sharded(2);
        assert!(matches!(
            svc.invoke("ghost", "f", &[]),
            Err(TwineError::Session(_))
        ));
        assert!(svc.session_stats("ghost").is_none());
        assert!(svc.close_session("ghost").expect("shard alive").is_none());
    }
}
