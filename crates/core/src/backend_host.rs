//! The *generic untrusted POSIX layer* (paper §IV-C): WASI calls with no
//! trusted implementation are forwarded to the host OS through OCALLs.
//!
//! Files served by this backend are **plaintext on the host** — that is the
//! point of the contrast with [`crate::PfsBackend`]. Twine can also be built
//! with this layer disabled entirely (the paper's compilation flag for a
//! "strict and restricted environment"); [`crate::TwineBuilder`] exposes the
//! same switch.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use twine_sgx::Enclave;
use twine_wasi::{Errno, FsBackend, WasiFile};

type HostFileMap = Arc<Mutex<HashMap<String, Arc<Mutex<Vec<u8>>>>>>;

/// Untrusted host file system reached through OCALLs.
pub struct HostBackend {
    enclave: Option<Arc<Enclave>>,
    files: HostFileMap,
}

impl HostBackend {
    /// New backend; I/O crosses `enclave`'s boundary when given.
    #[must_use]
    pub fn new(enclave: Option<Arc<Enclave>>) -> Self {
        Self {
            enclave,
            files: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Host-side view of a file — plaintext, unlike the PFS backend.
    #[must_use]
    pub fn plaintext_of(&self, path: &str) -> Option<Vec<u8>> {
        self.files.lock().unwrap().get(path).map(|f| f.lock().unwrap().clone())
    }

    fn ocall<R>(&self, bytes: u64, f: impl FnOnce() -> R) -> R {
        match &self.enclave {
            Some(e) => e.ocall(bytes, f),
            None => f(),
        }
    }
}

struct HostFile {
    enclave: Option<Arc<Enclave>>,
    data: Arc<Mutex<Vec<u8>>>,
    pos: u64,
}

impl HostFile {
    fn ocall<R>(&self, bytes: u64, f: impl FnOnce() -> R) -> R {
        match &self.enclave {
            Some(e) => e.ocall(bytes, f),
            None => f(),
        }
    }
}

impl WasiFile for HostFile {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, Errno> {
        let data = self.data.clone();
        let pos = self.pos;
        let n = self.ocall(buf.len() as u64, || {
            let data = data.lock().unwrap();
            let start = (pos as usize).min(data.len());
            let n = buf.len().min(data.len() - start);
            buf[..n].copy_from_slice(&data[start..start + n]);
            n
        });
        self.pos += n as u64;
        Ok(n)
    }

    fn write(&mut self, buf: &[u8]) -> Result<usize, Errno> {
        let data = self.data.clone();
        let pos = self.pos as usize;
        self.ocall(buf.len() as u64, || {
            let mut data = data.lock().unwrap();
            let end = pos + buf.len();
            if data.len() < end {
                data.resize(end, 0);
            }
            data[pos..end].copy_from_slice(buf);
        });
        self.pos += buf.len() as u64;
        Ok(buf.len())
    }

    fn seek(&mut self, pos: u64) -> Result<u64, Errno> {
        self.pos = pos;
        Ok(pos)
    }

    fn tell(&self) -> u64 {
        self.pos
    }

    fn size(&self) -> Result<u64, Errno> {
        Ok(self.data.lock().unwrap().len() as u64)
    }

    fn set_size(&mut self, size: u64) -> Result<(), Errno> {
        let data = self.data.clone();
        self.ocall(8, || data.lock().unwrap().resize(size as usize, 0));
        Ok(())
    }

    fn sync(&mut self) -> Result<(), Errno> {
        // fsync on the host: one boundary crossing, no data copied.
        self.ocall(0, || ());
        Ok(())
    }
}

impl FsBackend for HostBackend {
    fn open(
        &mut self,
        path: &str,
        create: bool,
        truncate: bool,
    ) -> Result<Box<dyn WasiFile>, Errno> {
        let files = self.files.clone();
        let exists = self.ocall(path.len() as u64, || files.lock().unwrap().contains_key(path));
        if !exists && !create {
            return Err(Errno::Noent);
        }
        let data = {
            let mut files = self.files.lock().unwrap();
            let entry = files
                .entry(path.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(Vec::new())))
                .clone();
            if truncate {
                entry.lock().unwrap().clear();
            }
            entry
        };
        Ok(Box::new(HostFile {
            enclave: self.enclave.clone(),
            data,
            pos: 0,
        }))
    }

    fn exists(&mut self, path: &str) -> bool {
        let files = self.files.clone();
        self.ocall(path.len() as u64, || files.lock().unwrap().contains_key(path))
    }

    fn filesize(&mut self, path: &str) -> Result<u64, Errno> {
        let files = self.files.clone();
        self.ocall(8, || {
            files
                .lock()
                .unwrap()
                .get(path)
                .map(|f| f.lock().unwrap().len() as u64)
                .ok_or(Errno::Noent)
        })
    }

    fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        let files = self.files.clone();
        self.ocall(path.len() as u64, || {
            files
                .lock()
                .unwrap()
                .remove(path)
                .map(|_| ())
                .ok_or(Errno::Noent)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twine_sgx::{EnclaveBuilder, Processor};

    #[test]
    fn plaintext_visible_on_host() {
        let mut b = HostBackend::new(None);
        let mut f = b.open("/h/clear.txt", true, false).unwrap();
        f.write(b"visible to the OS").unwrap();
        drop(f);
        assert_eq!(b.plaintext_of("/h/clear.txt").unwrap(), b"visible to the OS");
    }

    #[test]
    fn ops_charge_ocalls() {
        let enclave = Arc::new(EnclaveBuilder::new(b"host-backend").build(&Processor::new(1)));
        let mut b = HostBackend::new(Some(enclave.clone()));
        let before = enclave.stats().ocalls;
        let mut f = b.open("/h/x", true, false).unwrap();
        f.write(b"1234").unwrap();
        let mut buf = [0u8; 4];
        f.seek(0).unwrap();
        f.read(&mut buf).unwrap();
        assert!(enclave.stats().ocalls >= before + 3, "open+write+read cross the boundary");
    }

    #[test]
    fn noent_semantics() {
        let mut b = HostBackend::new(None);
        assert!(b.open("/missing", false, false).is_err());
        assert_eq!(b.filesize("/missing").err(), Some(Errno::Noent));
        assert_eq!(b.unlink("/missing").err(), Some(Errno::Noent));
    }
}
