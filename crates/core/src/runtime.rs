//! The Twine runtime: configuration, enclave setup, and guest execution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use twine_pfs::{PfsMode, PfsProfiler};
use twine_sgx::{Enclave, EnclaveBuilder, EpcStats, Processor, SgxError, SgxMode, SimClock};
use twine_wasi::abi::PROC_EXIT_TRAP;
use twine_wasi::{register_wasi, Errno, FsBackend, Rights, WasiCtx, WasiFile};
use twine_wasm::compile::CompiledModule;
use twine_wasm::types::{FuncType, ValType};
use twine_wasm::{ExecTier, Instance, Linker, Meter, ModuleError, PageSink, Trap, Value};

use crate::backend_host::HostBackend;
use crate::backend_pfs::PfsBackend;

/// Which file-system implementation serves WASI fs calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsChoice {
    /// Trusted: Intel-Protected-FS over in-memory untrusted storage
    /// (paper's default Twine configuration).
    ProtectedInMemory,
    /// Untrusted: generic POSIX layer via OCALLs, plaintext on the host.
    UntrustedHost,
    /// Strict mode: the untrusted layer compiled out; all fs calls fail
    /// (paper §IV-C's compilation flag).
    Disabled,
}

/// Why admission control rejected a call — the structured payload of
/// [`TwineError::Overloaded`]. Every variant is backpressure (the caller
/// may retry later), but they name different resources, so a client can
/// react differently to a full shard queue (spread load) than to its own
/// rate bucket (slow down).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Overload {
    /// A bounded shard command queue was full.
    QueueFull {
        /// Index of the rejecting shard.
        shard: usize,
        /// The configured queue depth it was full at.
        depth: usize,
    },
    /// The tenant is at its cross-shard in-flight command cap.
    InFlight {
        /// Session/tenant name.
        tenant: String,
        /// The configured cap.
        max: u64,
    },
    /// The tenant's fuel-rate token bucket is over its burst allowance.
    RateLimited {
        /// Session/tenant name.
        tenant: String,
    },
}

impl core::fmt::Display for Overload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Overload::QueueFull { shard, depth } => {
                write!(f, "shard {shard} queue full (depth {depth})")
            }
            Overload::InFlight { tenant, max } => {
                write!(f, "tenant {tenant:?} at in-flight cap ({max})")
            }
            Overload::RateLimited { tenant } => {
                write!(f, "tenant {tenant:?} over fuel-rate burst")
            }
        }
    }
}

/// Errors from the Twine runtime.
#[derive(Debug)]
pub enum TwineError {
    /// Decode/validate/compile failure of the guest module.
    Module(ModuleError),
    /// The guest trapped.
    Trap(Trap),
    /// SGX-level failure (attestation, unsealing, injected boundary
    /// faults that outlasted the bounded retry policy).
    Sgx(SgxError),
    /// Code-provisioning failure.
    Provision(String),
    /// Session-layer failure (unknown or duplicate session name).
    Session(String),
    /// Database-session failure: the tenant's protected database rejected
    /// a statement (syntax, constraint, storage). The session itself stays
    /// servable — DB errors are per-statement, not fatal.
    Db(String),
    /// Admission control rejected the call: a bounded shard queue was
    /// full, or a per-tenant in-flight or fuel-rate cap was exceeded.
    /// Backpressure, not failure — the caller may retry later (see
    /// [`Overload`] for which resource pushed back).
    Overloaded(Overload),
    /// The session's parked image could not be restored (unsealing kept
    /// failing beyond the retry budget): the sealed state is preserved
    /// and the session quarantined, but it cannot serve invocations.
    Quarantined {
        /// Session name.
        session: String,
        /// Human-readable cause (the final unseal error).
        reason: String,
    },
    /// A durable park image failed freshness validation during
    /// [`recover`](crate::TwineService::recover): its monotonic-counter
    /// tag is older than the processor's counter — a rollback/replay.
    Rollback {
        /// Session name.
        session: String,
        /// The stale tag carried by the replayed image.
        have: u64,
        /// The minimum tag the processor counter accepts.
        want: u64,
    },
}

impl TwineError {
    /// Is this error worth retrying? `true` for admission-control
    /// backpressure ([`TwineError::Overloaded`]) and for transient SGX
    /// boundary faults; `false` for everything permanent (bad modules,
    /// traps, tampered blobs, quarantines, rollback rejections).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            TwineError::Overloaded(_) => true,
            TwineError::Sgx(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl core::fmt::Display for TwineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TwineError::Module(e) => write!(f, "module error: {e}"),
            TwineError::Trap(t) => write!(f, "guest trap: {t}"),
            TwineError::Sgx(e) => write!(f, "sgx error: {e}"),
            TwineError::Provision(m) => write!(f, "provisioning error: {m}"),
            TwineError::Session(m) => write!(f, "session error: {m}"),
            TwineError::Db(m) => write!(f, "database error: {m}"),
            TwineError::Overloaded(o) => write!(f, "overloaded: {o}"),
            TwineError::Quarantined { session, reason } => {
                write!(f, "session {session:?} quarantined: {reason}")
            }
            TwineError::Rollback { session, have, want } => {
                write!(
                    f,
                    "rollback rejected for session {session:?}: image tag {have} < counter {want}"
                )
            }
        }
    }
}

impl std::error::Error for TwineError {}

impl From<ModuleError> for TwineError {
    fn from(e: ModuleError) -> Self {
        TwineError::Module(e)
    }
}

impl From<SgxError> for TwineError {
    fn from(e: SgxError) -> Self {
        TwineError::Sgx(e)
    }
}

/// Builder for [`TwineRuntime`] (and, via
/// [`build_service`](TwineBuilder::build_service), for the multi-tenant
/// [`crate::TwineService`]).
pub struct TwineBuilder {
    pub(crate) sgx_mode: SgxMode,
    pub(crate) epc_limit_pages: usize,
    pub(crate) heap_bytes: u64,
    pub(crate) pfs_mode: PfsMode,
    pub(crate) pfs_cache_nodes: usize,
    pub(crate) fs: FsChoice,
    pub(crate) preopen: String,
    pub(crate) rights: Rights,
    pub(crate) processor: Processor,
    pub(crate) args: Vec<String>,
    pub(crate) env: Vec<(String, String)>,
    pub(crate) with_profiler: bool,
    pub(crate) fuel: Option<u64>,
    pub(crate) exec_tier: ExecTier,
    pub(crate) control: crate::ControlPlane,
    pub(crate) faults: Option<Arc<twine_sgx::FaultPlan>>,
}

impl Default for TwineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TwineBuilder {
    /// Defaults matching the paper's testbed configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sgx_mode: SgxMode::Hardware,
            epc_limit_pages: twine_sgx::costs::epc_usable_pages() as usize,
            heap_bytes: 64 << 20,
            pfs_mode: PfsMode::Intel,
            pfs_cache_nodes: twine_pfs::DEFAULT_CACHE_NODES,
            fs: FsChoice::ProtectedInMemory,
            preopen: "/data".to_string(),
            rights: Rights::all(),
            processor: Processor::new(0),
            args: vec!["app.wasm".to_string()],
            env: Vec::new(),
            with_profiler: false,
            fuel: None,
            exec_tier: ExecTier::default(),
            control: crate::ControlPlane::default(),
            faults: None,
        }
    }

    /// SGX hardware vs simulation mode (Figure 6 contrast).
    #[must_use]
    pub fn sgx_mode(mut self, mode: SgxMode) -> Self {
        self.sgx_mode = mode;
        self
    }

    /// Usable EPC limit in MiB (paper default: 93 usable of 128).
    #[must_use]
    pub fn epc_limit_mib(mut self, mib: u64) -> Self {
        self.epc_limit_pages = (mib << 20 >> 12) as usize;
        self
    }

    /// Enclave heap size (drives launch cost).
    #[must_use]
    pub fn heap_bytes(mut self, bytes: u64) -> Self {
        self.heap_bytes = bytes;
        self
    }

    /// Protected-FS mode: stock Intel or §V-F optimised.
    #[must_use]
    pub fn pfs_mode(mut self, mode: PfsMode) -> Self {
        self.pfs_mode = mode;
        self
    }

    /// Protected-FS node cache capacity.
    #[must_use]
    pub fn pfs_cache_nodes(mut self, nodes: usize) -> Self {
        self.pfs_cache_nodes = nodes;
        self
    }

    /// File-system choice.
    #[must_use]
    pub fn fs(mut self, fs: FsChoice) -> Self {
        self.fs = fs;
        self
    }

    /// Preopened directory name and rights (the WASI sandbox).
    #[must_use]
    pub fn preopen(mut self, dir: &str, rights: Rights) -> Self {
        self.preopen = dir.to_string();
        self.rights = rights;
        self
    }

    /// Guest argv.
    #[must_use]
    pub fn args(mut self, args: &[&str]) -> Self {
        self.args = args.iter().map(ToString::to_string).collect();
        self
    }

    /// Guest environment.
    #[must_use]
    pub fn env(mut self, env: &[(&str, &str)]) -> Self {
        self.env = env
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self
    }

    /// Host the enclave on a specific simulated processor.
    #[must_use]
    pub fn processor(mut self, p: Processor) -> Self {
        self.processor = p;
        self
    }

    /// Enable the §V-F PFS profiler.
    #[must_use]
    pub fn profile_pfs(mut self) -> Self {
        self.with_profiler = true;
        self
    }

    /// Bound guest execution (defence against runaway guests).
    #[must_use]
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Install a full control-plane policy (eviction, preemption,
    /// admission control) for the built service. See
    /// [`ControlPlane`](crate::ControlPlane); everything defaults to off.
    #[must_use]
    pub fn control_plane(mut self, control: crate::ControlPlane) -> Self {
        self.control = control;
        self
    }

    /// Convenience: set the default per-invocation preemption deadline (in
    /// fuel units) without building a whole [`crate::ControlPlane`].
    #[must_use]
    pub fn deadline(mut self, deadline: u64) -> Self {
        self.control.deadline = Some(deadline);
        self
    }

    /// Convenience: park least-recently-used sessions beyond `n` live ones
    /// per service/shard (the eviction budget).
    #[must_use]
    pub fn max_live_sessions(mut self, n: usize) -> Self {
        self.control.max_live_sessions = Some(n);
        self
    }

    /// Convenience: enable instance pooling with up to `n` pre-instantiated
    /// slots per (module, tier). Session opens and post-evict restores of
    /// poolable modules become slot checkout + O(dirty pages) patching, and
    /// parks seal only the delta against the module's shared base image.
    /// See [`ControlPlane::pool_slots_per_module`](crate::ControlPlane).
    #[must_use]
    pub fn pool_slots_per_module(mut self, n: usize) -> Self {
        self.control.pool_slots_per_module = Some(n);
        self
    }

    /// Install a deterministic fault-injection plan on the enclave (chaos
    /// testing, DESIGN.md §12). Every trust-boundary crossing — ECALL and
    /// OCALL transitions, seal and unseal — consults the plan's seeded
    /// schedule and may fail typed; the runtime's bounded-retry and
    /// graceful-degradation policies absorb the faults without changing
    /// guest-visible semantics. [`crate::ControlStats::faults_injected`]
    /// reports how many fired.
    #[must_use]
    pub fn faults(mut self, plan: Arc<twine_sgx::FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Select the engine's execution tier: the baseline dispatch or the
    /// fused-superinstruction IR (default). Both are semantically and
    /// metering-identical; the fused tier is faster in wall-clock terms,
    /// so virtual-time results are tier-independent.
    #[must_use]
    pub fn exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier = tier;
        self
    }

    /// Create the enclave and runtime (charges launch cycles).
    ///
    /// The WASI + libm host-function table is built **once** here and shared
    /// (`Arc`) by every subsequent guest run, instead of being re-registered
    /// on each call.
    #[must_use]
    pub fn build(self) -> TwineRuntime {
        let enclave = self.launch_enclave();
        let profiler = self
            .with_profiler
            .then(|| PfsProfiler::new(enclave.clock().clone()));
        let backend = make_backend(
            self.fs,
            &enclave,
            self.pfs_mode,
            self.pfs_cache_nodes,
            profiler.clone(),
        );
        TwineRuntime {
            enclave,
            linker: Arc::new(base_linker()),
            clock_watermark: Arc::new(AtomicU64::new(0)),
            processor: self.processor,
            fs: self.fs,
            pfs_mode: self.pfs_mode,
            pfs_cache_nodes: self.pfs_cache_nodes,
            preopen: self.preopen,
            rights: self.rights,
            args: self.args,
            env: self.env,
            profiler,
            backend: Some(backend),
            fuel: self.fuel,
            exec_tier: self.exec_tier,
        }
    }

    /// Create the enclave and a multi-tenant [`crate::TwineService`] hosting
    /// named, persistent sessions (see DESIGN.md §7).
    #[must_use]
    pub fn build_service(self) -> crate::TwineService {
        crate::TwineService::from_builder(self)
    }

    /// Create the enclave and a multi-threaded [`crate::ShardedService`]:
    /// `threads` worker shards partitioning the session namespace while
    /// sharing this one enclave, one host-function table and one module
    /// cache (see DESIGN.md §9).
    #[must_use]
    pub fn build_sharded(self, threads: usize) -> crate::ShardedService {
        crate::ShardedService::from_builder(self, threads)
    }

    /// Launch the simulated enclave described by this builder.
    pub(crate) fn launch_enclave(&self) -> Arc<Enclave> {
        let mut builder = EnclaveBuilder::new(TWINE_RUNTIME_IMAGE)
            .heap_bytes(self.heap_bytes)
            .mode(self.sgx_mode)
            .epc_limit_pages(self.epc_limit_pages);
        if let Some(plan) = &self.faults {
            builder = builder.faults(Arc::clone(plan));
        }
        Arc::new(builder.build(&self.processor))
    }
}

/// Build the host-function table every Twine embedding exposes to guests:
/// the WASI snapshot-preview-1 surface plus the `env` libm imports. Built
/// once per runtime/service and shared immutably across all instances.
pub(crate) fn base_linker() -> Linker {
    let mut linker = Linker::new();
    register_wasi(&mut linker);
    register_libm(&mut linker);
    linker
}

/// Bytes standing in for the measured Twine runtime enclave image. Real
/// Twine's enclave is ~567 KiB on disk (Table IIIb); we mirror that size so
/// launch costs are comparable.
pub const TWINE_RUNTIME_IMAGE: &[u8] = &[0x54; 567 * 1024];

pub(crate) fn make_backend(
    fs: FsChoice,
    enclave: &Arc<Enclave>,
    pfs_mode: PfsMode,
    cache_nodes: usize,
    profiler: Option<PfsProfiler>,
) -> Box<dyn FsBackend> {
    match fs {
        FsChoice::ProtectedInMemory => Box::new(PfsBackend::new(
            Some(enclave.clone()),
            pfs_mode,
            cache_nodes,
            profiler,
        )),
        FsChoice::UntrustedHost => Box::new(HostBackend::new(Some(enclave.clone()))),
        FsChoice::Disabled => Box::new(NoFs),
    }
}

/// Strict-mode backend: every fs call fails with `NOTCAPABLE`.
struct NoFs;

impl FsBackend for NoFs {
    fn open(&mut self, _: &str, _: bool, _: bool) -> Result<Box<dyn WasiFile>, Errno> {
        Err(Errno::Notcapable)
    }
    fn exists(&mut self, _: &str) -> bool {
        false
    }
    fn filesize(&mut self, _: &str) -> Result<u64, Errno> {
        Err(Errno::Notcapable)
    }
    fn unlink(&mut self, _: &str) -> Result<(), Errno> {
        Err(Errno::Notcapable)
    }
}

/// A loaded (AoT-compiled, enclave-resident) guest application.
pub struct TwineApp {
    pub(crate) compiled: Arc<CompiledModule>,
    /// Size of the delivered Wasm binary in bytes.
    pub wasm_bytes: usize,
}

/// Everything the embedder learns from one guest run.
pub struct RunReport {
    /// `proc_exit` code (0 when `_start` returned normally).
    pub exit_code: u32,
    /// Captured guest stdout.
    pub stdout: Vec<u8>,
    /// Captured guest stderr.
    pub stderr: Vec<u8>,
    /// Retired-instruction meter of the run.
    pub meter: Meter,
    /// Virtual cycles consumed (transitions, paging, modelled I/O).
    pub cycles: u64,
    /// Number of WASI calls served.
    pub wasi_calls: u64,
    /// EPC paging counters for the run.
    pub epc: EpcStats,
    /// Fuel left after the run (`None` = unlimited budget). Deterministic
    /// per session — the concurrency differential suite asserts it is
    /// bit-identical between sharded and single-threaded serving.
    pub fuel_remaining: Option<u64>,
}

/// Routes Wasm linear-memory page touches into the enclave's EPC model,
/// offset so guest pages don't alias other enclave users (each session in a
/// service gets its own base).
///
/// Touches are **buffered session-locally** and folded into the shared
/// pool in one lock acquisition per invocation (`invoke_in_enclave` calls
/// [`Instance::flush_page_sink`] before it snapshots the counters). PR 5
/// locked the global `Mutex<Epc>` on every page transition of every
/// guest, which serialised the shards of a `ShardedService` — the
/// contention regression test in `crates/core/tests/contention.rs` pins
/// the O(1)-acquisitions-per-invocation behaviour. The replay applies the
/// identical touch sequence, so faults/evictions/cycle charges stay
/// bit-identical on any serial schedule.
pub(crate) struct EpcSink {
    pub(crate) epc: twine_sgx::EpcHandle,
    pub(crate) base_page: u64,
    /// Buffered page-transition stream of the current invocation.
    pub(crate) pending: Vec<u64>,
}

/// Fold the buffer before it outgrows session memory: keeps acquisitions
/// O(transitions / 16384) — still effectively O(1) per warm invocation —
/// while a page-thrashing guest can't pin unbounded buffer space.
const EPC_SINK_FOLD_THRESHOLD: usize = 16 * 1024;

impl EpcSink {
    pub(crate) fn new(epc: twine_sgx::EpcHandle, base_page: u64) -> Self {
        Self {
            epc,
            base_page,
            pending: Vec::new(),
        }
    }
}

impl PageSink for EpcSink {
    fn touch(&mut self, page: u64) {
        self.pending.push(self.base_page + page);
        if self.pending.len() >= EPC_SINK_FOLD_THRESHOLD {
            self.flush();
        }
    }

    fn flush(&mut self) {
        self.epc.fold(&self.pending);
        self.pending.clear();
    }
}

/// The Twine runtime instance (one simulated enclave).
pub struct TwineRuntime {
    enclave: Arc<Enclave>,
    /// Host-function table, built once at [`TwineBuilder::build`] and shared
    /// immutably by every run.
    linker: Arc<Linker>,
    /// Trusted-clock monotonicity watermark (§IV-C). Lives on the runtime so
    /// `clock_time_get` stays monotonic **across** guest runs instead of the
    /// guard restarting at 0 on every call. An [`AtomicU64`] advanced by a
    /// CAS loop, so the guarantee survives sharing across threads (the old
    /// `Cell` silently allowed non-monotonic reads once shared).
    clock_watermark: Arc<AtomicU64>,
    processor: Processor,
    fs: FsChoice,
    pfs_mode: PfsMode,
    pfs_cache_nodes: usize,
    preopen: String,
    rights: Rights,
    args: Vec<String>,
    env: Vec<(String, String)>,
    profiler: Option<PfsProfiler>,
    backend: Option<Box<dyn FsBackend>>,
    fuel: Option<u64>,
    exec_tier: ExecTier,
}

impl TwineRuntime {
    /// The enclave hosting this runtime.
    #[must_use]
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// The simulated processor.
    #[must_use]
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// The virtual clock (includes launch cost already).
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        self.enclave.clock()
    }

    /// The PFS profiler, when enabled.
    #[must_use]
    pub fn pfs_profiler(&self) -> Option<&PfsProfiler> {
        self.profiler.as_ref()
    }

    /// Load a Wasm binary: decode, validate, AoT-compile (all performed on
    /// the already-delivered bytes) and map it into the enclave's reserved
    /// memory (§IV-B). One ECALL.
    pub fn load_wasm(&mut self, wasm: &[u8]) -> Result<TwineApp, TwineError> {
        let compiled = CompiledModule::from_bytes_with_tier(wasm, self.exec_tier)?;
        // Copy into reserved memory: charge the boundary copy.
        self.enclave.ecall(|| {
            self.enclave.clock().add_cycles(wasm.len() as u64 / 4);
        });
        Ok(TwineApp {
            compiled: Arc::new(compiled),
            wasm_bytes: wasm.len(),
        })
    }

    /// Run a WASI application: executes the exported `_start` (WASI ABI)
    /// inside a single ECALL.
    pub fn run(&mut self, app: &TwineApp) -> Result<RunReport, TwineError> {
        self.execute(app, "_start", &[]).map(|(report, _)| report)
    }

    /// Invoke an arbitrary exported function (embedding API).
    pub fn invoke(
        &mut self,
        app: &TwineApp,
        func: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, TwineError> {
        self.execute(app, func, args).map(|(_, values)| values)
    }

    /// Invoke an export and also return the run report.
    pub fn invoke_with_report(
        &mut self,
        app: &TwineApp,
        func: &str,
        args: &[Value],
    ) -> Result<(RunReport, Vec<Value>), TwineError> {
        self.execute(app, func, args)
    }

    fn execute(
        &mut self,
        app: &TwineApp,
        func: &str,
        args: &[Value],
    ) -> Result<(RunReport, Vec<Value>), TwineError> {
        // A one-shot run is a transient session: fresh WasiCtx over the
        // runtime's persistent backend, instantiated against the shared
        // host-function table built at `build()` time.
        let backend = self.backend.take().unwrap_or_else(|| {
            make_backend(
                self.fs,
                &self.enclave,
                self.pfs_mode,
                self.pfs_cache_nodes,
                self.profiler.clone(),
            )
        });
        let ctx = build_wasi_ctx(
            backend,
            &self.preopen,
            self.rights,
            &self.args,
            &self.env,
            &self.enclave,
            &self.clock_watermark,
        );

        let mut instance = match Instance::instantiate_shared(
            Arc::clone(&app.compiled),
            &self.linker,
            Box::new(ctx),
            self.fuel,
        ) {
            Ok(i) => i,
            Err((e, host_data)) => {
                // The WasiCtx owns the taken-out backend: reclaim it so
                // protected files survive a failed instantiation instead of
                // silently being replaced by an empty backend on the next run.
                if let Ok(ctx) = host_data.downcast::<WasiCtx>() {
                    self.backend = Some(wasi_backend_into_box(*ctx));
                }
                return Err(TwineError::Module(e));
            }
        };
        instance.fuel = self.fuel;
        instance.set_page_sink(Some(Box::new(EpcSink::new(self.enclave.epc(), 1 << 32))));
        // Report the invocation only: instantiation work (a start function,
        // if any) is not part of the run's meter — the same per-invocation
        // contract the session layer keeps, so cold and warm reports stay
        // bit-comparable.
        instance.meter.reset();

        let outcome = invoke_in_enclave(&self.enclave, &mut instance, func, args);
        let values = match outcome.values {
            Ok(v) => v,
            Err(t) => {
                // Preserve backend for subsequent runs even on trap.
                if let Some(ctx) = instance.into_state::<WasiCtx>() {
                    self.backend = Some(wasi_backend_into_box(ctx));
                }
                return Err(TwineError::Trap(t));
            }
        };
        let mut report = RunReport {
            exit_code: 0,
            stdout: Vec::new(),
            stderr: Vec::new(),
            meter: outcome.meter,
            cycles: outcome.cycles,
            wasi_calls: 0,
            epc: outcome.epc,
            fuel_remaining: instance.fuel,
        };
        if let Some(ctx) = instance.into_state::<WasiCtx>() {
            report.exit_code = ctx.exit_code.unwrap_or(0);
            report.stdout = ctx.stdout.clone();
            report.stderr = ctx.stderr.clone();
            report.wasi_calls = ctx.call_count;
            self.backend = Some(wasi_backend_into_box(ctx));
        }
        Ok((report, values))
    }

}

/// Build the per-run/per-session WASI context from the embedding template:
/// backend, preopen + rights, argv/env, and the §IV-C trusted clock. One
/// construction path shared by the one-shot runtime and the session layer,
/// so their guest-visible environments cannot drift apart (the warm-vs-cold
/// differential contract of `tests/session_semantics.rs` depends on it).
pub(crate) fn build_wasi_ctx(
    backend: Box<dyn FsBackend>,
    preopen: &str,
    rights: Rights,
    args: &[String],
    env: &[(String, String)],
    enclave: &Arc<Enclave>,
    watermark: &Arc<AtomicU64>,
) -> WasiCtx {
    let mut ctx = WasiCtx::new(backend, preopen, rights);
    ctx.args = args.to_vec();
    ctx.env = env.to_vec();
    install_trusted_clock(&mut ctx, enclave, watermark);
    ctx
}

/// Install the §IV-C trusted clock into a WASI context: leave the enclave
/// for the host time (an OCALL), then enforce monotonicity inside using a
/// watermark owned by the runtime/session — so the guard survives across
/// invocations instead of restarting at 0 on every call.
pub(crate) fn install_trusted_clock(
    ctx: &mut WasiCtx,
    enclave: &Arc<Enclave>,
    watermark: &Arc<AtomicU64>,
) {
    let enclave = enclave.clone();
    let last = Arc::clone(watermark);
    ctx.set_clock(Box::new(move || {
        let host_time = enclave.ocall(8, || {
            // Host "clock": derived from virtual cycles so runs are
            // deterministic.
            enclave.clock().cycles().wrapping_mul(263) / 1_000
        });
        advance_watermark(&last, host_time)
    }));
}

/// Advance a trusted-clock watermark past `host_time`, returning the value
/// to hand to the guest. A compare-and-swap loop (not load-then-store, the
/// old `Cell` behaviour) so that even when one watermark is read from many
/// threads at once every observer sees strictly increasing time: each
/// successful CAS moves the watermark strictly upward, and a loser retries
/// against the fresher value (§IV-C monotonicity, now under concurrency).
///
/// Public so the concurrency suite can proptest the guarantee directly.
pub fn advance_watermark(last: &AtomicU64, host_time: u64) -> u64 {
    let mut prev = last.load(Ordering::Relaxed);
    loop {
        let t = host_time.max(prev + 1);
        match last.compare_exchange_weak(prev, t, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return t,
            Err(newer) => prev = newer,
        }
    }
}

/// Bounded-retry budget for transient boundary faults: at most this many
/// attempts per crossing. The fault schedule's `max_consecutive` bound
/// (default 2) guarantees convergence well inside it.
pub(crate) const RETRY_MAX: u32 = 4;

/// Base virtual-time backoff charged before re-attempting a faulted
/// crossing; doubles per attempt (`base << attempt`). Virtual cycles, so
/// the penalty is modelled and deterministic, not wall-clock sleep.
pub(crate) const RETRY_BACKOFF_CYCLES: u64 = 1_000;

/// Run a fallible boundary crossing under the bounded-retry policy:
/// transient errors are retried up to [`RETRY_MAX`] attempts with
/// exponential virtual-time backoff (each retry counted into `retries`);
/// permanent errors and exhaustion surface to the caller.
pub(crate) fn with_retries<T>(
    enclave: &Arc<Enclave>,
    retries: &mut u64,
    mut f: impl FnMut(u32) -> Result<T, SgxError>,
) -> Result<T, SgxError> {
    let mut attempt = 0u32;
    loop {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < RETRY_MAX => {
                attempt += 1;
                *retries += 1;
                enclave.clock().add_cycles(RETRY_BACKOFF_CYCLES << attempt);
            }
            Err(e) => return Err(e),
        }
    }
}

/// What one in-enclave invocation produced, before the embedder extracts
/// the WASI-visible pieces (stdout, exit code, ...) from the instance.
pub(crate) struct InvocationOutcome {
    /// Guest results; a `proc_exit` trap is already mapped to `Ok(vec![])`.
    pub(crate) values: Result<Vec<Value>, Trap>,
    /// Retired-instruction meter of the run.
    pub(crate) meter: Meter,
    /// Virtual cycles consumed by the ECALL.
    pub(crate) cycles: u64,
    /// EPC paging counters attributable to the run.
    pub(crate) epc: EpcStats,
    /// Boundary retries absorbed by this invocation (injected transient
    /// ECALL faults; 0 without a fault plan).
    pub(crate) retries: u64,
}

/// Run one exported function inside the single ECALL of §IV-C and account
/// for cycles and EPC paging. Shared by the one-shot [`TwineRuntime`] path
/// and the persistent-session [`crate::TwineService`] path, so warm and
/// cold invocations flow through bit-identical metering code.
pub(crate) fn invoke_in_enclave(
    enclave: &Arc<Enclave>,
    instance: &mut Instance,
    func: &str,
    args: &[Value],
) -> InvocationOutcome {
    let epc = enclave.epc();
    let epc_stats_before = epc.stats();
    let cycles_before = enclave.clock().cycles();

    // The single ECALL of §IV-C: the whole guest run happens inside. The
    // page sink buffers its transition stream session-locally; folding it
    // before leaving the ECALL publishes this invocation's EPC accounting
    // (faults, evictions, swap cycle charges) in one lock acquisition, so
    // the counters read below see it.
    //
    // Injected ECALL faults fire at the *entry* transition — the body
    // never runs — so retrying the whole ECALL is always safe. Exhaustion
    // falls through to an unfaultable entry for totality: an invocation
    // is delayed by chaos, never lost to it.
    let mut retries = 0u64;
    let body = |instance: &mut Instance| {
        let r = instance.invoke(func, args);
        instance.flush_page_sink();
        r
    };
    let result = {
        let mut attempt = 0u32;
        loop {
            match enclave.try_ecall(attempt, || body(instance)) {
                Ok(r) => break r,
                Err(_) if attempt + 1 < RETRY_MAX => {
                    attempt += 1;
                    retries += 1;
                    enclave.clock().add_cycles(RETRY_BACKOFF_CYCLES << attempt);
                }
                Err(_) => break enclave.ecall(|| body(instance)),
            }
        }
    };

    let values = match result {
        Ok(v) => Ok(v),
        Err(Trap::Host(m)) if m == PROC_EXIT_TRAP => Ok(Vec::new()),
        Err(t) => Err(t),
    };
    InvocationOutcome {
        values,
        meter: instance.meter.clone(),
        cycles: enclave.clock().cycles() - cycles_before,
        epc: diff_epc(epc.stats(), epc_stats_before),
        retries,
    }
}

pub(crate) fn diff_epc(now: EpcStats, before: EpcStats) -> EpcStats {
    EpcStats {
        hits: now.hits - before.hits,
        faults: now.faults - before.faults,
        evictions: now.evictions - before.evictions,
    }
}

// WasiCtx owns its backend; this helper moves it back out after a run so
// protected files persist for the lifetime of the runtime.
pub(crate) fn wasi_backend_into_box(ctx: WasiCtx) -> Box<dyn FsBackend> {
    ctx.into_backend()
}

/// Register the `env` math imports the MiniC toolchain uses (libm stand-in,
/// provided natively by the runtime just as WAMR links libm).
pub fn register_libm(linker: &mut Linker) {
    for (name, arity) in twine_minicc_libm() {
        let ty = FuncType::new(vec![ValType::F64; arity], vec![ValType::F64]);
        linker.func("env", name, ty, move |_ctx, args: &[Value]| {
            let xs: Vec<f64> = args.iter().map(|a| a.as_f64().unwrap_or(0.0)).collect();
            let r = match (name, xs.as_slice()) {
                ("exp", [x]) => x.exp(),
                ("log", [x]) => x.ln(),
                ("sin", [x]) => x.sin(),
                ("cos", [x]) => x.cos(),
                ("pow", [x, y]) => x.powf(*y),
                _ => return Err(Trap::Host(format!("unknown libm fn {name}"))),
            };
            Ok(vec![Value::F64(r)])
        });
    }
}

fn twine_minicc_libm() -> [(&'static str, usize); 5] {
    [("exp", 1), ("log", 1), ("sin", 1), ("cos", 1), ("pow", 2)]
}
