//! Durable, rollback-protected park records (DESIGN.md §12).
//!
//! Sealing a parked session protects its confidentiality and integrity,
//! but a sealed blob held only in host memory dies with the process, and
//! a blob held on disk can be *replayed*: the host can crash the enclave,
//! then hand back last week's perfectly-valid sealed image. This module
//! closes both gaps:
//!
//! * **Durability** — each session's `(module wasm, sealed image)` record
//!   is written through a journalled [`SgxFile`] (`PfsOptions.journal`),
//!   so a crash mid-park recovers to either the previous record or the
//!   new one, never a torn hybrid (the same atomicity the PFS
//!   crash-recovery battery proves).
//! * **Freshness** — every parked image embeds a tag from a processor
//!   [`MonotonicCounters`] bank before sealing. Park writes the record
//!   with tag `peek + 1` and only *then* bumps the counter; recovery
//!   accepts `tag >= peek` (covering the write-then-crash-before-bump
//!   window, where at most one record can carry `peek + 1`) and
//!   fast-forwards the counter. A replayed older image has `tag < peek`
//!   and is rejected typed ([`TwineError::Rollback`]).
//!
//! The counter bank and the record map are shared (`Arc`) so they survive
//! a simulated enclave restart — exactly the real-hardware trust split:
//! monotonic counters live in the processor/CSME, records on untrusted
//! disk, and the restarted enclave re-derives its keys from the same
//! processor + measurement.
//!
//! [`TwineError::Rollback`]: crate::TwineError::Rollback

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use twine_crypto::Sha256;
use twine_pfs::{MemStorage, PfsError, PfsMode, PfsOptions, SgxFile, UntrustedStorage};
use twine_sgx::MonotonicCounters;

/// Journalled options for park-record files: crash atomicity is the whole
/// point, so the journal is always on. Optimised mode — the record path is
/// plumbing, not a Figure 7 measurement target.
fn record_opts() -> PfsOptions {
    PfsOptions {
        mode: PfsMode::Optimised,
        cache_nodes: 8,
        enclave: None,
        profiler: None,
        journal: true,
    }
}

/// Rollback-protected durable storage for parked session images.
///
/// Cloning shares the underlying counter bank and record map — a clone
/// handed to a freshly-built [`TwineService`](crate::TwineService) models
/// an enclave restart on the *same machine* (same processor counters,
/// same untrusted disk).
#[derive(Clone, Default)]
pub struct DurableParkStore {
    counters: MonotonicCounters,
    files: Arc<Mutex<HashMap<String, MemStorage>>>,
}

impl std::fmt::Debug for DurableParkStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let files = self.files.lock().unwrap();
        f.debug_struct("DurableParkStore")
            .field("records", &files.len())
            .finish()
    }
}

impl DurableParkStore {
    /// Fresh store: empty counter bank, no records.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The monotonic-counter id for a session: its name, hashed to the
    /// bank's fixed-width id space.
    pub(crate) fn counter_id(session: &str) -> [u8; 32] {
        Sha256::digest(session.as_bytes())
    }

    /// Current freshness floor for a session (next accepted tag).
    pub(crate) fn peek(&self, session: &str) -> u64 {
        self.counters.peek(&Self::counter_id(session))
    }

    /// Bump the session's counter (after a record write, or on close so a
    /// replay of the removed record is rejected).
    pub(crate) fn bump(&self, session: &str) -> u64 {
        self.counters.bump(&Self::counter_id(session))
    }

    /// Fast-forward the session's counter to at least `tag` (recovery
    /// accepted a record written after the last completed bump).
    pub(crate) fn fast_forward(&self, session: &str, tag: u64) {
        let id = Self::counter_id(session);
        while self.counters.peek(&id) < tag {
            self.counters.bump(&id);
        }
    }

    /// Session names with a durable record, in deterministic order.
    pub(crate) fn session_names(&self) -> Vec<String> {
        let files = self.files.lock().unwrap();
        let mut names: Vec<String> = files.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of durable records currently held.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.files.lock().unwrap().len()
    }

    /// Overwrite (or create) the session's record file **in place** with
    /// `[wasm_len u32][wasm][sealed_len u32][sealed]`, through the
    /// journalled file so the transition is crash-atomic.
    pub(crate) fn write_record(
        &self,
        session: &str,
        key: [u8; 16],
        wasm: &[u8],
        sealed: &[u8],
    ) -> Result<(), PfsError> {
        let store = {
            let mut files = self.files.lock().unwrap();
            files.remove(session).unwrap_or_default()
        };
        let mut f = if store.node_count() == 0 {
            SgxFile::create(store, key, record_opts())?
        } else {
            SgxFile::open(store, key, record_opts())?
        };
        let mut record = Vec::with_capacity(wasm.len() + sealed.len() + 8);
        record.extend_from_slice(&(wasm.len() as u32).to_le_bytes());
        record.extend_from_slice(wasm);
        record.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
        record.extend_from_slice(sealed);
        f.seek(0)?;
        f.write(&record)?;
        f.set_size(record.len() as u64)?;
        f.flush()?;
        let store = f.into_storage()?;
        self.files.lock().unwrap().insert(session.to_string(), store);
        Ok(())
    }

    /// Read a session's record back, running journal recovery if the last
    /// write was cut short. Returns `(wasm, sealed)`.
    pub(crate) fn read_record(
        &self,
        session: &str,
        key: [u8; 16],
    ) -> Result<(Vec<u8>, Vec<u8>), PfsError> {
        let store = {
            let mut files = self.files.lock().unwrap();
            files
                .remove(session)
                .ok_or_else(|| PfsError::Io(format!("no durable record for {session:?}")))?
        };
        let mut f = SgxFile::open(store, key, record_opts())?;
        f.seek(0)?;
        let mut record = vec![0u8; f.size() as usize];
        f.read(&mut record)?;
        let store = f.into_storage()?;
        self.files.lock().unwrap().insert(session.to_string(), store);
        let bad = || PfsError::Io(format!("malformed durable record for {session:?}"));
        let wasm_len = u32::from_le_bytes(record.get(..4).ok_or_else(bad)?.try_into().unwrap());
        let rest = record.get(4..).ok_or_else(bad)?;
        let wasm = rest.get(..wasm_len as usize).ok_or_else(bad)?.to_vec();
        let rest = &rest[wasm_len as usize..];
        let sealed_len = u32::from_le_bytes(rest.get(..4).ok_or_else(bad)?.try_into().unwrap());
        let sealed = rest
            .get(4..4 + sealed_len as usize)
            .ok_or_else(bad)?
            .to_vec();
        Ok((wasm, sealed))
    }

    /// Drop a session's record (close path). The caller bumps the counter
    /// so a replay of the removed record is rejected as stale.
    pub(crate) fn remove_record(&self, session: &str) {
        self.files.lock().unwrap().remove(session);
    }

    /// Test/attack hook: snapshot a session's raw record storage (the
    /// untrusted host can always copy the ciphertext).
    #[must_use]
    pub fn snapshot_record(&self, session: &str) -> Option<Vec<Option<Box<[u8; 4096]>>>> {
        self.files.lock().unwrap().get(session).map(MemStorage::snapshot)
    }

    /// Test/attack hook: replace a session's record storage with a prior
    /// snapshot — the rollback attack [`recover`] must reject.
    ///
    /// [`recover`]: crate::TwineService::recover
    pub fn replay_record(&self, session: &str, snap: Vec<Option<Box<[u8; 4096]>>>) {
        let mut store = MemStorage::new();
        store.restore(snap);
        self.files.lock().unwrap().insert(session.to_string(), store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_and_overwrite() {
        let store = DurableParkStore::new();
        let key = [7u8; 16];
        store.write_record("s1", key, b"wasm-bytes", b"sealed-1").unwrap();
        let (w, s) = store.read_record("s1", key).unwrap();
        assert_eq!(w, b"wasm-bytes");
        assert_eq!(s, b"sealed-1");
        // Overwrite in place: same file, new content.
        store.write_record("s1", key, b"wasm-bytes", b"sealed-2-longer").unwrap();
        let (_, s) = store.read_record("s1", key).unwrap();
        assert_eq!(s, b"sealed-2-longer");
        assert_eq!(store.record_count(), 1);
    }

    #[test]
    fn counters_shared_across_clones() {
        let store = DurableParkStore::new();
        let clone = store.clone();
        assert_eq!(store.peek("a"), 0);
        store.bump("a");
        assert_eq!(clone.peek("a"), 1);
        clone.fast_forward("a", 5);
        assert_eq!(store.peek("a"), 5);
    }

    #[test]
    fn replayed_snapshot_restores_old_ciphertext() {
        let store = DurableParkStore::new();
        let key = [9u8; 16];
        store.write_record("s", key, b"m", b"old").unwrap();
        let snap = store.snapshot_record("s").unwrap();
        store.write_record("s", key, b"m", b"new").unwrap();
        store.replay_record("s", snap);
        let (_, sealed) = store.read_record("s", key).unwrap();
        assert_eq!(sealed, b"old", "the attack itself works at the storage layer");
    }
}
