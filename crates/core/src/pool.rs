//! Pre-instantiated instance slots (DESIGN.md §11).
//!
//! The pool keeps instances of [poolable](twine_wasm::compile::CompiledModule::poolable)
//! modules parked **at their base-image state**: data segments applied,
//! globals and table initialized, dirty bitmap clear, meter reset, no page
//! sink, a placeholder `Box<()>` as host data. Checking a slot out is the
//! wasmtime-pooling-allocator move applied to this runtime: a session open
//! (or a delta restore of a parked session) swaps in the tenant's WASI
//! context and is done — no decode, no validate, no data-segment copies,
//! no fresh zeroed allocation.
//!
//! One pool is shared by every shard of a
//! [`ShardedService`](crate::ShardedService) (slots are `Send` and carry
//! no shard-local state), so a slot parked by one shard warms another's
//! cold open. Capacity is per module key, set by
//! [`ControlPlane::pool_slots_per_module`](crate::ControlPlane); the lock
//! is held only for the `Vec` push/pop, never across instantiation.

use std::collections::HashMap;
use std::sync::Mutex;

use twine_wasm::Instance;

/// A bounded pool of base-state instances, keyed by module content
/// address (already tier-domain-separated by
/// [`ModuleCache::content_key`](crate::ModuleCache::content_key)).
pub(crate) struct InstancePool {
    slots: Mutex<HashMap<[u8; 32], Vec<Instance>>>,
    /// Max slots retained per module key; 0 = pooling disabled (every
    /// `put` drops the instance).
    per_module: usize,
}

impl InstancePool {
    pub(crate) fn new(per_module: usize) -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            per_module,
        }
    }

    /// Check a base-state slot out for `key`, if one is available.
    pub(crate) fn take(&self, key: &[u8; 32]) -> Option<Instance> {
        self.slots.lock().unwrap().get_mut(key)?.pop()
    }

    /// Return a base-state instance to the pool. Returns `false` (and
    /// drops the instance) when the per-module capacity is already met.
    pub(crate) fn put(&self, key: [u8; 32], instance: Instance) -> bool {
        if self.per_module == 0 {
            return false;
        }
        let mut slots = self.slots.lock().unwrap();
        let v = slots.entry(key).or_default();
        if v.len() >= self.per_module {
            return false;
        }
        v.push(instance);
        true
    }

    /// Drop every pooled slot (EPC-pressure coupling: pre-instantiated
    /// idle capacity goes before live tenants are parked). Returns how
    /// many slots were freed.
    pub(crate) fn drain(&self) -> usize {
        let mut slots = self.slots.lock().unwrap();
        let n = slots.values().map(Vec::len).sum();
        slots.clear();
        n
    }

    /// Total slots currently parked in the pool.
    pub(crate) fn len(&self) -> usize {
        self.slots.lock().unwrap().values().map(Vec::len).sum()
    }
}
