//! Confidential code provisioning (paper Figure 1 and §IV-B).
//!
//! Unlike plain SGX — which guarantees only the *integrity* of the enclave
//! binary — Twine also provides *confidentiality of the Wasm application*:
//! the code is delivered over a secure channel after the enclave starts and
//! only ever exists decrypted inside reserved enclave memory.
//!
//! Flow reproduced here:
//!
//! 1. The runtime produces a **quote** over its enclave measurement.
//! 2. The application provider verifies the quote against the attestation
//!    service and the expected Twine measurement.
//! 3. The provider encrypts the Wasm binary under a fresh session key and
//!    has the key wrapped for the attested processor (the simulator's
//!    stand-in for an ECDH channel — see DESIGN.md's substitution table).
//! 4. The runtime unwraps the key *inside the enclave*, decrypts the module
//!    into reserved memory and compiles it.

use rand::RngCore;

use twine_crypto::gcm::AesGcm;
use twine_sgx::{AttestationService, Quote, Report};

use crate::runtime::{TwineApp, TwineError, TwineRuntime, TWINE_RUNTIME_IMAGE};

/// An encrypted, attestation-bound application bundle.
pub struct EncryptedApp {
    /// Session key wrapped to the target processor.
    pub wrapped_key: Vec<u8>,
    /// GCM nonce for the payload.
    pub nonce: [u8; 12],
    /// Encrypted Wasm bytes.
    pub ciphertext: Vec<u8>,
    /// Authentication tag.
    pub tag: [u8; 16],
}

/// The application provider (developer's premises, Figure 1 left).
pub struct ApplicationProvider {
    wasm: Vec<u8>,
    expected_measurement: [u8; 32],
}

impl ApplicationProvider {
    /// A provider shipping `wasm`, trusting only enclaves whose measurement
    /// equals the published Twine runtime measurement.
    #[must_use]
    pub fn new(wasm: Vec<u8>, expected_measurement: [u8; 32]) -> Self {
        Self {
            wasm,
            expected_measurement,
        }
    }

    /// The measurement of the reference Twine runtime image (what a real
    /// provider would obtain from the reproducible build).
    #[must_use]
    pub fn reference_twine_measurement(heap_bytes: u64) -> [u8; 32] {
        // Mirrors EnclaveBuilder's measurement computation.
        let mut h = twine_crypto::sha256::Sha256::new();
        h.update(b"twine-sgx-sim MRENCLAVE v1");
        h.update(TWINE_RUNTIME_IMAGE);
        h.update(&heap_bytes.to_le_bytes());
        h.finalize()
    }

    /// Verify the runtime's quote and, if trusted, encrypt the application
    /// for it.
    pub fn deliver(
        &self,
        service: &AttestationService,
        quote: &Quote,
    ) -> Result<EncryptedApp, TwineError> {
        service
            .verify_quote(quote, Some(&self.expected_measurement))
            .map_err(|e| TwineError::Provision(format!("quote rejected: {e}")))?;
        let mut rng = rand::thread_rng();
        let mut session_key = [0u8; 16];
        rng.fill_bytes(&mut session_key);
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let wrapped_key = service
            .wrap_secret(
                quote.processor_id,
                u64::from_le_bytes(nonce[..8].try_into().expect("8 bytes")),
                &quote.report.measurement,
                &session_key,
            )
            .map_err(|e| TwineError::Provision(format!("key wrap failed: {e}")))?;
        let gcm = AesGcm::new_128(&session_key);
        let (ciphertext, tag) = gcm.encrypt(&nonce, b"twine-app", &self.wasm);
        Ok(EncryptedApp {
            wrapped_key,
            nonce,
            ciphertext,
            tag,
        })
    }
}

impl TwineRuntime {
    /// Produce a remote-attestation quote for this runtime.
    #[must_use]
    pub fn attest(&self, user_data: &[u8]) -> Quote {
        let report = Report::create(
            self.processor(),
            &self.enclave().measurement(),
            &[0u8; 32], // quoting enclave target
            user_data,
        );
        AttestationService::quote(self.processor(), report)
    }

    /// Receive a confidential application: unwrap the session key and
    /// decrypt the Wasm *inside the enclave*, then compile and install it.
    pub fn receive_app(&mut self, bundle: &EncryptedApp) -> Result<TwineApp, TwineError> {
        let measurement = self.enclave().measurement();
        let processor = self.processor().clone();
        let enclave = self.enclave().clone();
        let wasm = enclave.ecall(|| -> Result<Vec<u8>, TwineError> {
            let key_bytes = AttestationService::unwrap_secret(
                &processor,
                &measurement,
                &bundle.wrapped_key,
            )
            .map_err(|e| TwineError::Provision(format!("key unwrap failed: {e}")))?;
            let key: [u8; 16] = key_bytes
                .try_into()
                .map_err(|_| TwineError::Provision("bad session key length".into()))?;
            let gcm = AesGcm::new_128(&key);
            gcm.decrypt(&bundle.nonce, b"twine-app", &bundle.ciphertext, &bundle.tag)
                .map_err(|_| TwineError::Provision("application ciphertext tampered".into()))
        })?;
        self.load_wasm(&wasm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TwineBuilder;
    use twine_wasm::Value;

    fn service_with(rt: &TwineRuntime) -> AttestationService {
        let mut s = AttestationService::new();
        s.register_processor(rt.processor());
        s
    }

    #[test]
    fn provisioning_happy_path() {
        let mut rt = TwineBuilder::new().heap_bytes(1 << 20).build();
        let service = service_with(&rt);
        let wasm = twine_minicc::compile_to_bytes("int twice(int x) { return 2 * x; }").unwrap();
        let provider = ApplicationProvider::new(
            wasm,
            ApplicationProvider::reference_twine_measurement(1 << 20),
        );
        let quote = rt.attest(b"session");
        let bundle = provider.deliver(&service, &quote).unwrap();
        let app = rt.receive_app(&bundle).unwrap();
        let out = rt.invoke(&app, "twice", &[Value::I32(21)]).unwrap();
        assert_eq!(out[0], Value::I32(42));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let rt = TwineBuilder::new().heap_bytes(1 << 20).build();
        let service = service_with(&rt);
        let provider = ApplicationProvider::new(vec![1, 2, 3], [0xAA; 32]);
        let quote = rt.attest(b"");
        assert!(matches!(
            provider.deliver(&service, &quote),
            Err(TwineError::Provision(_))
        ));
    }

    #[test]
    fn unregistered_processor_rejected() {
        let rt = TwineBuilder::new().heap_bytes(1 << 20).build();
        let service = AttestationService::new(); // nothing registered
        let provider = ApplicationProvider::new(
            vec![],
            ApplicationProvider::reference_twine_measurement(1 << 20),
        );
        let quote = rt.attest(b"");
        assert!(provider.deliver(&service, &quote).is_err());
    }

    #[test]
    fn tampered_bundle_rejected() {
        let mut rt = TwineBuilder::new().heap_bytes(1 << 20).build();
        let service = service_with(&rt);
        let wasm = twine_minicc::compile_to_bytes("int f() { return 1; }").unwrap();
        let provider = ApplicationProvider::new(
            wasm,
            ApplicationProvider::reference_twine_measurement(1 << 20),
        );
        let quote = rt.attest(b"");
        let mut bundle = provider.deliver(&service, &quote).unwrap();
        bundle.ciphertext[0] ^= 1;
        assert!(matches!(
            rt.receive_app(&bundle),
            Err(TwineError::Provision(_))
        ));
    }

    #[test]
    fn bundle_for_other_processor_rejected() {
        // Deliver to processor A, try to consume on processor B.
        let mut rt_a = TwineBuilder::new().heap_bytes(1 << 20).build();
        let mut service = AttestationService::new();
        service.register_processor(rt_a.processor());
        let mut rt_b = TwineBuilder::new()
            .heap_bytes(1 << 20)
            .processor(twine_sgx::Processor::new(99))
            .build();
        let wasm = twine_minicc::compile_to_bytes("int f() { return 1; }").unwrap();
        let provider = ApplicationProvider::new(
            wasm,
            ApplicationProvider::reference_twine_measurement(1 << 20),
        );
        let quote = rt_a.attest(b"");
        let bundle = provider.deliver(&service, &quote).unwrap();
        assert!(rt_a.receive_app(&bundle).is_ok());
        assert!(rt_b.receive_app(&bundle).is_err());
    }
}
