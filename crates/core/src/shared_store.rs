//! Shared, reference-counted untrusted storage so protected files persist
//! across open/close cycles within one runtime.

use std::sync::{Arc, Mutex};

use twine_pfs::{MemStorage, PfsError, UntrustedStorage, NODE_SIZE};

/// A clonable handle to one file's untrusted node array. `Arc<Mutex<…>>`
/// so a session's protected files are `Send` — the sharded service moves
/// per-session backends onto worker threads and hands them back on close.
#[derive(Clone, Default)]
pub struct SharedStorage(Arc<Mutex<MemStorage>>);

impl SharedStorage {
    /// Fresh empty storage.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ciphertext bytes currently held (Table IIIb disk-footprint metric).
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.0.lock().unwrap().stored_bytes()
    }

    /// Borrow the inner storage (tamper tests).
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut MemStorage) -> R) -> R {
        f(&mut self.0.lock().unwrap())
    }
}

impl UntrustedStorage for SharedStorage {
    fn read_node(&mut self, idx: u64, buf: &mut [u8; NODE_SIZE]) -> Result<bool, PfsError> {
        self.0.lock().unwrap().read_node(idx, buf)
    }

    fn write_node(&mut self, idx: u64, buf: &[u8; NODE_SIZE]) -> Result<(), PfsError> {
        self.0.lock().unwrap().write_node(idx, buf)
    }

    fn node_count(&self) -> u64 {
        self.0.lock().unwrap().node_count()
    }

    fn truncate(&mut self, nodes: u64) -> Result<(), PfsError> {
        self.0.lock().unwrap().truncate(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_nodes() {
        let mut a = SharedStorage::new();
        let mut b = a.clone();
        let node = [7u8; NODE_SIZE];
        a.write_node(0, &node).unwrap();
        let mut buf = [0u8; NODE_SIZE];
        assert!(b.read_node(0, &mut buf).unwrap());
        assert_eq!(buf[0], 7);
        assert_eq!(a.stored_bytes(), NODE_SIZE as u64);
    }
}
