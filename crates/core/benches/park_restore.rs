//! Criterion pair for the memory-image fast path (DESIGN.md §11): one
//! park → invoke(restore) cycle per iteration, with pooling off
//! (`park_restore_full`: the whole linear memory is sealed and a fresh
//! instance is rebuilt from module bytes on restore) and with pooling on
//! (`park_restore_delta`: only dirty pages are sealed, restore patches a
//! pre-instantiated pooled slot). The delta path must win on wall-clock;
//! the churn differential suite proves the two are observably identical.

use criterion::{criterion_group, criterion_main, Criterion};
use twine_core::TwineBuilder;
use twine_wasm::Value;

/// Stateful guest with a multi-page working set of which each call
/// touches a small slice — the shape pooling is built for: the full image
/// is 64 KiB+ while the dirty set is a handful of 4 KiB pages.
const GUEST_SRC: &str = "
    int acc;
    int hot[256];
    int step(int x) {
        acc = acc * 31 + x;
        hot[x % 256] = acc;
        return acc;
    }
";

fn bench_cycle(c: &mut Criterion, name: &str, pool_slots: Option<usize>) {
    let wasm = twine_minicc::compile_to_bytes(GUEST_SRC).expect("guest compiles");
    let mut b = TwineBuilder::new();
    if let Some(n) = pool_slots {
        b = b.pool_slots_per_module(n);
    }
    let mut svc = b.build_service();
    svc.open_session("s", &wasm).expect("open");
    svc.invoke("s", "step", &[Value::I32(1)]).expect("warmup");
    let mut x = 0i32;
    c.bench_function(name, |bench| {
        bench.iter(|| {
            svc.park_session("s").expect("park");
            x = x.wrapping_add(1);
            svc.invoke("s", "step", &[Value::I32(x)]).expect("restore+invoke")
        });
    });
}

fn bench_park_restore(c: &mut Criterion) {
    bench_cycle(c, "park_restore_full", None);
    bench_cycle(c, "park_restore_delta", Some(2));
}

criterion_group!(benches, bench_park_restore);
criterion_main!(benches);
