//! Chaos differential suite (DESIGN.md §12): the churn battery re-run with
//! a seeded [`FaultPlan`] armed on every trust-boundary crossing — seal
//! and unseal failures, transient ECALL/OCALL aborts, EPC pressure spikes
//! and corrupt pool slots — checked **bit-identically** against an
//! unfaulted single-threaded replay of the same per-session operation
//! sequences.
//!
//! The contract under test: injected faults may perturb everything the
//! runtime meters globally (virtual cycles, EPC traffic, boundary bytes,
//! seal volumes) but must never change anything a tenant can observe —
//! results, traps, stdout, WASI call counts, retired-instruction meters,
//! remaining fuel. The runtime absorbs faults by bounded retry with
//! virtual-time backoff, by falling back from delta parks to full-image
//! parks, and by discarding corrupt pool slots; none of that is allowed
//! to leak into guest semantics.
//!
//! The second half of the suite covers crash recovery: durably-parked
//! sessions survive a simulated enclave crash (`drop` the service, rebuild
//! on the same processor) bit-identically via [`TwineService::recover`],
//! and a replayed stale park image — the classic rollback attack — is
//! rejected typed, because the image's freshness tag lags the processor's
//! monotonic counter.

use std::sync::Arc;

use twine_core::{
    ControlPlane, DurableParkStore, RunReport, TwineBuilder, TwineError, TwineService,
};
use twine_sgx::{FaultConfig, FaultPlan, Processor};
use twine_wasm::types::Value;
use twine_wasm::Meter;

// ---------------------------------------------------------------------
// Guests (trimmed from the churn suite)
// ---------------------------------------------------------------------

/// Order-sensitive stateful guest: its accumulator encodes the exact call
/// order, so any state loss or duplication in the faulted seal/retry
/// machinery shows up immediately.
const STATEFUL_SRC: &str = "
    int acc;
    int step(int x) {
        acc = acc * 31 + x;
        return acc;
    }
";

/// Compute guest; with a tiny fuel budget it always traps mid-run — the
/// trap must surface once, identically, never duplicated by a retry.
const COMPUTE_SRC: &str = "
    double A[24][24];
    int run(int seed) {
        for (int i = 0; i < 24; i += 1) {
            for (int j = 0; j < 24; j += 1) {
                A[i][j] = (double)((i * 31 + j * 7 + seed) % 97);
            }
        }
        double acc = 0.0;
        for (int i = 0; i < 24; i += 1) {
            for (int j = 0; j < 24; j += 1) {
                acc += A[i][j] * A[j][i];
            }
        }
        int out = (int)acc;
        return out % 65536;
    }
";

const TRAP_FUEL: u64 = 150;

fn stateful_wasm() -> Vec<u8> {
    twine_minicc::compile_to_bytes(STATEFUL_SRC).expect("stateful compiles")
}

fn compute_wasm() -> Vec<u8> {
    twine_minicc::compile_to_bytes(COMPUTE_SRC).expect("compute compiles")
}

// ---------------------------------------------------------------------
// Randomized plans (same LCG as the churn suite)
// ---------------------------------------------------------------------

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

#[derive(Clone, Copy, PartialEq)]
enum GuestClass {
    Stateful,
    FuelTrap,
}

#[derive(Clone)]
enum Op {
    Open,
    Invoke(i32),
    Close,
}

struct Plan {
    sessions: Vec<(String, GuestClass, Vec<u8>)>,
    ops: Vec<(usize, Op)>,
}

fn build_plan(n_sessions: usize, n_ops: usize, seed: u64) -> Plan {
    let stateful = stateful_wasm();
    let compute = compute_wasm();
    let sessions: Vec<(String, GuestClass, Vec<u8>)> = (0..n_sessions)
        .map(|i| {
            let name = format!("chaos-{i}");
            if i % 2 == 0 {
                (name, GuestClass::Stateful, stateful.clone())
            } else {
                (name, GuestClass::FuelTrap, compute.clone())
            }
        })
        .collect();

    let mut lcg = Lcg(seed);
    let mut open = vec![false; n_sessions];
    let mut ops = Vec::with_capacity(n_ops);
    while ops.len() < n_ops {
        let i = (lcg.next() as usize) % n_sessions;
        let r = lcg.next() % 10;
        if !open[i] {
            ops.push((i, Op::Open));
            open[i] = true;
        } else if r < 7 {
            ops.push((i, Op::Invoke((lcg.next() % 1000) as i32)));
        } else if r < 8 {
            // Idle: age toward the back of the LRU order.
        } else {
            ops.push((i, Op::Close));
            open[i] = false;
        }
    }
    Plan { sessions, ops }
}

// ---------------------------------------------------------------------
// Differential machinery
// ---------------------------------------------------------------------

/// Everything deterministic one operation produces. Virtual cycles, EPC
/// counters and boundary bytes are deliberately absent: faults perturb
/// those by design.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Opened(bool),
    Ok {
        values: Vec<Value>,
        exit_code: u32,
        stdout: Vec<u8>,
        wasi_calls: u64,
        meter: Meter,
        fuel_remaining: Option<u64>,
    },
    Trap(String),
    Closed,
}

fn invoke_event(res: Result<(RunReport, Vec<Value>), TwineError>) -> Event {
    match res {
        Ok((report, values)) => Event::Ok {
            values,
            exit_code: report.exit_code,
            stdout: report.stdout,
            wasi_calls: report.wasi_calls,
            meter: report.meter,
            fuel_remaining: report.fuel_remaining,
        },
        Err(e) => Event::Trap(e.to_string()),
    }
}

/// Drive the plan against a **faulted** sharded service under a tiny
/// eviction budget with pooling on — maximal churn through the (faulted)
/// seal/unseal/pool paths — from `clients` threads owning disjoint tenant
/// subsets.
fn run_faulted_sharded(
    plan: &Plan,
    shards: usize,
    clients: usize,
    fault_seed: u64,
) -> (Vec<Vec<Event>>, twine_core::ControlStats) {
    let control = ControlPlane {
        max_live_sessions: Some(1),
        pool_slots_per_module: Some(4),
        ..ControlPlane::default()
    };
    let svc = Arc::new(
        TwineBuilder::new()
            .control_plane(control)
            .faults(Arc::new(FaultPlan::new(FaultConfig::chaos(fault_seed))))
            .build_sharded(shards),
    );
    let mut handles = Vec::new();
    for c in 0..clients {
        let svc = Arc::clone(&svc);
        let mine: Vec<usize> = (0..plan.sessions.len()).filter(|i| i % clients == c).collect();
        let ops: Vec<(usize, Op)> = plan
            .ops
            .iter()
            .filter(|(i, _)| mine.contains(i))
            .cloned()
            .collect();
        let sessions: Vec<(String, GuestClass, Vec<u8>)> = plan.sessions.clone();
        handles.push(std::thread::spawn(move || {
            let mut seqs: Vec<(usize, Vec<Event>)> =
                mine.iter().map(|&i| (i, Vec::new())).collect();
            let at = |i: usize| mine.iter().position(|&m| m == i).expect("own tenant");
            for (i, op) in &ops {
                let (name, class, wasm) = &sessions[*i];
                let ev = match op {
                    Op::Open => {
                        let ok = svc.open_session(name, wasm).is_ok();
                        if ok && *class == GuestClass::FuelTrap {
                            svc.set_session_fuel(name, Some(TRAP_FUEL)).expect("fuel");
                        }
                        Event::Opened(ok)
                    }
                    Op::Invoke(x) => {
                        let (func, args) = match class {
                            GuestClass::Stateful => ("step", vec![Value::I32(*x)]),
                            GuestClass::FuelTrap => ("run", vec![Value::I32(*x)]),
                        };
                        invoke_event(svc.invoke_with_report(name, func, &args))
                    }
                    Op::Close => {
                        svc.close_session(name).expect("shard alive");
                        Event::Closed
                    }
                };
                seqs[at(*i)].1.push(ev);
            }
            seqs
        }));
    }
    let mut seqs: Vec<Vec<Event>> = vec![Vec::new(); plan.sessions.len()];
    for h in handles {
        for (i, seq) in h.join().expect("client thread") {
            seqs[i] = seq;
        }
    }
    let stats = svc.control_stats();
    for (i, (name, _, _)) in plan.sessions.iter().enumerate() {
        if let Ok(Some(_)) = svc.close_session(name) {
            seqs[i].push(Event::Closed);
        }
    }
    (seqs, stats)
}

/// The unfaulted, unbounded, single-threaded oracle.
fn run_oracle(plan: &Plan) -> Vec<Vec<Event>> {
    let mut svc: TwineService = TwineBuilder::new().build_service();
    let mut seqs: Vec<Vec<Event>> = vec![Vec::new(); plan.sessions.len()];
    for (i, op) in &plan.ops {
        let (name, class, wasm) = &plan.sessions[*i];
        let ev = match op {
            Op::Open => {
                let ok = svc.open_session(name, wasm).is_ok();
                if ok && *class == GuestClass::FuelTrap {
                    svc.set_session_fuel(name, Some(TRAP_FUEL)).expect("fuel");
                }
                Event::Opened(ok)
            }
            Op::Invoke(x) => {
                let (func, args) = match class {
                    GuestClass::Stateful => ("step", vec![Value::I32(*x)]),
                    GuestClass::FuelTrap => ("run", vec![Value::I32(*x)]),
                };
                invoke_event(svc.invoke_with_report(name, func, &args))
            }
            Op::Close => {
                svc.close_session(name);
                Event::Closed
            }
        };
        seqs[*i].push(ev);
    }
    for (i, (name, _, _)) in plan.sessions.iter().enumerate() {
        if svc.close_session(name).is_some() {
            seqs[i].push(Event::Closed);
        }
    }
    seqs
}

/// The differential: faulted sharded churn vs unfaulted oracle, and the
/// fault machinery actually exercised (injections happened, retries
/// happened) without any guest-visible divergence. Deliberately does NOT
/// assert `delta_sealed_bytes == sealed_bytes`: a seal fault mid-delta
/// degrades that park to a full image by design.
fn assert_chaos_matches(shards: usize, clients: usize, seed: u64) -> twine_core::ControlStats {
    // Enough tenants that shards hold several sessions each — the
    // eviction budget of 1 then forces continuous park/restore churn.
    let n_sessions = (3 * shards).max(7);
    let plan = build_plan(n_sessions, 20 * n_sessions, seed);
    let (faulted, stats) = run_faulted_sharded(&plan, shards, clients, seed ^ 0xC4A0_5EED);
    let oracle = run_oracle(&plan);
    for (i, (name, _, _)) in plan.sessions.iter().enumerate() {
        assert_eq!(
            faulted[i], oracle[i],
            "per-tenant event sequence diverged for {name} under faults \
             ({shards} shards, eviction budget 1)"
        );
    }
    assert!(
        stats.faults_injected > 0,
        "the chaos schedule must actually fire: {stats:?}"
    );
    assert!(
        stats.retries > 0,
        "transient faults must be absorbed by retries: {stats:?}"
    );
    assert!(
        stats.parks > 0 && stats.restores > 0,
        "budget-1 churn must park and restore: {stats:?}"
    );
    stats
}

// ---------------------------------------------------------------------
// Chaos differentials
// ---------------------------------------------------------------------

#[test]
fn chaos_churn_single_shard_is_guest_invisible() {
    assert_chaos_matches(1, 1, 0xD15E_A5E0);
}

#[test]
fn chaos_churn_four_shards_is_guest_invisible() {
    assert_chaos_matches(4, 3, 0xBAD5_EED5);
}

#[test]
fn chaos_churn_eight_shards_is_guest_invisible() {
    assert_chaos_matches(8, 4, 0xFA11_0E8A);
}

/// The same chaos run twice with the same seeds is bit-identical in every
/// guest-visible stream — the fault schedule is deterministic, not merely
/// harmless.
#[test]
fn chaos_schedule_is_reproducible() {
    let plan = build_plan(5, 90, 42);
    let (a, sa) = run_faulted_sharded(&plan, 1, 1, 42);
    let (b, sb) = run_faulted_sharded(&plan, 1, 1, 42);
    assert_eq!(a, b, "same plan + same fault seed must replay identically");
    assert_eq!(sa.faults_injected, sb.faults_injected);
    assert_eq!(sa.retries, sb.retries);
    assert!(sa.faults_injected > 0);
}

// ---------------------------------------------------------------------
// Crash recovery + rollback protection
// ---------------------------------------------------------------------

fn durable_control(store: &DurableParkStore) -> ControlPlane {
    ControlPlane {
        durable_parks: Some(store.clone()),
        ..ControlPlane::default()
    }
}

/// Simulated crash: durably-parked sessions come back bit-identically on
/// a service rebuilt on the same processor (same key hierarchy, same
/// counter bank, same untrusted record store) — even when the recovering
/// service itself runs under an armed chaos fault plan.
#[test]
fn crash_recovery_restores_durable_parks_bit_identically() {
    let wasm = stateful_wasm();
    let store = DurableParkStore::new();
    let processor = Processor::new(7);

    // The uninterrupted oracle: same call sequence, no crash.
    let mut oracle = TwineBuilder::new().build_service();
    oracle.open_session("a", &wasm).expect("oracle open a");
    oracle.open_session("b", &wasm).expect("oracle open b");

    let mut svc = TwineBuilder::new()
        .processor(processor.clone())
        .control_plane(durable_control(&store))
        .build_service();
    svc.open_session("a", &wasm).expect("open a");
    svc.open_session("b", &wasm).expect("open b");
    for (name, xs) in [("a", [3, 11, -4]), ("b", [9, -2, 100])] {
        for x in xs {
            let got = svc.invoke(name, "step", &[Value::I32(x)]).expect("invoke");
            let want = oracle.invoke(name, "step", &[Value::I32(x)]).expect("oracle");
            assert_eq!(got, want);
        }
    }
    svc.park_session("a").expect("park a");
    svc.park_session("b").expect("park b");
    assert_eq!(store.record_count(), 2, "both parks wrote durable records");

    // Crash: the enclave process dies. Only the processor (counters, key
    // roots) and the untrusted record store survive.
    drop(svc);

    let mut revived = TwineBuilder::new()
        .processor(processor)
        .control_plane(durable_control(&store))
        .faults(Arc::new(FaultPlan::new(FaultConfig::chaos(0xC0FF_EE00))))
        .build_service();
    let recovered = revived.recover().expect("recovery succeeds");
    assert_eq!(recovered, vec!["a".to_string(), "b".to_string()]);
    assert_eq!(revived.control_stats().recovered_sessions, 2);
    assert_eq!(revived.session_parked("a"), Some(true));
    assert_eq!(revived.session_parked("b"), Some(true));

    // The recovered sessions continue exactly where the oracle is.
    for (name, xs) in [("a", [17, 5]), ("b", [-1, 8])] {
        for x in xs {
            let got = revived.invoke(name, "step", &[Value::I32(x)]).expect("invoke");
            let want = oracle.invoke(name, "step", &[Value::I32(x)]).expect("oracle");
            assert_eq!(got, want, "recovered {name} diverged from the uncrashed oracle");
        }
    }

    // recover() is idempotent for already-live sessions.
    assert_eq!(revived.recover().expect("second recovery"), Vec::<String>::new());
}

/// The rollback attack: the host snapshots a session's sealed record,
/// lets the enclave park newer state, crashes it, replays the stale
/// ciphertext and asks for recovery. The stale image's freshness tag lags
/// the processor's monotonic counter, so recovery rejects it typed.
#[test]
fn replayed_stale_park_image_is_rejected() {
    let wasm = stateful_wasm();
    let store = DurableParkStore::new();
    let processor = Processor::new(13);

    let mut svc = TwineBuilder::new()
        .processor(processor.clone())
        .control_plane(durable_control(&store))
        .build_service();
    svc.open_session("s", &wasm).expect("open");
    svc.invoke("s", "step", &[Value::I32(1)]).expect("invoke");
    svc.park_session("s").expect("first park");
    let stale = store.snapshot_record("s").expect("host copies the ciphertext");
    svc.invoke("s", "step", &[Value::I32(2)]).expect("restore + invoke");
    svc.park_session("s").expect("second park");
    drop(svc);

    // Host replays last park-but-one and asks the revived enclave to
    // recover from it.
    store.replay_record("s", stale);
    let mut revived = TwineBuilder::new()
        .processor(processor)
        .control_plane(durable_control(&store))
        .build_service();
    match revived.recover() {
        Err(TwineError::Rollback { session, have, want }) => {
            assert_eq!(session, "s");
            assert_eq!(have, 1, "the replayed image carries the first park's tag");
            assert_eq!(want, 2, "the counter remembers the second park");
        }
        other => panic!("stale replay must be rejected typed, got: {other:?}"),
    }
    assert_eq!(revived.control_stats().rollback_rejected, 1);
    assert_eq!(
        revived.session_parked("s"),
        None,
        "the rolled-back session must not be resurrected"
    );
}

/// Closing a durably-parked session removes its record *and* bumps the
/// counter, so replaying the removed record after a crash is rejected —
/// a closed session cannot be resurrected from its last park image.
#[test]
fn closed_session_record_replay_is_rejected() {
    let wasm = stateful_wasm();
    let store = DurableParkStore::new();
    let processor = Processor::new(21);

    let mut svc = TwineBuilder::new()
        .processor(processor.clone())
        .control_plane(durable_control(&store))
        .build_service();
    svc.open_session("s", &wasm).expect("open");
    svc.invoke("s", "step", &[Value::I32(5)]).expect("invoke");
    svc.park_session("s").expect("park");
    let ghost = store.snapshot_record("s").expect("host copies the ciphertext");
    svc.close_session("s");
    assert_eq!(store.record_count(), 0, "close removes the durable record");
    drop(svc);

    store.replay_record("s", ghost);
    let mut revived = TwineBuilder::new()
        .processor(processor)
        .control_plane(durable_control(&store))
        .build_service();
    assert!(
        matches!(
            revived.recover(),
            Err(TwineError::Rollback { ref session, have: 1, want: 2 }) if session == "s"
        ),
        "a closed session's replayed record must be stale"
    );
}
