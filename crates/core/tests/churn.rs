//! Session-churn differential suite (control plane, DESIGN.md §10):
//! thousands of randomized arrive/invoke/idle/expire operations against
//! services running a **tiny eviction budget** — sessions are continuously
//! parked (sealed out of the enclave) and restored warm — checked
//! bit-identically against an **unbounded** single-threaded replay of the
//! same per-session operation sequences.
//!
//! What must be bit-identical per session: results, trap kinds, exit
//! codes, stdout, WASI call counts, per-class retired-instruction meters,
//! remaining fuel, and protected-fs file bytes recovered at close. What is
//! deliberately not compared: virtual-clock cycles, EPC fault counts and
//! cache-hit flags — those meter globally shared state (the seal/restore
//! traffic itself lands there, which is the point of the accounting).

use std::sync::Arc;

use twine_core::{ControlPlane, RunReport, TwineBuilder, TwineError, TwineService};
use twine_wasi::WASI_MODULE;
use twine_wasm::encode::encode;
use twine_wasm::instr::{Instr, LoadKind, MemArg};
use twine_wasm::types::{FuncType, Limits, ValType, Value};
use twine_wasm::{Meter, ModuleBuilder};

// ---------------------------------------------------------------------
// Guests
// ---------------------------------------------------------------------

/// Order-sensitive stateful guest: the global survives warm invocations
/// *and park/restore cycles* — its final value encodes the exact call
/// order, so any state loss in the seal/unseal path shows up immediately.
const STATEFUL_SRC: &str = "
    int acc;
    int step(int x) {
        acc = acc * 31 + x;
        return acc;
    }
";

/// Compute guest; with a tiny fuel budget it always traps mid-run, which
/// exercises the trap-then-reset path under churn.
const COMPUTE_SRC: &str = "
    double A[24][24];
    int run(int seed) {
        for (int i = 0; i < 24; i += 1) {
            for (int j = 0; j < 24; j += 1) {
                A[i][j] = (double)((i * 31 + j * 7 + seed) % 97);
            }
        }
        double acc = 0.0;
        for (int i = 0; i < 24; i += 1) {
            for (int j = 0; j < 24; j += 1) {
                acc += A[i][j] * A[j][i];
            }
        }
        int out = (int)acc;
        return out % 65536;
    }
";

/// Fuel budget low enough that the compute kernel always runs out mid-run.
const TRAP_FUEL: u64 = 150;

// Guest memory layout of the generated WASI-fs module (same convention as
// the concurrent_serving suite).
const PATH_ADDR: i32 = 0;
const PAYLOAD_ADDR: i32 = 256;
const READBUF_ADDR: i32 = 768;
const IOV_WRITE: i32 = 512;
const IOV_READ: i32 = 528;
const IOV_ECHO: i32 = 536;
const OUT_FD: i32 = 640;
const SCRATCH: i32 = 644;

fn iovec(base: i32, len: usize) -> Vec<u8> {
    let mut v = (base as u32).to_le_bytes().to_vec();
    v.extend_from_slice(&(len as u32).to_le_bytes());
    v
}

/// A guest whose `go()` creates/truncates its file, writes a payload,
/// reopens it, reads the payload back and echoes it to stdout — every call
/// exercises the protected-FS write and read paths plus stdout capture.
fn fs_guest(path: &str, payload: &[u8]) -> Vec<u8> {
    use ValType::{I32, I64};
    let mut b = ModuleBuilder::new();
    let path_open = b.import_func(
        WASI_MODULE,
        "path_open",
        FuncType::new(vec![I32, I32, I32, I32, I32, I64, I64, I32, I32], vec![I32]),
    );
    let fd_write = b.import_func(
        WASI_MODULE,
        "fd_write",
        FuncType::new(vec![I32, I32, I32, I32], vec![I32]),
    );
    let fd_read = b.import_func(
        WASI_MODULE,
        "fd_read",
        FuncType::new(vec![I32, I32, I32, I32], vec![I32]),
    );
    b.memory(Limits::at_least(1));
    b.add_data(PATH_ADDR, path.as_bytes().to_vec());
    b.add_data(PAYLOAD_ADDR, payload.to_vec());
    b.add_data(IOV_WRITE, iovec(PAYLOAD_ADDR, payload.len()));
    b.add_data(IOV_READ, iovec(READBUF_ADDR, payload.len()));
    b.add_data(IOV_ECHO, iovec(READBUF_ADDR, payload.len()));

    let open = |oflags: i32| {
        vec![
            Instr::Const(Value::I32(3)), // dirfd: the preopen
            Instr::Const(Value::I32(0)),
            Instr::Const(Value::I32(PATH_ADDR)),
            Instr::Const(Value::I32(path.len() as i32)),
            Instr::Const(Value::I32(oflags)),
            Instr::Const(Value::I64(-1)),
            Instr::Const(Value::I64(0)),
            Instr::Const(Value::I32(0)),
            Instr::Const(Value::I32(OUT_FD)),
            Instr::Call(path_open),
            Instr::Drop,
        ]
    };
    let load_fd = || {
        vec![
            Instr::Const(Value::I32(OUT_FD)),
            Instr::Load(LoadKind::I32, MemArg { offset: 0, align: 2 }),
        ]
    };

    let mut body = open(0x1 | 0x8); // create | trunc
    body.extend(load_fd());
    body.extend([
        Instr::Const(Value::I32(IOV_WRITE)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_write),
        Instr::Drop,
    ]);
    body.extend(open(0)); // reopen for reading
    body.extend(load_fd());
    body.extend([
        Instr::Const(Value::I32(IOV_READ)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_read),
        Instr::Drop,
        Instr::Const(Value::I32(1)), // stdout
        Instr::Const(Value::I32(IOV_ECHO)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_write),
    ]);
    let f = b.add_func(FuncType::new(vec![], vec![ValType::I32]), vec![], body);
    b.export_func("go", f);
    encode(&b.build())
}

// ---------------------------------------------------------------------
// Randomized churn plans
// ---------------------------------------------------------------------

/// Deterministic 64-bit LCG (Knuth MMIX constants): the plan is random in
/// shape but reproducible byte-for-byte across the compared runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

#[derive(Clone, Copy, PartialEq)]
enum GuestClass {
    Stateful,
    Fs,
    FuelTrap,
}

#[derive(Clone)]
enum Op {
    Open,
    Invoke(i32),
    Close,
}

struct Plan {
    /// (name, class, wasm) per tenant index.
    sessions: Vec<(String, GuestClass, Vec<u8>)>,
    /// Global operation order; per-tenant subsequences are what the
    /// differential preserves.
    ops: Vec<(usize, Op)>,
}

fn class_of(i: usize) -> GuestClass {
    match i % 3 {
        0 => GuestClass::Stateful,
        1 => GuestClass::Fs,
        _ => GuestClass::FuelTrap,
    }
}

fn build_plan(n_sessions: usize, n_ops: usize, seed: u64) -> Plan {
    let stateful = twine_minicc::compile_to_bytes(STATEFUL_SRC).expect("stateful compiles");
    let compute = twine_minicc::compile_to_bytes(COMPUTE_SRC).expect("compute compiles");
    let sessions: Vec<(String, GuestClass, Vec<u8>)> = (0..n_sessions)
        .map(|i| {
            let name = format!("tenant-{i}");
            let class = class_of(i);
            let wasm = match class {
                GuestClass::Stateful => stateful.clone(),
                GuestClass::FuelTrap => compute.clone(),
                GuestClass::Fs => {
                    let payload = format!("payload-of-{name}-{}", "x".repeat(i + 1));
                    fs_guest(&format!("state-{i}.bin"), payload.as_bytes())
                }
            };
            (name, class, wasm)
        })
        .collect();

    let mut lcg = Lcg(seed);
    let mut open = vec![false; n_sessions];
    let mut ops = Vec::with_capacity(n_ops);
    while ops.len() < n_ops {
        let i = (lcg.next() as usize) % n_sessions;
        let r = lcg.next() % 10;
        if !open[i] {
            // Arrive: a tenant (re)appears; reopening after expiry starts
            // a fresh instance and a fresh protected-fs backend.
            ops.push((i, Op::Open));
            open[i] = true;
        } else if r < 6 {
            ops.push((i, Op::Invoke((lcg.next() % 1000) as i32)));
        } else if r < 8 {
            // Idle: this tenant skips a round, so it ages toward the back
            // of the LRU order and becomes an eviction candidate.
        } else {
            // Expire.
            ops.push((i, Op::Close));
            open[i] = false;
        }
    }
    Plan { sessions, ops }
}

// ---------------------------------------------------------------------
// Differential machinery
// ---------------------------------------------------------------------

/// Everything deterministic one operation produces.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Opened(bool),
    Ok {
        values: Vec<Value>,
        exit_code: u32,
        stdout: Vec<u8>,
        wasi_calls: u64,
        meter: Meter,
        fuel_remaining: Option<u64>,
    },
    Trap(String),
    /// Protected-fs bytes recovered from the closed session's backend
    /// (`None` for non-fs tenants or when the file was never written).
    Closed(Option<Vec<u8>>),
}

fn invoke_event(res: Result<(RunReport, Vec<Value>), TwineError>) -> Event {
    match res {
        Ok((report, values)) => Event::Ok {
            values,
            exit_code: report.exit_code,
            stdout: report.stdout,
            wasi_calls: report.wasi_calls,
            meter: report.meter,
            fuel_remaining: report.fuel_remaining,
        },
        Err(e) => Event::Trap(e.to_string()),
    }
}

/// Read a session's protected file back through its reclaimed backend.
fn file_state(backend: &mut dyn twine_wasi::FsBackend, path: &str) -> Option<Vec<u8>> {
    let mut f = backend.open(path, false, false).ok()?;
    let size = f.size().ok()? as usize;
    let mut buf = vec![0u8; size];
    let mut read = 0;
    while read < size {
        let n = f.read(&mut buf[read..]).ok()?;
        if n == 0 {
            break;
        }
        read += n;
    }
    Some(buf)
}

fn close_event(
    backend: Option<Box<dyn twine_wasi::FsBackend>>,
    class: GuestClass,
    i: usize,
) -> Event {
    let bytes = backend.and_then(|mut b| {
        (class == GuestClass::Fs)
            .then(|| file_state(b.as_mut(), &format!("/data/state-{i}.bin")))
            .flatten()
    });
    Event::Closed(bytes)
}

/// Drive the plan against a sharded service under a tiny eviction budget,
/// from `clients` threads each owning a disjoint tenant subset (so every
/// tenant's op order is preserved while shards churn concurrently).
/// Returns per-tenant event sequences plus the summed control counters.
fn run_churn_sharded(
    plan: &Plan,
    shards: usize,
    clients: usize,
    control: &ControlPlane,
) -> (Vec<Vec<Event>>, twine_core::ControlStats) {
    let svc = Arc::new(
        TwineBuilder::new()
            .control_plane(control.clone())
            .build_sharded(shards),
    );
    let mut handles = Vec::new();
    for c in 0..clients {
        let svc = Arc::clone(&svc);
        let mine: Vec<usize> = (0..plan.sessions.len()).filter(|i| i % clients == c).collect();
        let ops: Vec<(usize, Op)> = plan
            .ops
            .iter()
            .filter(|(i, _)| mine.contains(i))
            .cloned()
            .collect();
        let sessions: Vec<(String, GuestClass, Vec<u8>)> = plan.sessions.clone();
        handles.push(std::thread::spawn(move || {
            let mut seqs: Vec<(usize, Vec<Event>)> = mine.iter().map(|&i| (i, Vec::new())).collect();
            let at = |i: usize| mine.iter().position(|&m| m == i).expect("own tenant");
            for (i, op) in &ops {
                let (name, class, wasm) = &sessions[*i];
                let ev = match op {
                    Op::Open => {
                        let ok = svc.open_session(name, wasm).is_ok();
                        if ok && *class == GuestClass::FuelTrap {
                            svc.set_session_fuel(name, Some(TRAP_FUEL)).expect("fuel");
                        }
                        Event::Opened(ok)
                    }
                    Op::Invoke(x) => {
                        let (func, args) = match class {
                            GuestClass::Stateful => ("step", vec![Value::I32(*x)]),
                            GuestClass::FuelTrap => ("run", vec![Value::I32(*x)]),
                            GuestClass::Fs => ("go", vec![]),
                        };
                        invoke_event(svc.invoke_with_report(name, func, &args))
                    }
                    Op::Close => close_event(
                        svc.close_session(name).expect("shard alive"),
                        *class,
                        *i,
                    ),
                };
                seqs[at(*i)].1.push(ev);
            }
            seqs
        }));
    }
    let mut seqs: Vec<Vec<Event>> = vec![Vec::new(); plan.sessions.len()];
    for h in handles {
        for (i, seq) in h.join().expect("client thread") {
            seqs[i] = seq;
        }
    }
    let stats = svc.control_stats();
    // Drain still-open tenants so both runs end fully closed.
    for (i, (name, class, _)) in plan.sessions.iter().enumerate() {
        if let Ok(Some(b)) = svc.close_session(name) {
            seqs[i].push(close_event(Some(b), *class, i));
        }
    }
    (seqs, stats)
}

/// The unbounded single-threaded oracle: same global op order, no control
/// plane at all — nothing is ever parked, preempted or rejected.
fn run_churn_single(plan: &Plan) -> Vec<Vec<Event>> {
    let mut svc: TwineService = TwineBuilder::new().build_service();
    let mut seqs: Vec<Vec<Event>> = vec![Vec::new(); plan.sessions.len()];
    for (i, op) in &plan.ops {
        let (name, class, wasm) = &plan.sessions[*i];
        let ev = match op {
            Op::Open => {
                let ok = svc.open_session(name, wasm).is_ok();
                if ok && *class == GuestClass::FuelTrap {
                    svc.set_session_fuel(name, Some(TRAP_FUEL)).expect("fuel");
                }
                Event::Opened(ok)
            }
            Op::Invoke(x) => {
                let (func, args) = match class {
                    GuestClass::Stateful => ("step", vec![Value::I32(*x)]),
                    GuestClass::FuelTrap => ("run", vec![Value::I32(*x)]),
                    GuestClass::Fs => ("go", vec![]),
                };
                invoke_event(svc.invoke_with_report(name, func, &args))
            }
            Op::Close => close_event(svc.close_session(name), *class, *i),
        };
        seqs[*i].push(ev);
    }
    for (i, (name, class, _)) in plan.sessions.iter().enumerate() {
        if let Some(b) = svc.close_session(name) {
            seqs[i].push(close_event(Some(b), *class, i));
        }
    }
    seqs
}

fn assert_churn_matches(shards: usize, clients: usize, seed: u64) -> twine_core::ControlStats {
    assert_churn_matches_with(shards, clients, seed, None)
}

/// The same differential with instance pooling enabled: parks seal only
/// the delta against the shared base image and restores patch a pooled
/// slot — none of which may be observable in any tenant's event stream.
fn assert_churn_matches_pooled(
    shards: usize,
    clients: usize,
    seed: u64,
) -> twine_core::ControlStats {
    let stats = assert_churn_matches_with(shards, clients, seed, Some(4));
    assert!(
        stats.pool_hits > 0,
        "budget-1 churn must recycle pooled slots: {stats:?}"
    );
    assert!(
        stats.delta_sealed_bytes > 0 && stats.delta_sealed_bytes <= stats.sealed_bytes,
        "pooled parks seal deltas, counted inside sealed_bytes: {stats:?}"
    );
    // Every guest here is poolable (minicc emits no start function), so
    // every park crossed the boundary as a delta, and deltas of these
    // small working sets are far below the 64 KiB+ full images.
    assert_eq!(
        stats.delta_sealed_bytes, stats.sealed_bytes,
        "all tenants are poolable, so all seal traffic is delta traffic"
    );
    assert!(
        stats.parks == 0 || stats.sealed_bytes / stats.parks < 64 * 1024,
        "mean sealed park must be smaller than one full memory image: {stats:?}"
    );
    assert_eq!(
        stats.pool_discards, 0,
        "without fault injection no pooled slot is ever corrupt: {stats:?}"
    );
    stats
}

fn assert_churn_matches_with(
    shards: usize,
    clients: usize,
    seed: u64,
    pool: Option<usize>,
) -> twine_core::ControlStats {
    let plan = build_plan(9, 120, seed);
    let control = ControlPlane {
        // Tiny eviction budget: at most one live session per shard, so
        // almost every warm invoke restores a parked session and parks
        // another — maximal churn through the seal path.
        max_live_sessions: Some(1),
        pool_slots_per_module: pool,
        ..ControlPlane::default()
    };
    let (sharded, stats) = run_churn_sharded(&plan, shards, clients, &control);
    let single = run_churn_single(&plan);
    for (i, (name, class, _)) in plan.sessions.iter().enumerate() {
        assert_eq!(
            sharded[i], single[i],
            "per-tenant event sequence diverged for {name} \
             (class {:?}, {shards} shards, eviction budget 1)",
            match class {
                GuestClass::Stateful => "stateful",
                GuestClass::Fs => "fs",
                GuestClass::FuelTrap => "fuel-trap",
            }
        );
    }
    // The battery exercised what it claims: traps happened, fs bytes
    // compared non-empty somewhere, and every parked session that was
    // invoked again was restored.
    assert!(
        sharded.iter().flatten().any(|e| matches!(e, Event::Trap(t) if t.contains("out of fuel"))),
        "fuel-trap tenants must trap under churn"
    );
    assert!(
        sharded
            .iter()
            .flatten()
            .any(|e| matches!(e, Event::Closed(Some(b)) if !b.is_empty())),
        "at least one fs tenant must leave protected-file bytes to compare"
    );
    assert!(stats.restores <= stats.parks, "cannot restore more than was parked");
    assert_eq!(stats.sealed_bytes > 0, stats.parks > 0);
    stats
}

// ---------------------------------------------------------------------
// The tests
// ---------------------------------------------------------------------

#[test]
fn churn_1_shard_bit_identical_to_unbounded_replay() {
    let stats = assert_churn_matches(1, 1, 0x5eed_0001);
    // One shard, nine tenants, budget one: parking is guaranteed.
    assert!(stats.parks > 0, "eviction budget 1 must park: {stats:?}");
    assert!(stats.restores > 0, "parked tenants were invoked again: {stats:?}");
    assert!(stats.sealed_bytes > 0 && stats.unsealed_bytes > 0);
}

#[test]
fn churn_4_shards_bit_identical_to_unbounded_replay() {
    assert_churn_matches(4, 3, 0x5eed_0004);
}

#[test]
fn churn_8_shards_bit_identical_to_unbounded_replay() {
    assert_churn_matches(8, 4, 0x5eed_0008);
}

#[test]
fn pooled_churn_1_shard_bit_identical_to_unbounded_replay() {
    let stats = assert_churn_matches_pooled(1, 1, 0x5eed_1001);
    assert!(stats.parks > 0 && stats.restores > 0, "{stats:?}");
    assert!(stats.dirty_pages_restored > 0, "delta restores patch pages: {stats:?}");
}

#[test]
fn pooled_churn_4_shards_bit_identical_to_unbounded_replay() {
    assert_churn_matches_pooled(4, 3, 0x5eed_1004);
}

#[test]
fn pooled_churn_8_shards_bit_identical_to_unbounded_replay() {
    assert_churn_matches_pooled(8, 4, 0x5eed_1008);
}

/// Pooled and unpooled runs of the same plan must produce the same
/// per-tenant event streams as each other (both are already checked
/// against the unbounded oracle; this pins the seal-traffic relation
/// between the two modes on identical work).
#[test]
fn pooled_seal_traffic_is_a_fraction_of_full_image_traffic() {
    let plan = build_plan(9, 120, 0x5eed_2002);
    let control_full = ControlPlane {
        max_live_sessions: Some(1),
        ..ControlPlane::default()
    };
    let control_pooled = ControlPlane {
        pool_slots_per_module: Some(4),
        ..control_full.clone()
    };
    let (seq_full, full) = run_churn_sharded(&plan, 4, 3, &control_full);
    let (seq_pooled, pooled) = run_churn_sharded(&plan, 4, 3, &control_pooled);
    for (i, (name, _, _)) in plan.sessions.iter().enumerate() {
        assert_eq!(seq_full[i], seq_pooled[i], "pooling changed {name}'s events");
    }
    assert!(full.parks > 0 && pooled.parks > 0);
    // ISSUE acceptance: delta seal traffic ≤ 10% of full-image traffic
    // per park (these guests dirty a handful of pages out of 16+).
    assert!(
        pooled.sealed_bytes / pooled.parks <= (full.sealed_bytes / full.parks) / 10,
        "mean delta park not <=10% of mean full-image park: \
         pooled {}/{} vs full {}/{}",
        pooled.sealed_bytes,
        pooled.parks,
        full.sealed_bytes,
        full.parks
    );
    assert!(pooled.pool_misses + pooled.pool_hits > 0);
}

/// Explicit park → invoke (auto-restore) → park cycles: guest state
/// (the order-sensitive accumulator) survives every crossing of the seal
/// boundary, and the control counters account each crossing.
#[test]
fn park_restore_park_cycles_preserve_state() {
    let wasm = twine_minicc::compile_to_bytes(STATEFUL_SRC).unwrap();
    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("s", &wasm).unwrap();
    let mut expect = 0i32;
    for (k, x) in [5i32, -2, 11, 7, 0, 3, 42, -9].into_iter().enumerate() {
        svc.park_session("s").expect("park");
        assert_eq!(svc.session_parked("s"), Some(true));
        // Parking is idempotent.
        svc.park_session("s").expect("re-park is a no-op");
        expect = expect.wrapping_mul(31).wrapping_add(x);
        let out = svc.invoke("s", "step", &[Value::I32(x)]).expect("invoke restores");
        assert_eq!(out[0], Value::I32(expect), "state lost at cycle {k}");
        assert_eq!(svc.session_parked("s"), Some(false));
    }
    let stats = svc.control_stats();
    assert_eq!(stats.parks, 8);
    assert_eq!(stats.restores, 8);
    assert!(stats.sealed_bytes >= stats.parks * 64 * 1024, "whole memory image sealed");
    assert_eq!(stats.live_sessions, 1);
    assert_eq!(stats.parked_sessions, 0);
    // The boundary accounting is real: seal traffic landed on the
    // enclave's OCALL byte counters.
    assert!(svc.enclave().stats().boundary_bytes >= stats.sealed_bytes);
}

/// The pooled counterpart of the cycle test above: state still survives
/// every crossing, but each sealed park is a delta (the stateful guest
/// dirties a few pages at most), the recycled instance comes back through
/// the pool, and cold opens after the first hit pre-instantiated slots.
#[test]
fn pooled_park_restore_cycles_preserve_state_with_delta_seals() {
    let wasm = twine_minicc::compile_to_bytes(STATEFUL_SRC).unwrap();
    let mut svc = TwineBuilder::new().pool_slots_per_module(2).build_service();
    svc.open_session("s", &wasm).unwrap();
    let mut expect = 0i32;
    for (k, x) in [5i32, -2, 11, 7, 0, 3, 42, -9].into_iter().enumerate() {
        svc.park_session("s").expect("park");
        assert_eq!(svc.session_parked("s"), Some(true));
        expect = expect.wrapping_mul(31).wrapping_add(x);
        let out = svc.invoke("s", "step", &[Value::I32(x)]).expect("invoke restores");
        assert_eq!(out[0], Value::I32(expect), "state lost at pooled cycle {k}");
    }
    let stats = svc.control_stats();
    assert_eq!(stats.parks, 8);
    assert_eq!(stats.restores, 8);
    // Every park sealed a delta, and every delta is tiny next to the
    // 64 KiB+ full image the unpooled path would seal.
    assert_eq!(stats.delta_sealed_bytes, stats.sealed_bytes);
    assert!(
        stats.sealed_bytes < stats.parks * 8 * 1024,
        "deltas must stay well under the full image: {stats:?}"
    );
    assert!(stats.dirty_pages_restored > 0);
    // Park recycles the instance into the pool; the following restore
    // checks it back out: 8 restores = 8 pool hits, and the very first
    // open was the only instantiation this session ever needed.
    assert_eq!(stats.pool_hits, 8);
    assert_eq!(stats.pool_misses, 1);
    // No fault plan installed: nothing injected, nothing discarded,
    // nothing retried behind the scenes.
    assert_eq!(stats.pool_discards, 0);
    assert_eq!(stats.faults_injected, 0);
    assert_eq!(stats.retries, 0);
}

/// Opening a second session of the same module after the first closed
/// reuses the pooled slot — the cold open becomes a checkout.
#[test]
fn close_recycles_instance_for_next_open() {
    let wasm = twine_minicc::compile_to_bytes(STATEFUL_SRC).unwrap();
    let mut svc = TwineBuilder::new().pool_slots_per_module(2).build_service();
    svc.open_session("a", &wasm).unwrap();
    assert_eq!(svc.invoke("a", "step", &[Value::I32(3)]).unwrap()[0], Value::I32(3));
    svc.close_session("a");
    assert_eq!(svc.pooled_slot_count(), 1, "close parks the slot");
    svc.open_session("b", &wasm).unwrap();
    // "b" starts from the pristine base image, not "a"'s accumulator.
    assert_eq!(svc.invoke("b", "step", &[Value::I32(7)]).unwrap()[0], Value::I32(7));
    let stats = svc.control_stats();
    assert_eq!(stats.pool_hits, 1);
    assert_eq!(stats.pool_misses, 1);
}

/// Eviction racing the in-flight invoke: with an eviction budget of one,
/// every invoke of tenant B restores B and parks A (and vice versa) *as
/// part of the invoke itself* — the in-flight session is never its own
/// victim, and both tenants' state streams stay exact.
#[test]
fn eviction_races_in_flight_invoke_without_corruption() {
    let wasm = twine_minicc::compile_to_bytes(STATEFUL_SRC).unwrap();
    let mut svc = TwineBuilder::new().max_live_sessions(1).build_service();
    svc.open_session("a", &wasm).unwrap();
    svc.open_session("b", &wasm).unwrap();
    let (mut ea, mut eb) = (0i32, 0i32);
    for k in 0..24i32 {
        ea = ea.wrapping_mul(31).wrapping_add(k);
        assert_eq!(
            svc.invoke("a", "step", &[Value::I32(k)]).unwrap()[0],
            Value::I32(ea)
        );
        eb = eb.wrapping_mul(31).wrapping_add(-k);
        assert_eq!(
            svc.invoke("b", "step", &[Value::I32(-k)]).unwrap()[0],
            Value::I32(eb)
        );
        // The budget holds after every call: at most one live.
        assert!(svc.live_session_count() <= 1);
        assert_eq!(svc.session_count(), 2);
    }
    let stats = svc.control_stats();
    assert!(stats.parks >= 47, "every alternation parks the peer: {stats:?}");
    // Opening "b" parked "a" before "a" was ever restored, so parks lead
    // restores by exactly the one session parked at the end.
    assert_eq!(stats.parks, stats.restores + 1);
}
