//! Contention regressions for ROADMAP open item 1 (the shard-scaling
//! serialisation bug): the hot warm-invocation path must not serialise on
//! the global EPC mutex or on a single clock cache line.
//!
//! The instrumented assertions here pin the *shape* of the fix, not a
//! timing: a warm invocation folds its whole buffered page-transition
//! stream under **O(1)** global-mutex acquisitions (PR 5 took the mutex
//! once per page transition), stats/configure reads take none at all, and
//! the striped clock stays exact and watermark-unique under concurrent
//! folds.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use proptest::prelude::*;
use twine_core::runtime::advance_watermark;
use twine_core::TwineBuilder;
use twine_sgx::SimClock;
use twine_wasm::Value;

/// PolyBench-flavoured guest with deliberately poor locality: the
/// transposed read walks a column per element, so successive accesses sit
/// on different 4 KiB pages and the interpreter's page sink sees
/// thousands of transitions per call.
const CHURN_SRC: &str = "
    double A[96][96];
    int churn(int seed) {
        for (int i = 0; i < 96; i += 1) {
            for (int j = 0; j < 96; j += 1) {
                A[i][j] = (double)((i * 31 + j * 7 + seed) % 97);
            }
        }
        double acc = 0.0;
        for (int i = 0; i < 96; i += 1) {
            for (int j = 0; j < 96; j += 1) {
                acc += A[i][j] * A[j][i];
            }
        }
        int out = (int)acc;
        return out % 65536;
    }
";

/// A warm invocation's EPC accounting must cost O(1) global-mutex
/// acquisitions — one fold of the buffered transition stream — however
/// many page transitions the guest performed. PR 5 locked the pool once
/// per transition, which serialised every shard on one mutex.
#[test]
fn warm_invocation_folds_epc_in_o1_lock_acquisitions() {
    let mut svc = TwineBuilder::new().build_service();
    let wasm = twine_minicc::compile_to_bytes(CHURN_SRC).expect("guest compiles");
    svc.open_session("tenant", &wasm).expect("open");
    let epc = svc.enclave().epc();
    assert!(epc.is_enabled(), "EPC live in the default (Hardware) mode");

    // Warm-up, then measure two invocations independently: the acquisition
    // cost must be a small constant per call, not proportional to the
    // guest's page traffic.
    svc.invoke("tenant", "churn", &[Value::I32(1)]).expect("warm-up");
    for seed in 2..4 {
        let acq0 = epc.mutex_acquisitions();
        let (report, _) = svc
            .invoke_with_report("tenant", "churn", &[Value::I32(seed)])
            .expect("warm call");
        let acq = epc.mutex_acquisitions() - acq0;
        assert!(
            report.meter.page_transitions > 1_000,
            "guest must actually churn pages (saw {})",
            report.meter.page_transitions
        );
        assert!(
            acq <= 8,
            "warm invocation took {acq} EPC mutex acquisitions for {} page \
             transitions — accounting has regressed to per-transition locking",
            report.meter.page_transitions
        );
        assert!(
            report.epc.hits + report.epc.faults > 0,
            "paging was really accounted"
        );
    }
}

/// Snapshot and configuration paths never touch the global EPC mutex:
/// `stats`, `reset_stats`, `set_enabled` and `resident_pages` are served
/// by the lock-free mirrors.
#[test]
fn epc_stats_and_config_paths_are_lock_free() {
    let svc = TwineBuilder::new().build_sharded(2);
    let epc = svc.enclave().epc();
    let acq0 = epc.mutex_acquisitions();
    for _ in 0..100 {
        let _ = epc.stats();
        let _ = epc.resident_pages();
        let _ = epc.is_enabled();
    }
    epc.set_enabled(false);
    epc.set_enabled(true);
    epc.reset_stats();
    assert_eq!(
        epc.mutex_acquisitions() - acq0,
        0,
        "stats/configure took the global EPC mutex"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The striped clock and the watermark CAS compose: threads that
    /// interleave clock charges (landing on per-thread stripes) with
    /// `advance_watermark` reads of the folded total still observe
    /// strictly increasing, globally unique trusted time, and no charge
    /// is ever lost (the folded total is the exact sum).
    #[test]
    fn watermarks_stay_unique_over_striped_clock(
        charges in proptest::collection::vec(1u64..1_000, 8..48),
        threads in 2usize..6,
    ) {
        let clock = SimClock::new();
        let watermark = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let clock = clock.clone();
                let watermark = Arc::clone(&watermark);
                let charges = charges.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::with_capacity(charges.len());
                    for (k, &c) in charges.iter().enumerate() {
                        // Skew per thread so host samples disagree.
                        clock.add_cycles(c + (t as u64) * (k as u64 % 3));
                        seen.push(advance_watermark(&watermark, clock.cycles()));
                    }
                    seen
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut expected_total = 0u64;
        for (t, h) in handles.into_iter().enumerate() {
            let seen = h.join().expect("thread");
            prop_assert!(
                seen.windows(2).all(|w| w[0] < w[1]),
                "per-thread watermarks must be strictly increasing: {seen:?}"
            );
            all.extend(seen);
            expected_total += charges
                .iter()
                .enumerate()
                .map(|(k, &c)| c + (t as u64) * (k as u64 % 3))
                .sum::<u64>();
        }
        // Exactness: no stripe lost a charge.
        prop_assert_eq!(clock.cycles(), expected_total);
        // Uniqueness: each CAS win moves the watermark strictly up.
        all.sort_unstable();
        let len_before = all.len();
        all.dedup();
        prop_assert_eq!(all.len(), len_before, "no two observers share a tick");
    }
}
