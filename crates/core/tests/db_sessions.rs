//! DB-as-a-service battery (DESIGN.md §13): multi-tenant isolation and
//! the churn differential for tenant database sessions.
//!
//! Two properties, mirroring what `churn.rs`/`chaos.rs` prove for Wasm
//! sessions:
//!
//! * **Isolation** — a tenant's session can never observe another
//!   tenant's rows or files: every session owns a private protected
//!   backend, and the database file inside it is invisible to every
//!   other session (checked at the SQL surface *and* at the backend
//!   file level).
//! * **Churn differential** — a deterministic multi-tenant SQL workload
//!   driven through [`ShardedService`] under a live-session budget of 1
//!   (so every statement may evict someone, and parked sessions restore
//!   transparently mid-workload) replays **bit-identically** to an
//!   unbounded single-threaded oracle, at 1/4/8 shards, with and
//!   without the chaos fault plan armed at every trust-boundary
//!   crossing.
//!
//! Plus crash recovery: a durably-parked DB session survives a simulated
//! enclave restart through [`TwineService::recover`] with its rows
//! intact.

use std::sync::Arc;

use twine_core::{
    ControlPlane, ControlStats, DurableParkStore, ShardedService, TwineBuilder, TwineService,
};
use twine_sgx::{FaultConfig, FaultPlan, Processor};
use twine_sqldb::backend_vfs::BackendVfs;
use twine_sqldb::value::{Row, SqlValue};
use twine_sqldb::Connection;

/// The chaos battery's seeded fault plan (the fig8 CI seed).
const FAULT_SEED: u64 = 20_260_808;

// ---------------------------------------------------------------------
// Deterministic multi-tenant workload plan
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Exec(String),
    Batch(Vec<String>),
    Query(String),
    Park,
}

/// One guest-visible outcome; the differential compares these streams.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Affected(u64),
    Rows(Vec<Row>),
    Parked,
}

struct Plan {
    tenants: Vec<String>,
    /// `(tenant index, op)` in oracle order; per-tenant order is what the
    /// sharded clients preserve.
    ops: Vec<(usize, Op)>,
}

/// A mixed deterministic workload: autocommitted inserts, explicit
/// BEGIN/COMMIT transaction batches, range and aggregate queries, and
/// explicit parks — interleaved round-robin across tenants.
fn build_plan(tenants: usize, rounds: usize) -> Plan {
    let names: Vec<String> = (0..tenants).map(|i| format!("db-{i}")).collect();
    let mut ops = Vec::new();
    for i in 0..tenants {
        ops.push((
            i,
            Op::Exec("CREATE TABLE kv(a INTEGER, b INTEGER, c TEXT)".into()),
        ));
    }
    for j in 0..rounds {
        for i in 0..tenants {
            let op = match (i * 7 + j * 3) % 8 {
                0..=2 => Op::Exec(format!(
                    "INSERT INTO kv VALUES({j}, {}, 'v{i}_{j}')",
                    i as i64 * 1000 + j as i64
                )),
                3 => Op::Batch(vec![
                    "BEGIN".into(),
                    format!("INSERT INTO kv VALUES({}, {i}, 'tx{i}_{j}')", 100_000 + j),
                    format!("UPDATE kv SET b = b + 1 WHERE a = {j}"),
                    "COMMIT".into(),
                ]),
                4..=5 => Op::Query(format!("SELECT a, b, c FROM kv WHERE a <= {j}")),
                6 => Op::Query("SELECT count(*) FROM kv".into()),
                _ => Op::Park,
            };
            ops.push((i, op));
        }
    }
    Plan {
        tenants: names,
        ops,
    }
}

fn apply_single(svc: &mut TwineService, name: &str, op: &Op) -> Event {
    match op {
        Op::Exec(sql) => Event::Affected(svc.db_execute(name, sql).expect("oracle exec")),
        Op::Batch(stmts) => {
            Event::Affected(svc.db_execute_batch(name, stmts).expect("oracle batch"))
        }
        Op::Query(sql) => Event::Rows(svc.db_query(name, sql).expect("oracle query")),
        Op::Park => {
            svc.db_park_session(name).expect("oracle park");
            Event::Parked
        }
    }
}

fn apply_sharded(svc: &ShardedService, name: &str, op: &Op) -> Event {
    match op {
        Op::Exec(sql) => Event::Affected(svc.db_execute(name, sql).expect("sharded exec")),
        Op::Batch(stmts) => Event::Affected(
            svc.db_execute_batch(name, stmts.clone())
                .expect("sharded batch"),
        ),
        Op::Query(sql) => Event::Rows(svc.db_query(name, sql).expect("sharded query")),
        Op::Park => {
            svc.db_park_session(name).expect("sharded park");
            Event::Parked
        }
    }
}

/// The unbounded, unfaulted, single-threaded oracle.
fn run_oracle(plan: &Plan) -> Vec<Vec<Event>> {
    let mut svc = TwineBuilder::new().build_service();
    let mut seqs: Vec<Vec<Event>> = vec![Vec::new(); plan.tenants.len()];
    for name in &plan.tenants {
        svc.db_open_session(name).expect("oracle open");
    }
    for (i, op) in &plan.ops {
        seqs[*i].push(apply_single(&mut svc, &plan.tenants[*i], op));
    }
    seqs
}

/// Drive the plan through a sharded fleet under a live-session budget of
/// 1 (maximal eviction churn), from `clients` threads owning disjoint
/// tenant subsets, optionally with the chaos fault plan armed.
fn run_sharded_churn(
    plan: &Plan,
    shards: usize,
    clients: usize,
    fault_seed: Option<u64>,
) -> (Vec<Vec<Event>>, ControlStats) {
    let control = ControlPlane {
        max_live_sessions: Some(1),
        ..ControlPlane::default()
    };
    let mut builder = TwineBuilder::new().control_plane(control);
    if let Some(seed) = fault_seed {
        builder = builder.faults(Arc::new(FaultPlan::new(FaultConfig::chaos(seed))));
    }
    let svc = Arc::new(builder.build_sharded(shards));
    for name in &plan.tenants {
        svc.db_open_session(name).expect("sharded open");
    }
    let mut handles = Vec::new();
    for c in 0..clients {
        let svc = Arc::clone(&svc);
        let mine: Vec<usize> = (0..plan.tenants.len()).filter(|i| i % clients == c).collect();
        let ops: Vec<(usize, Op)> = plan
            .ops
            .iter()
            .filter(|(i, _)| mine.contains(i))
            .cloned()
            .collect();
        let tenants = plan.tenants.clone();
        handles.push(std::thread::spawn(move || {
            let mut seqs: Vec<(usize, Vec<Event>)> =
                mine.iter().map(|&i| (i, Vec::new())).collect();
            let at = |i: usize| mine.iter().position(|&m| m == i).expect("own tenant");
            for (i, op) in &ops {
                let ev = apply_sharded(&svc, &tenants[*i], op);
                seqs[at(*i)].1.push(ev);
            }
            seqs
        }));
    }
    let mut seqs: Vec<Vec<Event>> = vec![Vec::new(); plan.tenants.len()];
    for h in handles {
        for (i, seq) in h.join().expect("client thread") {
            seqs[i] = seq;
        }
    }
    let stats = svc.control_stats();
    (seqs, stats)
}

fn assert_churn_matches(shards: usize, clients: usize, fault_seed: Option<u64>) -> ControlStats {
    // Enough tenants that every shard holds several DB sessions — the
    // eviction budget of 1 then forces continuous park/restore churn.
    let tenants = (2 * shards).max(6);
    let plan = build_plan(tenants, 12);
    let (churned, stats) = run_sharded_churn(&plan, shards, clients, fault_seed);
    let oracle = run_oracle(&plan);
    for (i, name) in plan.tenants.iter().enumerate() {
        assert_eq!(
            churned[i], oracle[i],
            "per-tenant SQL stream diverged for {name} \
             ({shards} shards, eviction budget 1, faults {fault_seed:?})"
        );
    }
    assert!(
        stats.parks > tenants as u64,
        "budget-1 churn must evict beyond the explicit parks: {stats:?}"
    );
    assert!(stats.restores > 0, "parked sessions must restore: {stats:?}");
    // Note: under an eviction budget of 1 nearly every statement follows
    // a park that closed the connection — and with it its plan cache — so
    // cache hits are *not* asserted here (the cache's warm-path behaviour
    // is covered by `stmt_cache_stats_survive_park_and_restore`).
    assert_eq!(stats.quarantines, 0, "no session may be damaged: {stats:?}");
    stats
}

// ---------------------------------------------------------------------
// Churn differentials (1 / 4 / 8 shards, then under the fault seed)
// ---------------------------------------------------------------------

#[test]
fn db_churn_single_shard_is_bit_identical() {
    assert_churn_matches(1, 1, None);
}

#[test]
fn db_churn_four_shards_is_bit_identical() {
    assert_churn_matches(4, 3, None);
}

#[test]
fn db_churn_eight_shards_is_bit_identical() {
    assert_churn_matches(8, 4, None);
}

#[test]
fn db_churn_under_chaos_faults_is_bit_identical() {
    let stats = assert_churn_matches(4, 3, Some(FAULT_SEED));
    assert!(
        stats.faults_injected > 0,
        "the seeded chaos schedule must actually fire: {stats:?}"
    );
    assert!(
        stats.retries > 0,
        "transient faults must be absorbed by retries: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// Multi-tenant isolation
// ---------------------------------------------------------------------

/// Tenant A's statements can never observe tenant B's rows — at the SQL
/// surface (B's tables don't exist for A) and at the file level (each
/// session's database lives in its own private backend).
#[test]
fn tenants_never_observe_each_other() {
    let mut svc = TwineBuilder::new().build_service();
    svc.db_open_session("alice").expect("open alice");
    svc.db_open_session("bob").expect("open bob");

    svc.db_execute("alice", "CREATE TABLE secret(x INTEGER)").expect("ddl");
    svc.db_execute_batch(
        "alice",
        &[
            "BEGIN".into(),
            "INSERT INTO secret VALUES(1)".into(),
            "INSERT INTO secret VALUES(2)".into(),
            "COMMIT".into(),
        ],
    )
    .expect("alice insert");

    // Bob's namespace has no `secret` table at all — Alice's schema is
    // invisible, not merely empty.
    assert!(
        svc.db_query("bob", "SELECT x FROM secret").is_err(),
        "bob must not see alice's table"
    );

    // Same-named tables are fully independent.
    svc.db_execute("bob", "CREATE TABLE secret(x INTEGER)").expect("ddl");
    svc.db_execute("bob", "INSERT INTO secret VALUES(99)").expect("bob insert");
    let bob = svc.db_query("bob", "SELECT x FROM secret").expect("bob query");
    assert_eq!(bob, vec![vec![SqlValue::Int(99)]]);
    let alice = svc.db_query("alice", "SELECT x FROM secret").expect("alice query");
    assert_eq!(alice, vec![vec![SqlValue::Int(1)], vec![SqlValue::Int(2)]]);

    // Parking Alice (sealing her database out of the enclave) leaves Bob
    // untouched, and Alice restores to exactly her own rows.
    svc.db_park_session("alice").expect("park alice");
    assert_eq!(svc.db_session_parked("alice"), Some(true));
    let bob = svc.db_query("bob", "SELECT x FROM secret").expect("bob query");
    assert_eq!(bob, vec![vec![SqlValue::Int(99)]]);
    let alice = svc.db_query("alice", "SELECT x FROM secret").expect("alice restore");
    assert_eq!(alice, vec![vec![SqlValue::Int(1)], vec![SqlValue::Int(2)]]);

    // File level: each tenant's database is a different file in a
    // different private backend — reopening each returned backend shows
    // only that tenant's rows.
    let alice_backend = svc.db_close_session("alice").expect("close alice");
    let bob_backend = svc.db_close_session("bob").expect("close bob");
    for (backend, want) in [
        (alice_backend, vec![vec![SqlValue::Int(1)], vec![SqlValue::Int(2)]]),
        (bob_backend, vec![vec![SqlValue::Int(99)]]),
    ] {
        let vfs = BackendVfs::from_shared(backend);
        let mut conn =
            Connection::open(Box::new(vfs), "/data/tenant.db").expect("reopen backend");
        let rows = conn.execute("SELECT x FROM secret").expect("reopen query").rows;
        assert_eq!(rows, want, "backend carries exactly its own tenant's rows");
    }
}

/// DB sessions share the Wasm sessions' name space: a name collision is
/// rejected in both directions.
#[test]
fn db_and_wasm_sessions_share_a_namespace() {
    let wasm = twine_minicc::compile_to_bytes("int f(int x) { return x + 1; }").unwrap();
    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("t", &wasm).expect("wasm open");
    assert!(svc.db_open_session("t").is_err(), "db open must collide");
    svc.db_open_session("u").expect("db open");
    assert!(svc.open_session("u", &wasm).is_err(), "wasm open must collide");
}

// ---------------------------------------------------------------------
// Plan-cache counters across the session lifecycle
// ---------------------------------------------------------------------

/// Per-session plan-cache counters accumulate across park/restore cycles
/// (the park folds the closed connection's counters into the session).
#[test]
fn stmt_cache_stats_survive_park_and_restore() {
    let mut svc = TwineBuilder::new().build_service();
    svc.db_open_session("t").expect("open");
    svc.db_execute("t", "CREATE TABLE kv(a INTEGER)").expect("ddl");
    for _ in 0..5 {
        svc.db_query("t", "SELECT count(*) FROM kv").expect("query");
    }
    let before = svc.db_stmt_cache_stats("t").expect("stats");
    assert!(before.hits >= 4, "repeated text must hit: {before:?}");

    svc.db_park_session("t").expect("park");
    let parked = svc.db_stmt_cache_stats("t").expect("stats while parked");
    assert_eq!(parked.hits, before.hits, "folded counters survive the park");

    svc.db_query("t", "SELECT count(*) FROM kv").expect("restore query");
    let after = svc.db_stmt_cache_stats("t").expect("stats after restore");
    assert!(
        after.hits + after.misses > parked.hits + parked.misses,
        "post-restore statements keep accumulating: {after:?}"
    );
    let control = svc.control_stats();
    assert!(control.db_statements > 0);
    assert!(control.stmt_cache_hits >= before.hits);
}

// ---------------------------------------------------------------------
// Crash recovery for durably-parked DB sessions
// ---------------------------------------------------------------------

/// A durably-parked DB session survives a simulated enclave crash: the
/// revived service rebuilds the tenant's protected backend from the
/// sealed manifest and its first statement serves exactly the parked
/// rows.
#[test]
fn durable_db_park_recovers_after_crash() {
    let store = DurableParkStore::new();
    let processor = Processor::new(21);
    let control = ControlPlane {
        durable_parks: Some(store.clone()),
        ..ControlPlane::default()
    };

    let mut svc = TwineBuilder::new()
        .processor(processor.clone())
        .control_plane(control.clone())
        .build_service();
    svc.db_open_session("t").expect("open");
    svc.db_execute("t", "CREATE TABLE kv(a INTEGER, c TEXT)").expect("ddl");
    svc.db_execute_batch(
        "t",
        &[
            "BEGIN".into(),
            "INSERT INTO kv VALUES(1, 'one')".into(),
            "INSERT INTO kv VALUES(2, 'two')".into(),
            "COMMIT".into(),
        ],
    )
    .expect("insert");
    svc.db_park_session("t").expect("park");
    assert_eq!(store.record_count(), 1, "the park wrote a durable record");

    // Crash: only the processor and the untrusted record store survive.
    drop(svc);

    let mut revived = TwineBuilder::new()
        .processor(processor)
        .control_plane(control)
        .build_service();
    let recovered = revived.recover().expect("recovery succeeds");
    assert_eq!(recovered, vec!["t".to_string()]);
    assert_eq!(revived.control_stats().recovered_sessions, 1);
    assert_eq!(revived.db_session_parked("t"), Some(true));
    let rows = revived.db_query("t", "SELECT a, c FROM kv").expect("query after recover");
    assert_eq!(
        rows,
        vec![
            vec![SqlValue::Int(1), SqlValue::Text("one".into())],
            vec![SqlValue::Int(2), SqlValue::Text("two".into())],
        ]
    );
    // The recovered session is a full citizen: it parks durably again.
    revived.db_park_session("t").expect("re-park");
    assert_eq!(store.record_count(), 1);
    // recover() is idempotent for sessions that are already admitted.
    assert_eq!(revived.recover().expect("second recovery"), Vec::<String>::new());
}
