//! File-system backend persistence across guest runs (paper §IV-C/E): a
//! protected file written in run 1 must be readable in run 2 — including
//! when run 1 traps, and when an intervening run fails *instantiation*
//! (the error path that used to drop the `WasiCtx` and silently lose the
//! backend, leaving the next run an empty protected FS).

use twine_core::{FsChoice, TwineBuilder, TwineError};
use twine_wasm::encode::encode;
use twine_wasm::instr::{Instr, LoadKind, MemArg};
use twine_wasm::types::{FuncType, Limits, ValType, Value};
use twine_wasm::{ModuleBuilder, Trap};
use twine_wasi::WASI_MODULE;

// Guest memory layout shared by the generated modules:
//   0..    path bytes
//   256..  payload bytes (writer) / read-back buffer target (reader: 768)
//   512    iovec {256, N}   (writer: file write source)
//   528    iovec {768, N}   (reader: file read target)
//   536    iovec {768, N}   (reader: stdout echo source)
//   640    path_open out-fd
//   644    nwritten / nread scratch
const PATH_ADDR: i32 = 0;
const PAYLOAD_ADDR: i32 = 256;
const READBUF_ADDR: i32 = 768;
const IOV_WRITE: i32 = 512;
const IOV_READ: i32 = 528;
const IOV_ECHO: i32 = 536;
const OUT_FD: i32 = 640;
const SCRATCH: i32 = 644;

fn iovec(base: i32, len: usize) -> Vec<u8> {
    let mut v = (base as u32).to_le_bytes().to_vec();
    v.extend_from_slice(&(len as u32).to_le_bytes());
    v
}

fn import_wasi(b: &mut ModuleBuilder) -> (u32, u32, u32) {
    use ValType::{I32, I64};
    let path_open = b.import_func(
        WASI_MODULE,
        "path_open",
        FuncType::new(vec![I32, I32, I32, I32, I32, I64, I64, I32, I32], vec![I32]),
    );
    let fd_write = b.import_func(
        WASI_MODULE,
        "fd_write",
        FuncType::new(vec![I32, I32, I32, I32], vec![I32]),
    );
    let fd_read = b.import_func(
        WASI_MODULE,
        "fd_read",
        FuncType::new(vec![I32, I32, I32, I32], vec![I32]),
    );
    (path_open, fd_write, fd_read)
}

fn call_path_open(path_len: usize, oflags: i32, func: u32) -> Vec<Instr> {
    vec![
        Instr::Const(Value::I32(3)), // dirfd: the preopen
        Instr::Const(Value::I32(0)), // dirflags
        Instr::Const(Value::I32(PATH_ADDR)),
        Instr::Const(Value::I32(path_len as i32)),
        Instr::Const(Value::I32(oflags)),
        Instr::Const(Value::I64(-1)), // rights base: everything
        Instr::Const(Value::I64(0)),  // rights inheriting
        Instr::Const(Value::I32(0)),  // fdflags
        Instr::Const(Value::I32(OUT_FD)),
        Instr::Call(func),
        Instr::Drop,
    ]
}

fn load_fd() -> Vec<Instr> {
    vec![
        Instr::Const(Value::I32(OUT_FD)),
        Instr::Load(LoadKind::I32, MemArg { offset: 0, align: 2 }),
    ]
}

/// A guest whose `go()` opens (create|trunc) `path` and writes `payload`
/// into it, returning the `fd_write` errno. With `trap_after`, the guest
/// then executes `unreachable`.
fn writer_wasm(path: &str, payload: &[u8], trap_after: bool) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let (path_open, fd_write, _) = import_wasi(&mut b);
    b.memory(Limits::at_least(1));
    b.add_data(PATH_ADDR, path.as_bytes().to_vec());
    b.add_data(PAYLOAD_ADDR, payload.to_vec());
    b.add_data(IOV_WRITE, iovec(PAYLOAD_ADDR, payload.len()));
    let mut body = call_path_open(path.len(), 0x1 | 0x8, path_open); // create|trunc
    body.extend(load_fd());
    body.extend([
        Instr::Const(Value::I32(IOV_WRITE)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_write),
    ]);
    if trap_after {
        body.push(Instr::Unreachable);
    }
    let f = b.add_func(FuncType::new(vec![], vec![ValType::I32]), vec![], body);
    b.export_func("go", f);
    encode(&b.build())
}

/// A guest whose `go()` opens `path`, reads `len` bytes and echoes them to
/// stdout, returning the echo's errno — so the host can check the payload
/// through the captured stdout of the run report.
fn reader_wasm(path: &str, len: usize) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let (path_open, fd_write, fd_read) = import_wasi(&mut b);
    b.memory(Limits::at_least(1));
    b.add_data(PATH_ADDR, path.as_bytes().to_vec());
    b.add_data(IOV_READ, iovec(READBUF_ADDR, len));
    b.add_data(IOV_ECHO, iovec(READBUF_ADDR, len));
    let mut body = call_path_open(path.len(), 0, path_open);
    body.extend(load_fd());
    body.extend([
        Instr::Const(Value::I32(IOV_READ)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_read),
        Instr::Drop,
        Instr::Const(Value::I32(1)), // stdout
        Instr::Const(Value::I32(IOV_ECHO)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_write),
    ]);
    let f = b.add_func(FuncType::new(vec![], vec![ValType::I32]), vec![], body);
    b.export_func("go", f);
    encode(&b.build())
}

/// A module that decodes and validates but cannot be instantiated (its
/// import resolves to nothing any Twine linker provides).
fn uninstantiable_wasm() -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let imp = b.import_func("env", "no_such_host_fn", FuncType::new(vec![], vec![]));
    let f = b.add_func(FuncType::new(vec![], vec![]), vec![], vec![Instr::Call(imp)]);
    b.export_func("go", f);
    encode(&b.build())
}

const PAYLOAD: &[u8] = b"protected state, run 1";

#[test]
fn files_written_in_run1_readable_in_run2() {
    let mut twine = TwineBuilder::new().fs(FsChoice::ProtectedInMemory).build();
    let writer = twine.load_wasm(&writer_wasm("state.bin", PAYLOAD, false)).unwrap();
    let reader = twine.load_wasm(&reader_wasm("state.bin", PAYLOAD.len())).unwrap();

    let errno = twine.invoke(&writer, "go", &[]).unwrap();
    assert_eq!(errno[0], Value::I32(0), "writer errno");

    let (report, values) = twine.invoke_with_report(&reader, "go", &[]).unwrap();
    assert_eq!(values[0], Value::I32(0), "reader errno");
    assert_eq!(report.stdout, PAYLOAD, "payload survives across runs");
}

#[test]
fn files_survive_a_guest_trap() {
    let mut twine = TwineBuilder::new().fs(FsChoice::ProtectedInMemory).build();
    let writer = twine.load_wasm(&writer_wasm("state.bin", PAYLOAD, true)).unwrap();
    let reader = twine.load_wasm(&reader_wasm("state.bin", PAYLOAD.len())).unwrap();

    match twine.invoke(&writer, "go", &[]) {
        Err(TwineError::Trap(Trap::Unreachable)) => {}
        other => panic!("expected unreachable trap, got {other:?}"),
    }

    let (report, values) = twine.invoke_with_report(&reader, "go", &[]).unwrap();
    assert_eq!(values[0], Value::I32(0));
    assert_eq!(report.stdout, PAYLOAD, "payload survives the trap");
}

#[test]
fn files_survive_a_failed_instantiation() {
    let mut twine = TwineBuilder::new().fs(FsChoice::ProtectedInMemory).build();
    let writer = twine.load_wasm(&writer_wasm("state.bin", PAYLOAD, false)).unwrap();
    let broken = twine.load_wasm(&uninstantiable_wasm()).unwrap();
    let reader = twine.load_wasm(&reader_wasm("state.bin", PAYLOAD.len())).unwrap();

    assert_eq!(twine.invoke(&writer, "go", &[]).unwrap()[0], Value::I32(0));

    // The run between write and read fails *instantiation*: the WasiCtx
    // (owner of the taken-out backend) must be recovered, not dropped.
    match twine.invoke(&broken, "go", &[]) {
        Err(TwineError::Module(_)) => {}
        other => panic!("expected instantiation failure, got {other:?}"),
    }

    let (report, values) = twine.invoke_with_report(&reader, "go", &[]).unwrap();
    assert_eq!(values[0], Value::I32(0), "backend was lost on the error path");
    assert_eq!(report.stdout, PAYLOAD, "payload survives the failed run");
}

/// A guest exporting both halves: `put()` writes `payload` to `path`
/// (optionally trapping right after the write), `get()` reads it back and
/// echoes it to stdout.
fn rw_wasm(path: &str, payload: &[u8], trap_after_put: bool) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let (path_open, fd_write, fd_read) = import_wasi(&mut b);
    b.memory(Limits::at_least(1));
    b.add_data(PATH_ADDR, path.as_bytes().to_vec());
    b.add_data(PAYLOAD_ADDR, payload.to_vec());
    b.add_data(IOV_WRITE, iovec(PAYLOAD_ADDR, payload.len()));
    b.add_data(IOV_READ, iovec(READBUF_ADDR, payload.len()));
    b.add_data(IOV_ECHO, iovec(READBUF_ADDR, payload.len()));

    let mut put = call_path_open(path.len(), 0x1 | 0x8, path_open);
    put.extend(load_fd());
    put.extend([
        Instr::Const(Value::I32(IOV_WRITE)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_write),
    ]);
    if trap_after_put {
        put.push(Instr::Unreachable);
    }
    let put = b.add_func(FuncType::new(vec![], vec![ValType::I32]), vec![], put);
    b.export_func("put", put);

    let mut get = call_path_open(path.len(), 0, path_open);
    get.extend(load_fd());
    get.extend([
        Instr::Const(Value::I32(IOV_READ)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_read),
        Instr::Drop,
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(IOV_ECHO)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_write),
    ]);
    let get = b.add_func(FuncType::new(vec![], vec![ValType::I32]), vec![], get);
    b.export_func("get", get);
    encode(&b.build())
}

#[test]
fn session_files_persist_across_warm_invocations() {
    // Same property one layer up: a persistent session's protected files
    // survive warm invocations — written in invocation 1, read in
    // invocation 2, with no re-instantiation in between.
    let mut svc = TwineBuilder::new().fs(FsChoice::ProtectedInMemory).build_service();
    svc.open_session("tenant", &rw_wasm("s.bin", PAYLOAD, false)).unwrap();

    assert_eq!(svc.invoke("tenant", "put", &[]).unwrap()[0], Value::I32(0));
    let (report, values) = svc.invoke_with_report("tenant", "get", &[]).unwrap();
    assert_eq!(values[0], Value::I32(0));
    assert_eq!(report.stdout, PAYLOAD, "payload survives warm invocations");
    assert_eq!(svc.session_stats("tenant").unwrap().invocations, 2);
}

#[test]
fn session_files_survive_a_trap_and_a_reset() {
    // A trapping invocation recycles the instance from its snapshot but
    // must not touch the tenant's protected files.
    let mut svc = TwineBuilder::new().fs(FsChoice::ProtectedInMemory).build_service();
    svc.open_session("tenant", &rw_wasm("s.bin", PAYLOAD, true)).unwrap();

    match svc.invoke("tenant", "put", &[]) {
        Err(TwineError::Trap(Trap::Unreachable)) => {}
        other => panic!("expected trap, got {other:?}"),
    }
    let (report, values) = svc.invoke_with_report("tenant", "get", &[]).unwrap();
    assert_eq!(values[0], Value::I32(0));
    assert_eq!(report.stdout, PAYLOAD, "payload survives the trap");

    // An explicit pool-recycle also keeps the files.
    svc.reset_session("tenant").unwrap();
    let (report, _) = svc.invoke_with_report("tenant", "get", &[]).unwrap();
    assert_eq!(report.stdout, PAYLOAD, "payload survives reset_session");
}
