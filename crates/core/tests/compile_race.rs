//! Compile-once under contention (ISSUE 5 satellite): many threads
//! concurrently opening sessions over identical Wasm bytes must compile
//! exactly once per (content hash, tier), and every session must share the
//! **same** `Arc<CompiledModule>` (pointer equality) — including when the
//! racers arrive mid-compile.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use twine_core::{ModuleCache, TwineBuilder};
use twine_wasm::{ExecTier, Value};

fn guest(src: &str) -> Vec<u8> {
    twine_minicc::compile_to_bytes(src).expect("guest compiles")
}

/// All threads released by a barrier onto one cache: one compile, shared
/// pointer. The barrier maximises the window in which late arrivals find
/// the slot mid-compile and must block on it rather than compile again.
#[test]
fn barrier_race_compiles_once_per_key() {
    let wasm = Arc::new(guest("int f(int x) { return x * x + 1; }"));
    let cache = Arc::new(ModuleCache::new(ExecTier::default()));
    let threads = 8;
    let rounds = 8;
    for round in 0..rounds {
        let barrier = Arc::new(Barrier::new(threads));
        let compiles = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (wasm, cache, barrier, compiles) = (
                    Arc::clone(&wasm),
                    Arc::clone(&cache),
                    Arc::clone(&barrier),
                    Arc::clone(&compiles),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    let (m, key, hit) = cache.get_or_compile(&wasm).expect("compiles");
                    if !hit {
                        compiles.fetch_add(1, Ordering::SeqCst);
                    }
                    (Arc::as_ptr(&m) as usize, key)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let (first_ptr, first_key) = results[0];
        for (ptr, key) in &results {
            assert_eq!(*ptr, first_ptr, "all racers share one module pointer");
            assert_eq!(*key, first_key, "content key is deterministic");
        }
        // Exactly one miss ever (round 0's winner); later rounds are all hits.
        let expected_compiles = usize::from(round == 0);
        assert_eq!(compiles.load(Ordering::SeqCst), expected_compiles);
        assert_eq!(cache.len(), 1);
    }
    assert_eq!(cache.misses(), 1, "one compile across all rounds/threads");
    assert_eq!(cache.hits(), (threads * rounds - 1) as u64);
}

/// Distinct modules racing concurrently: one compile each, no
/// cross-contamination, and the map lock never serialises them into a
/// wrong count.
#[test]
fn distinct_modules_compile_once_each() {
    let cache = Arc::new(ModuleCache::new(ExecTier::default()));
    let sources: Vec<Arc<Vec<u8>>> = (0..4)
        .map(|i| Arc::new(guest(&format!("int f(int x) {{ return x + {i}; }}"))))
        .collect();
    let barrier = Arc::new(Barrier::new(4 * 4));
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let wasm = Arc::clone(&sources[i % 4]);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (m, key, _) = cache.get_or_compile(&wasm).expect("compiles");
                (i % 4, Arc::as_ptr(&m) as usize, key)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for want in 0..4usize {
        let group: Vec<_> = results.iter().filter(|(g, _, _)| *g == want).collect();
        assert_eq!(group.len(), 4);
        assert!(
            group.iter().all(|(_, p, k)| *p == group[0].1 && *k == group[0].2),
            "group {want} shares one pointer"
        );
    }
    assert_eq!(cache.len(), 4);
    assert_eq!(cache.misses(), 4, "one compile per distinct module");
    assert_eq!(cache.hits(), 12);
}

/// Tier domain separation survives concurrency: the same bytes under two
/// tiers are two cache keys and two compiles.
#[test]
fn tiers_never_share_entries() {
    let wasm = guest("int g(int x) { return 3 * x; }");
    for tier in [ExecTier::Baseline, ExecTier::Fused, ExecTier::Reg] {
        let cache = ModuleCache::new(tier);
        let (_, key, _) = cache.get_or_compile(&wasm).unwrap();
        assert_eq!(key, ModuleCache::content_key(&wasm, tier));
    }
    assert_ne!(
        ModuleCache::content_key(&wasm, ExecTier::Baseline),
        ModuleCache::content_key(&wasm, ExecTier::Reg)
    );
}

/// A compile failure is observed by every racer of that attempt but is
/// *not* cached: the bytes can be fixed (here: retried as a valid module
/// under the same cache) and a later open compiles fresh.
#[test]
fn failed_compiles_are_not_cached() {
    let cache = Arc::new(ModuleCache::new(ExecTier::default()));
    let junk = Arc::new(vec![0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (junk, cache, barrier) =
                (Arc::clone(&junk), Arc::clone(&cache), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_compile(&junk).is_err()
            })
        })
        .collect();
    assert!(handles.into_iter().all(|h| h.join().unwrap()));
    assert!(cache.is_empty(), "failures leave no entry behind");
    // A failed compile is neither a hit nor a miss — waiters on the failed
    // attempt were not "served without compiling".
    assert_eq!(cache.hits(), 0);
    assert_eq!(cache.misses(), 0);
    // The same cache still compiles valid bytes afterwards.
    let ok = guest("int h(int x) { return x - 1; }");
    assert!(cache.get_or_compile(&ok).is_ok());
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.misses(), 1);
}

/// End-to-end through the sharded service: sessions opened from many
/// client threads across many shards all share one pointer-identical
/// compiled module, with exactly one compile.
#[test]
fn sharded_sessions_share_one_module() {
    let wasm = Arc::new(guest("int serve(int x) { return x + 41; }"));
    let svc = Arc::new(TwineBuilder::new().build_sharded(4));
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let (wasm, svc, barrier) =
                (Arc::clone(&wasm), Arc::clone(&svc), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                for s in 0..4 {
                    let name = format!("tenant-{t}-{s}");
                    svc.open_session(&name, &wasm).expect("open");
                    let out = svc.invoke(&name, "serve", &[Value::I32(1)]).expect("call");
                    assert_eq!(out[0], Value::I32(42));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(svc.session_count(), 32);
    assert_eq!(svc.module_cache().len(), 1, "one compiled module");
    assert_eq!(svc.module_cache().misses(), 1, "compiled exactly once");
    assert_eq!(svc.module_cache().hits(), 31);
    let first = svc.session_module("tenant-0-0").expect("module");
    for t in 0..8 {
        for s in 0..4 {
            let m = svc.session_module(&format!("tenant-{t}-{s}")).unwrap();
            assert!(
                Arc::ptr_eq(&first, &m),
                "every session shares the cache's Arc"
            );
        }
    }
}
