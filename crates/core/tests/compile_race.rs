//! Compile-once under contention (ISSUE 5 satellite): many threads
//! concurrently opening sessions over identical Wasm bytes must compile
//! exactly once per (content hash, tier), and every session must share the
//! **same** `Arc<CompiledModule>` (pointer equality) — including when the
//! racers arrive mid-compile.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use twine_core::{ModuleCache, TwineBuilder};
use twine_wasm::{ExecTier, Value};

fn guest(src: &str) -> Vec<u8> {
    twine_minicc::compile_to_bytes(src).expect("guest compiles")
}

/// All threads released by a barrier onto one cache: one compile, shared
/// pointer. The barrier maximises the window in which late arrivals find
/// the slot mid-compile and must block on it rather than compile again.
#[test]
fn barrier_race_compiles_once_per_key() {
    let wasm = Arc::new(guest("int f(int x) { return x * x + 1; }"));
    let cache = Arc::new(ModuleCache::new(ExecTier::default()));
    let threads = 8;
    let rounds = 8;
    for round in 0..rounds {
        let barrier = Arc::new(Barrier::new(threads));
        let compiles = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (wasm, cache, barrier, compiles) = (
                    Arc::clone(&wasm),
                    Arc::clone(&cache),
                    Arc::clone(&barrier),
                    Arc::clone(&compiles),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    let (m, key, hit) = cache.get_or_compile(&wasm).expect("compiles");
                    if !hit {
                        compiles.fetch_add(1, Ordering::SeqCst);
                    }
                    (Arc::as_ptr(&m) as usize, key)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let (first_ptr, first_key) = results[0];
        for (ptr, key) in &results {
            assert_eq!(*ptr, first_ptr, "all racers share one module pointer");
            assert_eq!(*key, first_key, "content key is deterministic");
        }
        // Exactly one miss ever (round 0's winner); later rounds are all hits.
        let expected_compiles = usize::from(round == 0);
        assert_eq!(compiles.load(Ordering::SeqCst), expected_compiles);
        assert_eq!(cache.len(), 1);
    }
    assert_eq!(cache.misses(), 1, "one compile across all rounds/threads");
    assert_eq!(cache.hits(), (threads * rounds - 1) as u64);
}

/// Distinct modules racing concurrently: one compile each, no
/// cross-contamination, and the map lock never serialises them into a
/// wrong count.
#[test]
fn distinct_modules_compile_once_each() {
    let cache = Arc::new(ModuleCache::new(ExecTier::default()));
    let sources: Vec<Arc<Vec<u8>>> = (0..4)
        .map(|i| Arc::new(guest(&format!("int f(int x) {{ return x + {i}; }}"))))
        .collect();
    let barrier = Arc::new(Barrier::new(4 * 4));
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let wasm = Arc::clone(&sources[i % 4]);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (m, key, _) = cache.get_or_compile(&wasm).expect("compiles");
                (i % 4, Arc::as_ptr(&m) as usize, key)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for want in 0..4usize {
        let group: Vec<_> = results.iter().filter(|(g, _, _)| *g == want).collect();
        assert_eq!(group.len(), 4);
        assert!(
            group.iter().all(|(_, p, k)| *p == group[0].1 && *k == group[0].2),
            "group {want} shares one pointer"
        );
    }
    assert_eq!(cache.len(), 4);
    assert_eq!(cache.misses(), 4, "one compile per distinct module");
    assert_eq!(cache.hits(), 12);
}

/// Tier domain separation survives concurrency: the same bytes under two
/// tiers are two cache keys and two compiles.
#[test]
fn tiers_never_share_entries() {
    let wasm = guest("int g(int x) { return 3 * x; }");
    for tier in [ExecTier::Baseline, ExecTier::Fused, ExecTier::Reg] {
        let cache = ModuleCache::new(tier);
        let (_, key, _) = cache.get_or_compile(&wasm).unwrap();
        assert_eq!(key, ModuleCache::content_key(&wasm, tier));
    }
    assert_ne!(
        ModuleCache::content_key(&wasm, ExecTier::Baseline),
        ModuleCache::content_key(&wasm, ExecTier::Reg)
    );
}

/// A compile failure is observed by every racer of that attempt but is
/// *not* cached: the bytes can be fixed (here: retried as a valid module
/// under the same cache) and a later open compiles fresh.
#[test]
fn failed_compiles_are_not_cached() {
    let cache = Arc::new(ModuleCache::new(ExecTier::default()));
    let junk = Arc::new(vec![0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (junk, cache, barrier) =
                (Arc::clone(&junk), Arc::clone(&cache), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_compile(&junk).is_err()
            })
        })
        .collect();
    assert!(handles.into_iter().all(|h| h.join().unwrap()));
    assert!(cache.is_empty(), "failures leave no entry behind");
    // A failed compile is neither a hit nor a miss — waiters on the failed
    // attempt were not "served without compiling".
    assert_eq!(cache.hits(), 0);
    assert_eq!(cache.misses(), 0);
    // The same cache still compiles valid bytes afterwards.
    let ok = guest("int h(int x) { return x - 1; }");
    assert!(cache.get_or_compile(&ok).is_ok());
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.misses(), 1);
}

/// End-to-end through the sharded service: sessions opened from many
/// client threads across many shards all share one pointer-identical
/// compiled module, with exactly one compile.
#[test]
fn sharded_sessions_share_one_module() {
    let wasm = Arc::new(guest("int serve(int x) { return x + 41; }"));
    let svc = Arc::new(TwineBuilder::new().build_sharded(4));
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let (wasm, svc, barrier) =
                (Arc::clone(&wasm), Arc::clone(&svc), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                for s in 0..4 {
                    let name = format!("tenant-{t}-{s}");
                    svc.open_session(&name, &wasm).expect("open");
                    let out = svc.invoke(&name, "serve", &[Value::I32(1)]).expect("call");
                    assert_eq!(out[0], Value::I32(42));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(svc.session_count(), 32);
    assert_eq!(svc.module_cache().len(), 1, "one compiled module");
    assert_eq!(svc.module_cache().misses(), 1, "compiled exactly once");
    assert_eq!(svc.module_cache().hits(), 31);
    let first = svc.session_module("tenant-0-0").expect("module");
    for t in 0..8 {
        for s in 0..4 {
            let m = svc.session_module(&format!("tenant-{t}-{s}")).unwrap();
            assert!(
                Arc::ptr_eq(&first, &m),
                "every session shares the cache's Arc"
            );
        }
    }
}

/// ROADMAP item 5 regression: with a capacity set, a cache churned with a
/// stream of distinct binaries (none referenced after use) stays bounded
/// — every insert past capacity sweeps the unreferenced entries as part
/// of the insert itself, no embedder `evict_unreferenced` call needed.
#[test]
fn capacity_bounds_cache_under_churn() {
    const CAP: usize = 4;
    const CHURN: usize = 40;
    let cache = ModuleCache::new(ExecTier::default());
    cache.set_capacity(Some(CAP));
    for i in 0..CHURN {
        let wasm = guest(&format!("int f(int x) {{ return x * {} + 1; }}", i + 2));
        let (_m, _, hit) = cache.get_or_compile(&wasm).expect("compiles");
        assert!(!hit, "every binary is distinct");
        // `_m` drops here: nothing references the entry any more.
        assert!(
            cache.len() <= CAP,
            "cache grew to {} > capacity {CAP} after churn insert {i}",
            cache.len()
        );
    }
    assert!(
        cache.capacity_evictions() >= (CHURN - CAP) as u64,
        "inserted {CHURN} into capacity {CAP}, only {} evictions",
        cache.capacity_evictions()
    );
    assert_eq!(cache.misses(), CHURN as u64);
}

/// Capacity eviction must never break pointer sharing: entries whose
/// module some session still holds survive any number of over-capacity
/// sweeps (the cache is bounded by `max(capacity, live working set)`),
/// and re-opens keep returning the identical `Arc` as hits.
#[test]
fn referenced_modules_survive_capacity_pressure() {
    const HELD: usize = 5;
    let cache = ModuleCache::new(ExecTier::default());
    cache.set_capacity(Some(2));
    let sources: Vec<Vec<u8>> = (0..HELD)
        .map(|i| guest(&format!("int keep(int x) {{ return x + {i}; }}")))
        .collect();
    let held: Vec<_> = sources
        .iter()
        .map(|w| cache.get_or_compile(w).expect("compiles").0)
        .collect();
    assert_eq!(cache.len(), HELD, "live working set exceeds capacity");

    // Churn unreferenced binaries through the over-capacity cache: each
    // sweep may keep at most the held set, the entry just inserted, and
    // the previous round's not-yet-swept entry.
    for i in 0..10 {
        let wasm = guest(&format!("int churn(int x) {{ return x - {i}; }}"));
        cache.get_or_compile(&wasm).expect("compiles");
        assert!(cache.len() <= HELD + 2, "held working set was evicted");
    }
    let misses_before = cache.misses();
    for (w, m) in sources.iter().zip(&held) {
        let (again, _, hit) = cache.get_or_compile(w).expect("still cached");
        assert!(hit, "held module must not recompile under pressure");
        assert!(Arc::ptr_eq(m, &again), "pointer identity preserved");
    }
    assert_eq!(cache.misses(), misses_before);

    // Once the sessions let go, the next insert sweeps the backlog.
    drop(held);
    cache.get_or_compile(&guest("int last(int x) { return x; }")).unwrap();
    assert!(cache.len() <= 2, "unreferenced backlog survived the sweep");
}

/// End-to-end: a service configured with `module_cache_capacity` serving
/// a churn of tenants with distinct binaries keeps its cache bounded,
/// while concurrently-open sessions over the same bytes still share one
/// pointer-identical module.
#[test]
fn service_cache_stays_bounded_under_tenant_churn() {
    let control = twine_core::ControlPlane {
        module_cache_capacity: Some(2),
        ..twine_core::ControlPlane::default()
    };
    let mut svc = TwineBuilder::new().control_plane(control).build_service();
    let shared = guest("int s(int x) { return x * 7; }");
    svc.open_session("pinned-a", &shared).expect("open");
    svc.open_session("pinned-b", &shared).expect("open");
    assert!(Arc::ptr_eq(
        svc.session_module("pinned-a").unwrap(),
        svc.session_module("pinned-b").unwrap()
    ));

    for i in 0..12 {
        let wasm = guest(&format!("int t(int x) {{ return x + {}; }}", 100 + i));
        let name = format!("drive-by-{i}");
        svc.open_session(&name, &wasm).expect("open");
        let out = svc.invoke(&name, "t", &[Value::I32(1)]).expect("call");
        assert_eq!(out[0], Value::I32(101 + i));
        svc.close_session(&name);
        assert!(
            svc.module_cache().len() <= 4,
            "service cache unbounded under churn: {}",
            svc.module_cache().len()
        );
    }
    assert!(svc.module_cache().capacity_evictions() > 0);
    // The pinned tenants' shared module survived every sweep.
    let out = svc.invoke("pinned-a", "s", &[Value::I32(6)]).expect("call");
    assert_eq!(out[0], Value::I32(42));
    assert!(Arc::ptr_eq(
        svc.session_module("pinned-a").unwrap(),
        svc.session_module("pinned-b").unwrap()
    ));
}
