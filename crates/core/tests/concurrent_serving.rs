//! The concurrency stress battery (ISSUE 5): N client threads × M sessions
//! hammering a [`ShardedService`] with mixed compute + stateful + WASI-fs +
//! fuel-trap guests, differentially checked against a **single-threaded**
//! [`TwineService`] replay of the same per-session call sequences.
//!
//! What must be bit-identical per session (and is asserted here): result
//! values, trap kinds, exit codes, captured stdout, WASI call counts,
//! per-class retired-instruction meters, remaining fuel, and the
//! protected-fs file state left behind. What is deliberately *not*
//! compared: virtual-clock cycles and EPC fault counts — those meter the
//! one shared enclave and depend on cross-shard interleaving (DESIGN.md
//! §9's determinism argument draws exactly this line).

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use proptest::prelude::*;
use twine_core::runtime::advance_watermark;
use twine_core::{RunReport, TwineBuilder, TwineError, TwineService};
use twine_wasi::WASI_MODULE;
use twine_wasm::encode::encode;
use twine_wasm::instr::{Instr, LoadKind, MemArg};
use twine_wasm::types::{FuncType, Limits, ValType, Value};
use twine_wasm::{Meter, ModuleBuilder};

// ---------------------------------------------------------------------
// Guests
// ---------------------------------------------------------------------

/// Order-sensitive stateful guest: the global survives warm invocations,
/// so a session's final state encodes the exact order of its calls.
const STATEFUL_SRC: &str = "
    int acc;
    int step(int x) {
        acc = acc * 31 + x;
        return acc;
    }
";

/// PolyBench-flavoured compute guest: 2-D array traffic + float arithmetic.
const COMPUTE_SRC: &str = "
    double A[24][24];
    int run(int seed) {
        for (int i = 0; i < 24; i += 1) {
            for (int j = 0; j < 24; j += 1) {
                A[i][j] = (double)((i * 31 + j * 7 + seed) % 97);
            }
        }
        double acc = 0.0;
        for (int i = 0; i < 24; i += 1) {
            for (int j = 0; j < 24; j += 1) {
                acc += A[i][j] * A[j][i];
            }
        }
        int out = (int)acc;
        return out % 65536;
    }
";

// Guest memory layout of the generated WASI-fs module (same convention as
// the fs_persistence suite).
const PATH_ADDR: i32 = 0;
const PAYLOAD_ADDR: i32 = 256;
const READBUF_ADDR: i32 = 768;
const IOV_WRITE: i32 = 512;
const IOV_READ: i32 = 528;
const IOV_ECHO: i32 = 536;
const OUT_FD: i32 = 640;
const SCRATCH: i32 = 644;

fn iovec(base: i32, len: usize) -> Vec<u8> {
    let mut v = (base as u32).to_le_bytes().to_vec();
    v.extend_from_slice(&(len as u32).to_le_bytes());
    v
}

/// A guest whose `go()` creates/truncates its file, writes a payload,
/// reopens it, reads the payload back and echoes it to stdout — every call
/// exercises the protected-FS write *and* read paths plus stdout capture.
fn fs_guest(path: &str, payload: &[u8]) -> Vec<u8> {
    use ValType::{I32, I64};
    let mut b = ModuleBuilder::new();
    let path_open = b.import_func(
        WASI_MODULE,
        "path_open",
        FuncType::new(vec![I32, I32, I32, I32, I32, I64, I64, I32, I32], vec![I32]),
    );
    let fd_write = b.import_func(
        WASI_MODULE,
        "fd_write",
        FuncType::new(vec![I32, I32, I32, I32], vec![I32]),
    );
    let fd_read = b.import_func(
        WASI_MODULE,
        "fd_read",
        FuncType::new(vec![I32, I32, I32, I32], vec![I32]),
    );
    b.memory(Limits::at_least(1));
    b.add_data(PATH_ADDR, path.as_bytes().to_vec());
    b.add_data(PAYLOAD_ADDR, payload.to_vec());
    b.add_data(IOV_WRITE, iovec(PAYLOAD_ADDR, payload.len()));
    b.add_data(IOV_READ, iovec(READBUF_ADDR, payload.len()));
    b.add_data(IOV_ECHO, iovec(READBUF_ADDR, payload.len()));

    let open = |oflags: i32| {
        vec![
            Instr::Const(Value::I32(3)), // dirfd: the preopen
            Instr::Const(Value::I32(0)),
            Instr::Const(Value::I32(PATH_ADDR)),
            Instr::Const(Value::I32(path.len() as i32)),
            Instr::Const(Value::I32(oflags)),
            Instr::Const(Value::I64(-1)),
            Instr::Const(Value::I64(0)),
            Instr::Const(Value::I32(0)),
            Instr::Const(Value::I32(OUT_FD)),
            Instr::Call(path_open),
            Instr::Drop,
        ]
    };
    let load_fd = || {
        vec![
            Instr::Const(Value::I32(OUT_FD)),
            Instr::Load(LoadKind::I32, MemArg { offset: 0, align: 2 }),
        ]
    };

    let mut body = open(0x1 | 0x8); // create | trunc
    body.extend(load_fd());
    body.extend([
        Instr::Const(Value::I32(IOV_WRITE)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_write),
        Instr::Drop,
    ]);
    body.extend(open(0)); // reopen for reading
    body.extend(load_fd());
    body.extend([
        Instr::Const(Value::I32(IOV_READ)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_read),
        Instr::Drop,
        Instr::Const(Value::I32(1)), // stdout
        Instr::Const(Value::I32(IOV_ECHO)),
        Instr::Const(Value::I32(1)),
        Instr::Const(Value::I32(SCRATCH)),
        Instr::Call(fd_write),
    ]);
    let f = b.add_func(FuncType::new(vec![], vec![ValType::I32]), vec![], body);
    b.export_func("go", f);
    encode(&b.build())
}

// ---------------------------------------------------------------------
// The battery plan
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum GuestClass {
    Stateful,
    Compute,
    Fs,
    FuelTrap,
}

/// Fuel budget low enough that the compute kernel always runs out mid-run.
const TRAP_FUEL: u64 = 150;

struct Plan {
    sessions: Vec<(String, GuestClass, Vec<u8>)>,
    calls: usize,
}

fn build_plan(n_sessions: usize, calls: usize) -> Plan {
    let stateful = twine_minicc::compile_to_bytes(STATEFUL_SRC).expect("stateful compiles");
    let compute = twine_minicc::compile_to_bytes(COMPUTE_SRC).expect("compute compiles");
    let sessions = (0..n_sessions)
        .map(|i| {
            let name = format!("tenant-{i}");
            let class = match i % 4 {
                0 => GuestClass::Stateful,
                1 => GuestClass::Compute,
                2 => GuestClass::Fs,
                _ => GuestClass::FuelTrap,
            };
            let wasm = match class {
                GuestClass::Stateful => stateful.clone(),
                GuestClass::Compute | GuestClass::FuelTrap => compute.clone(),
                GuestClass::Fs => {
                    let payload = format!("payload-of-{name}-{}", "x".repeat(i + 1));
                    fs_guest(&format!("state-{i}.bin"), payload.as_bytes())
                }
            };
            (name, class, wasm)
        })
        .collect();
    Plan { sessions, calls }
}

fn call_args(class: GuestClass, session_idx: usize, call_idx: usize) -> (String, Vec<Value>) {
    let x = (session_idx * 17 + call_idx * 5 + 3) as i32;
    match class {
        GuestClass::Stateful => ("step".into(), vec![Value::I32(x)]),
        GuestClass::Compute | GuestClass::FuelTrap => ("run".into(), vec![Value::I32(x)]),
        GuestClass::Fs => ("go".into(), vec![]),
    }
}

/// Everything deterministic one call produces.
#[derive(Debug, Clone, PartialEq)]
enum CallOutcome {
    Ok {
        values: Vec<Value>,
        exit_code: u32,
        stdout: Vec<u8>,
        wasi_calls: u64,
        meter: Meter,
        fuel_remaining: Option<u64>,
    },
    Trap(String),
}

fn outcome(res: Result<(RunReport, Vec<Value>), TwineError>) -> CallOutcome {
    match res {
        Ok((report, values)) => CallOutcome::Ok {
            values,
            exit_code: report.exit_code,
            stdout: report.stdout,
            wasi_calls: report.wasi_calls,
            meter: report.meter,
            fuel_remaining: report.fuel_remaining,
        },
        Err(e) => CallOutcome::Trap(e.to_string()),
    }
}

/// Read a session's protected file back through its reclaimed backend.
fn file_state(backend: &mut dyn twine_wasi::FsBackend, path: &str) -> Option<Vec<u8>> {
    let mut f = backend.open(path, false, false).ok()?;
    let size = f.size().ok()? as usize;
    let mut buf = vec![0u8; size];
    let mut read = 0;
    while read < size {
        let n = f.read(&mut buf[read..]).ok()?;
        if n == 0 {
            break;
        }
        read += n;
    }
    Some(buf)
}

/// Run the plan against a sharded service: sessions opened and driven from
/// `clients` concurrent threads (each owning a disjoint subset), per-session
/// call order = ascending call index. Returns per-session outcome
/// sequences + final fs state, in plan order.
fn run_sharded(
    plan: &Plan,
    shards: usize,
    clients: usize,
) -> (Vec<Vec<CallOutcome>>, Vec<Option<Vec<u8>>>) {
    let svc = Arc::new(TwineBuilder::new().build_sharded(shards));
    let mut handles = Vec::new();
    for c in 0..clients {
        let svc = Arc::clone(&svc);
        let mine: Vec<(usize, String, GuestClass, Vec<u8>)> = plan
            .sessions
            .iter()
            .enumerate()
            .filter(|(i, _)| i % clients == c)
            .map(|(i, (n, cl, w))| (i, n.clone(), *cl, w.clone()))
            .collect();
        let calls = plan.calls;
        handles.push(std::thread::spawn(move || {
            for (_, name, class, wasm) in &mine {
                svc.open_session(name, wasm).expect("open");
                if *class == GuestClass::FuelTrap {
                    svc.set_session_fuel(name, Some(TRAP_FUEL)).expect("fuel");
                }
            }
            let mut out: Vec<(usize, Vec<CallOutcome>)> =
                mine.iter().map(|(i, ..)| (*i, Vec::new())).collect();
            for call in 0..calls {
                for (k, (i, name, class, _)) in mine.iter().enumerate() {
                    let (func, args) = call_args(*class, *i, call);
                    out[k].1.push(outcome(svc.invoke_with_report(name, &func, &args)));
                }
            }
            out
        }));
    }
    let mut seqs: Vec<Vec<CallOutcome>> = vec![Vec::new(); plan.sessions.len()];
    for h in handles {
        for (i, seq) in h.join().expect("client thread") {
            seqs[i] = seq;
        }
    }
    let files = plan
        .sessions
        .iter()
        .enumerate()
        .map(|(i, (name, class, _))| {
            let mut backend = svc.close_session(name).expect("shard alive")?;
            (*class == GuestClass::Fs)
                .then(|| file_state(backend.as_mut(), &format!("/data/state-{i}.bin")))
                .flatten()
        })
        .collect();
    (seqs, files)
}

/// The single-threaded oracle: same per-session call sequences on a plain
/// `TwineService`, interleaved round-robin (any cross-session interleaving
/// is equivalent — sessions are independent).
fn run_single(plan: &Plan) -> (Vec<Vec<CallOutcome>>, Vec<Option<Vec<u8>>>) {
    let mut svc: TwineService = TwineBuilder::new().build_service();
    for (i, (name, class, wasm)) in plan.sessions.iter().enumerate() {
        let _ = i;
        svc.open_session(name, wasm).expect("open");
        if *class == GuestClass::FuelTrap {
            svc.set_session_fuel(name, Some(TRAP_FUEL)).expect("fuel");
        }
    }
    let mut seqs: Vec<Vec<CallOutcome>> = vec![Vec::new(); plan.sessions.len()];
    for call in 0..plan.calls {
        for (i, (name, class, _)) in plan.sessions.iter().enumerate() {
            let (func, args) = call_args(*class, i, call);
            seqs[i].push(outcome(svc.invoke_with_report(name, &func, &args)));
        }
    }
    let files = plan
        .sessions
        .iter()
        .enumerate()
        .map(|(i, (name, class, _))| {
            let mut backend = svc.close_session(name)?;
            (*class == GuestClass::Fs)
                .then(|| file_state(backend.as_mut(), &format!("/data/state-{i}.bin")))
                .flatten()
        })
        .collect();
    (seqs, files)
}

fn assert_battery_matches(shards: usize, clients: usize, sessions: usize, calls: usize) {
    let plan = build_plan(sessions, calls);
    let (sharded, sharded_files) = run_sharded(&plan, shards, clients);
    let (single, single_files) = run_single(&plan);
    for (i, (name, class, _)) in plan.sessions.iter().enumerate() {
        assert_eq!(
            sharded[i], single[i],
            "per-session outcome sequence diverged for {name}"
        );
        assert_eq!(sharded[i].len(), calls);
        // Sanity per class: the battery actually exercised what it claims.
        match class {
            GuestClass::FuelTrap => assert!(
                sharded[i]
                    .iter()
                    .all(|o| matches!(o, CallOutcome::Trap(t) if t.contains("out of fuel"))),
                "fuel-trap session {name} must trap every call"
            ),
            GuestClass::Fs => assert!(
                sharded[i].iter().all(|o| matches!(
                    o,
                    CallOutcome::Ok { stdout, wasi_calls, .. }
                        if !stdout.is_empty() && *wasi_calls >= 5
                )),
                "fs session {name} must echo its payload"
            ),
            _ => assert!(
                sharded[i]
                    .iter()
                    .all(|o| matches!(o, CallOutcome::Ok { .. })),
                "{name} must not trap"
            ),
        }
    }
    assert_eq!(sharded_files, single_files, "protected-fs state diverged");
    assert!(
        sharded_files.iter().flatten().any(|f| !f.is_empty()),
        "at least one fs session left file state to compare"
    );
}

// ---------------------------------------------------------------------
// The tests
// ---------------------------------------------------------------------

#[test]
fn battery_4_shards_is_bit_identical_to_single_threaded() {
    assert_battery_matches(4, 4, 12, 10);
}

#[test]
fn battery_8_shards_is_bit_identical_to_single_threaded() {
    assert_battery_matches(8, 8, 16, 6);
}

#[test]
fn battery_more_clients_than_shards() {
    // Clients outnumber shards: several client threads enqueue into the
    // same shard concurrently; per-session ordering must still hold.
    assert_battery_matches(2, 6, 12, 6);
}

/// A pipelined batch is semantically identical to the same calls issued
/// one by one: same results in order, same per-session state evolution
/// (asserted via the order-sensitive stateful guest), and the invocation
/// counter advances per call, not per batch.
#[test]
fn invoke_batch_equals_sequential_invokes() {
    let wasm = twine_minicc::compile_to_bytes(STATEFUL_SRC).unwrap();
    let svc = TwineBuilder::new().build_sharded(2);
    svc.open_session("seq", &wasm).unwrap();
    svc.open_session("bat", &wasm).unwrap();
    let args: Vec<i32> = (0..13).map(|k| k * 7 - 20).collect();
    let sequential: Vec<Vec<Value>> = args
        .iter()
        .map(|&x| svc.invoke("seq", "step", &[Value::I32(x)]).unwrap())
        .collect();
    let batched = svc
        .invoke_batch(
            "bat",
            "step",
            args.iter().map(|&x| vec![Value::I32(x)]).collect(),
        )
        .unwrap();
    assert_eq!(sequential, batched);
    assert_eq!(
        svc.session_stats("bat").unwrap().invocations,
        args.len() as u64
    );
}

/// Per-session FIFO semantics pinned by value: a stateful session driven
/// sequentially computes exactly the host-side fold of its argument order.
#[test]
fn stateful_session_observes_program_order() {
    let wasm = twine_minicc::compile_to_bytes(STATEFUL_SRC).unwrap();
    let svc = TwineBuilder::new().build_sharded(3);
    svc.open_session("s", &wasm).unwrap();
    let args = [5, -2, 11, 7, 0, 3, 42, -9];
    let mut expect = 0i32;
    for (k, &x) in args.iter().enumerate() {
        expect = expect.wrapping_mul(31).wrapping_add(x);
        let out = svc.invoke("s", "step", &[Value::I32(x)]).unwrap();
        assert_eq!(out[0], Value::I32(expect), "call {k} out of order");
    }
}

/// Many client threads hammering the *same* session: the owning shard
/// serialises them — every call sees a consistent instance (no torn state,
/// correct result for an idempotent guest), and all calls are counted.
#[test]
fn one_session_hammered_from_many_threads_serialises() {
    let wasm =
        twine_minicc::compile_to_bytes("int sq(int x) { return x * x; }").unwrap();
    let svc = Arc::new(TwineBuilder::new().build_sharded(2));
    svc.open_session("hot", &wasm).unwrap();
    let threads = 6;
    let per_thread = 25;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for k in 0..per_thread {
                    let x = (t * per_thread + k) % 1000;
                    let out = svc.invoke("hot", "sq", &[Value::I32(x)]).expect("call");
                    assert_eq!(out[0], Value::I32(x * x));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = svc.session_stats("hot").expect("stats");
    assert_eq!(stats.invocations, (threads * per_thread) as u64);
}

/// Warm-serving work actually spreads across shards (the throughput story
/// of fig8_serving --threads): with balanced session placement every shard
/// reports busy time and its share of the invocations.
#[test]
fn load_spreads_across_shards() {
    let wasm = twine_minicc::compile_to_bytes(COMPUTE_SRC).unwrap();
    let svc = Arc::new(TwineBuilder::new().build_sharded(4));
    // Pick session names until every shard owns at least two.
    let mut names: Vec<String> = Vec::new();
    let mut per_shard = [0usize; 4];
    let mut i = 0;
    while per_shard.iter().any(|&c| c < 2) {
        let name = format!("lb-{i}");
        let s = svc.shard_of(&name);
        if per_shard[s] < 2 {
            per_shard[s] += 1;
            names.push(name);
        }
        i += 1;
    }
    for name in &names {
        svc.open_session(name, &wasm).unwrap();
    }
    let handles: Vec<_> = names
        .iter()
        .map(|name| {
            let svc = Arc::clone(&svc);
            let name = name.clone();
            std::thread::spawn(move || {
                for k in 0..8 {
                    svc.invoke(&name, "run", &[Value::I32(k)]).expect("call");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = svc.shard_stats();
    assert_eq!(stats.len(), 4);
    for (s, st) in stats.iter().enumerate() {
        assert_eq!(st.sessions, 2, "shard {s} session count");
        assert_eq!(st.invocations, 16, "shard {s} served its own sessions");
        assert!(st.busy_ns > 0, "shard {s} did work");
    }
}

// ---------------------------------------------------------------------
// Trusted-clock watermark monotonicity (ISSUE 5 satellite)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The §IV-C monotonicity guard under concurrency: for any host-clock
    /// sample sequences (including stalled and *rewinding* host clocks),
    /// every thread sharing one watermark observes strictly increasing
    /// trusted time, and the final watermark dominates every value handed
    /// out. The old `Rc<Cell<u64>>` load-then-store guard violated this
    /// as soon as two shards raced it.
    #[test]
    fn watermark_monotonic_under_concurrency(
        times in proptest::collection::vec(0u64..1_000, 4..48),
        threads in 2usize..5,
    ) {
        let watermark = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let watermark = Arc::clone(&watermark);
                let times = times.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::with_capacity(times.len());
                    for (k, &h) in times.iter().enumerate() {
                        // Skew each thread's host samples so they disagree.
                        seen.push(advance_watermark(&watermark, h + (t as u64) * (k as u64 % 3)));
                    }
                    seen
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            let seen = h.join().expect("thread");
            prop_assert!(
                seen.windows(2).all(|w| w[0] < w[1]),
                "per-thread observations must be strictly increasing: {seen:?}"
            );
            all.extend(seen);
        }
        let final_mark = watermark.load(std::sync::atomic::Ordering::Relaxed);
        prop_assert!(all.iter().all(|&v| v <= final_mark));
        // Values handed out are unique across all threads (each CAS win
        // moves the watermark strictly up).
        all.sort_unstable();
        let len_before = all.len();
        all.dedup();
        prop_assert_eq!(all.len(), len_before, "no two observers share a tick");
    }
}
