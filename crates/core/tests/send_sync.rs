//! Static thread-safety assertions (ISSUE 5 satellite): the shared,
//! immutable artifacts of the engine core must be `Send + Sync`, and the
//! per-session state must at least be `Send` (single-owner, movable onto a
//! shard worker thread).
//!
//! These are *compile-time* tests: reintroducing an `Rc`, `RefCell` or
//! `Cell` anywhere inside one of these types makes this file fail to
//! build, which is exactly the regression guard the multi-threaded
//! service needs — a runtime test could only catch what it happens to
//! execute.

use twine_core::{ModuleCache, ShardedService, TwineService};
use twine_sgx::{Enclave, EpcHandle, SimClock};
use twine_wasi::WasiCtx;
use twine_wasm::compile::CompiledModule;
use twine_wasm::{Instance, Linker};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

#[test]
fn shared_artifacts_are_send_and_sync() {
    // The five named by the issue:
    assert_send_sync::<CompiledModule>();
    assert_send_sync::<Linker>();
    assert_send_sync::<ModuleCache>();
    assert_send_sync::<Enclave>();
    assert_send_sync::<ShardedService>();
}

#[test]
fn supporting_shared_state_is_send_and_sync() {
    // The pieces the artifacts above are built from — pinning them
    // individually makes a future regression's compile error point at the
    // culprit, not at the composite.
    assert_send_sync::<SimClock>();
    assert_send_sync::<EpcHandle>();
    assert_send_sync::<twine_sgx::Processor>();
    assert_send_sync::<twine_pfs::PfsProfiler>();
    assert_send_sync::<twine_core::shared_store::SharedStorage>();
}

#[test]
fn per_session_state_is_send() {
    // Single-owner per shard: needs `Send` (moves onto a worker thread and
    // can be handed back on close), deliberately *not* `Sync` — a session
    // is never shared between threads, so nothing forces locks onto its
    // hot path.
    assert_send::<Instance>();
    assert_send::<WasiCtx>();
    assert_send::<TwineService>();
    assert_send::<Box<dyn twine_wasi::FsBackend>>();
    assert_send::<Box<dyn twine_wasi::WasiFile>>();
    assert_send::<twine_core::RunReport>();
    assert_send::<twine_core::TwineError>();
}
