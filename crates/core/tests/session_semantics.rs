//! Differential tests of the session layer (DESIGN.md §7): a *warm*
//! invocation on a persistent session must be observably identical — same
//! results, same traps, same per-class meter counts — to a *cold* one-shot
//! run of the same export, and a pooled/reset instance must be
//! indistinguishable from a freshly instantiated one.
//!
//! Follows the differential style of
//! `crates/wasm/tests/fused_differential.rs`: diverse guest programs ×
//! proptest-driven inputs, comparing every observable.

use std::sync::Arc;

use proptest::prelude::*;

use twine_core::{FsChoice, RunReport, TwineBuilder, TwineError};
use twine_wasm::encode::encode;
use twine_wasm::instr::{IBinOp, Instr, IntWidth, LoadKind, MemArg, StoreKind};
use twine_wasm::meter::InstrClass;
use twine_wasm::types::{FuncType, Limits, ValType, Value};
use twine_wasm::{Meter, ModuleBuilder, Trap};

/// A MiniC guest with several shapes of compute: branchy integer loops,
/// floating point via libm imports, and a division that traps when the
/// divisor is zero.
const GUEST_SRC: &str = r"
    int mix(int a, int b) {
        int acc = 7;
        for (int i = 0; i < a % 31 + 16; i += 1) {
            if (i % 2 == 0) { acc = acc * 3 + b; } else { acc = acc - i; }
        }
        return acc;
    }
    double smooth(int n) {
        double s = 0.0;
        for (int i = 1; i <= n % 15 + 16; i += 1) { s += exp(1.0 / i); }
        return s;
    }
    int divide(int a, int b) { return a / b; }
";

fn guest_wasm() -> Vec<u8> {
    twine_minicc::compile_to_bytes(GUEST_SRC).expect("minicc compile")
}

fn assert_meters_equal(a: &Meter, b: &Meter, what: &str) {
    for c in InstrClass::all() {
        assert_eq!(a.count(c), b.count(c), "{what}: class {c:?} diverged");
    }
    assert_eq!(a.bytes_accessed, b.bytes_accessed, "{what}: bytes_accessed");
    assert_eq!(a.page_transitions, b.page_transitions, "{what}: page_transitions");
}

/// Cold reference: a fresh enclave + runtime per call (the paper's
/// one-shot embedding).
fn cold_run(wasm: &[u8], func: &str, args: &[Value]) -> Result<(RunReport, Vec<Value>), TwineError> {
    let mut twine = TwineBuilder::new().fs(FsChoice::ProtectedInMemory).build();
    let app = twine.load_wasm(wasm).unwrap();
    twine.invoke_with_report(&app, func, args)
}

fn assert_warm_equals_cold(func: &str, args: &[Value]) {
    let wasm = guest_wasm();
    let mut svc = TwineBuilder::new().fs(FsChoice::ProtectedInMemory).build_service();
    svc.open_session("s", &wasm).unwrap();
    // Warm the session with an unrelated call first, so `func` really runs
    // on a reused instance.
    let _ = svc.invoke("s", "mix", &[Value::I32(1), Value::I32(2)]);

    let warm = svc.invoke_with_report("s", func, args);
    let cold = cold_run(&wasm, func, args);
    match (warm, cold) {
        (Ok((wr, wv)), Ok((cr, cv))) => {
            assert_eq!(wv, cv, "results diverged for {func}{args:?}");
            assert_meters_equal(&wr.meter, &cr.meter, func);
            assert_eq!(wr.exit_code, cr.exit_code);
            assert_eq!(wr.stdout, cr.stdout);
            assert_eq!(wr.wasi_calls, cr.wasi_calls);
        }
        (Err(TwineError::Trap(wt)), Err(TwineError::Trap(ct))) => {
            assert_eq!(wt, ct, "traps diverged for {func}{args:?}");
        }
        (w, c) => panic!(
            "warm/cold outcome shapes diverged for {func}{args:?}: warm ok={}, cold ok={}",
            w.is_ok(),
            c.is_ok()
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Integer compute: warm session invocations are bit-identical to cold
    /// one-shot runs, for results and per-class meters alike.
    #[test]
    fn warm_equals_cold_mix(a in any::<i32>(), b in any::<i32>()) {
        assert_warm_equals_cold("mix", &[Value::I32(a), Value::I32(b)]);
    }

    /// Floating point through the shared libm host functions.
    #[test]
    fn warm_equals_cold_smooth(n in any::<i32>()) {
        assert_warm_equals_cold("smooth", &[Value::I32(n)]);
    }

    /// Traps (including division by zero when b == 0) must be identical
    /// between a warm session and a cold run.
    #[test]
    fn warm_equals_cold_divide(a in any::<i32>(), b in -2i32..3) {
        assert_warm_equals_cold("divide", &[Value::I32(a), Value::I32(b)]);
    }
}

/// A hand-built stateful module: `bump()` increments a mutable global and a
/// memory cell, returning the global — so instance-state reuse vs reset is
/// directly observable.
fn stateful_wasm() -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.memory(Limits::at_least(1));
    b.add_data(64, b"seed".to_vec());
    let g = b.add_global(ValType::I32, true, Value::I32(0));
    let f = b.add_func(
        FuncType::new(vec![], vec![ValType::I32]),
        vec![],
        vec![
            Instr::GlobalGet(g),
            Instr::Const(Value::I32(1)),
            Instr::IBinop(IntWidth::W32, IBinOp::Add),
            Instr::GlobalSet(g),
            Instr::Const(Value::I32(0)),
            Instr::Const(Value::I32(0)),
            Instr::Load(LoadKind::I32, MemArg { offset: 0, align: 2 }),
            Instr::Const(Value::I32(1)),
            Instr::IBinop(IntWidth::W32, IBinOp::Add),
            Instr::Store(StoreKind::I32, MemArg { offset: 0, align: 2 }),
            Instr::GlobalGet(g),
        ],
    );
    b.export_func("bump", f);
    encode(&b.build())
}

#[test]
fn tenant_state_persists_across_warm_invocations() {
    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("s", &stateful_wasm()).unwrap();
    for expect in 1..=4 {
        let r = svc.invoke("s", "bump", &[]).unwrap();
        assert_eq!(r[0], Value::I32(expect), "globals/memory persist when warm");
    }
}

#[test]
fn reset_session_is_indistinguishable_from_fresh() {
    let wasm = stateful_wasm();
    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("s", &wasm).unwrap();

    // Record the fresh session's first-invocation observables.
    let (fresh_report, fresh_values) = svc.invoke_with_report("s", "bump", &[]).unwrap();

    // Dirty the session, then recycle it.
    for _ in 0..3 {
        svc.invoke("s", "bump", &[]).unwrap();
    }
    svc.reset_session("s").unwrap();

    let (reset_report, reset_values) = svc.invoke_with_report("s", "bump", &[]).unwrap();
    assert_eq!(reset_values, fresh_values, "pooled/reset instance must look fresh");
    assert_meters_equal(&reset_report.meter, &fresh_report.meter, "reset-vs-fresh");

    // And a brand-new session over the same cached module agrees too.
    svc.open_session("s2", &wasm).unwrap();
    let (s2_report, s2_values) = svc.invoke_with_report("s2", "bump", &[]).unwrap();
    assert_eq!(s2_values, fresh_values);
    assert_meters_equal(&s2_report.meter, &fresh_report.meter, "new-session-vs-fresh");
}

#[test]
fn sessions_share_one_cached_module() {
    let wasm = guest_wasm();
    let mut svc = TwineBuilder::new().build_service();
    let a = svc.open_session("a", &wasm).unwrap();
    assert!(!a.cache_hit, "first open compiles");
    let b = svc.open_session("b", &wasm).unwrap();
    assert!(b.cache_hit, "second open reuses the cache");

    assert_eq!(svc.session_count(), 2);
    assert_eq!(svc.module_cache().len(), 1, "one compiled module for two sessions");
    assert_eq!(svc.module_cache().hits(), 1);
    assert_eq!(svc.module_cache().misses(), 1);
    let ma = svc.session_module("a").unwrap();
    let mb = svc.session_module("b").unwrap();
    assert!(Arc::ptr_eq(ma, mb), "both sessions share one Arc<CompiledModule>");
    assert_eq!(
        svc.session_stats("a").unwrap().module_key,
        svc.session_stats("b").unwrap().module_key,
    );
    assert_ne!(
        svc.session_stats("a").unwrap().epc_base_page,
        svc.session_stats("b").unwrap().epc_base_page,
        "tenants never alias EPC pages"
    );

    // Interleaved invocations stay isolated per tenant.
    let ra = svc.invoke("a", "mix", &[Value::I32(5), Value::I32(6)]).unwrap();
    let rb = svc.invoke("b", "mix", &[Value::I32(5), Value::I32(6)]).unwrap();
    assert_eq!(ra, rb, "identical inputs, identical outputs, separate tenants");

    // A different module widens the cache.
    svc.open_session("c", &stateful_wasm()).unwrap();
    assert_eq!(svc.module_cache().len(), 2);
}

/// A module with a *start function* (runs at instantiation, not as part of
/// any invocation): warm and cold reports must still agree, i.e. neither
/// path may leak instantiation metering into an invocation's meter.
fn start_bearing_wasm() -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.memory(Limits::at_least(1));
    let g = b.add_global(ValType::I32, true, Value::I32(0));
    // start: g = 20 + 22 (a few metered instructions at instantiation time)
    let start = b.add_func(
        FuncType::new(vec![], vec![]),
        vec![],
        vec![
            Instr::Const(Value::I32(20)),
            Instr::Const(Value::I32(22)),
            Instr::IBinop(IntWidth::W32, IBinOp::Add),
            Instr::GlobalSet(g),
        ],
    );
    b.start(start);
    let f = b.add_func(
        FuncType::new(vec![], vec![ValType::I32]),
        vec![],
        vec![Instr::GlobalGet(g)],
    );
    b.export_func("answer", f);
    encode(&b.build())
}

#[test]
fn start_function_metering_stays_out_of_invocation_reports() {
    let wasm = start_bearing_wasm();

    let mut twine = TwineBuilder::new().build();
    let app = twine.load_wasm(&wasm).unwrap();
    let (cold_report, cold_values) = twine.invoke_with_report(&app, "answer", &[]).unwrap();
    assert_eq!(cold_values[0], Value::I32(42), "start function ran");

    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("s", &wasm).unwrap();
    let (warm_report, warm_values) = svc.invoke_with_report("s", "answer", &[]).unwrap();
    assert_eq!(warm_values, cold_values);
    assert_meters_equal(&warm_report.meter, &cold_report.meter, "start-bearing module");

    // And the snapshot captured the post-start state, so a reset session
    // still sees the start function's effects without re-running it.
    svc.reset_session("s").unwrap();
    assert_eq!(svc.invoke("s", "answer", &[]).unwrap()[0], Value::I32(42));
}

#[test]
fn cache_eviction_reclaims_orphaned_modules() {
    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("a", &guest_wasm()).unwrap();
    svc.open_session("b", &stateful_wasm()).unwrap();
    assert_eq!(svc.module_cache().len(), 2);

    // While sessions are alive, nothing is evictable.
    assert_eq!(svc.module_cache().evict_unreferenced(), 0);

    svc.close_session("b");
    assert_eq!(svc.module_cache().len(), 2, "close keeps the cache warm");
    assert_eq!(svc.module_cache().evict_unreferenced(), 1);
    assert_eq!(svc.module_cache().len(), 1, "orphaned module reclaimed");

    // The survivor still serves new sessions from cache.
    let stats = svc.open_session("a2", &guest_wasm()).unwrap();
    assert!(stats.cache_hit);
}

#[test]
fn session_errors_are_reported() {
    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("dup", &stateful_wasm()).unwrap();
    assert!(matches!(
        svc.open_session("dup", &stateful_wasm()),
        Err(TwineError::Session(_))
    ));
    assert!(matches!(
        svc.invoke("ghost", "bump", &[]),
        Err(TwineError::Session(_))
    ));
    assert!(matches!(svc.reset_session("ghost"), Err(TwineError::Session(_))));
    assert!(svc.close_session("ghost").is_none());
    assert!(svc.close_session("dup").is_some(), "close returns the backend");
    assert_eq!(svc.session_count(), 0);
}

#[test]
fn per_session_fuel_budgets() {
    let mut svc = TwineBuilder::new().build_service();
    let wasm = guest_wasm();
    svc.open_session("small", &wasm).unwrap();
    svc.open_session("big", &wasm).unwrap();
    svc.set_session_fuel("small", Some(10)).unwrap();

    let args = [Value::I32(31), Value::I32(1)];
    match svc.invoke("small", "mix", &args) {
        Err(TwineError::Trap(Trap::OutOfFuel)) => {}
        other => panic!("expected out-of-fuel, got {other:?}"),
    }
    svc.invoke("big", "mix", &args).expect("unlimited tenant unaffected");
    // The budget refills per invocation and is per-session, not global.
    match svc.invoke("small", "mix", &args) {
        Err(TwineError::Trap(Trap::OutOfFuel)) => {}
        other => panic!("expected out-of-fuel again, got {other:?}"),
    }
    svc.set_session_fuel("small", None).unwrap();
    svc.invoke("small", "mix", &args).expect("lifted budget");
}

#[test]
fn trusted_clock_watermark_persists_across_invocations() {
    // A guest that calls clock_time_get twice and returns the two samples'
    // difference sign; here we only need the watermark side effect.
    let mut b = ModuleBuilder::new();
    let clock = b.import_func(
        "wasi_snapshot_preview1",
        "clock_time_get",
        FuncType::new(vec![ValType::I32, ValType::I64, ValType::I32], vec![ValType::I32]),
    );
    b.memory(Limits::at_least(1));
    let f = b.add_func(
        FuncType::new(vec![], vec![ValType::I32]),
        vec![],
        vec![
            Instr::Const(Value::I32(0)),
            Instr::Const(Value::I64(0)),
            Instr::Const(Value::I32(16)),
            Instr::Call(clock),
        ],
    );
    b.export_func("sample", f);
    let wasm = encode(&b.build());

    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("s", &wasm).unwrap();
    assert_eq!(svc.session_clock_watermark("s"), Some(0), "no reads yet");
    svc.invoke("s", "sample", &[]).unwrap();
    let w1 = svc.session_clock_watermark("s").unwrap();
    assert!(w1 > 0);
    svc.invoke("s", "sample", &[]).unwrap();
    let w2 = svc.session_clock_watermark("s").unwrap();
    assert!(w2 > w1, "watermark advances monotonically across invocations");
    // The watermark survives a pool recycle (monotonicity is a security
    // property, not per-run state).
    svc.reset_session("s").unwrap();
    assert_eq!(svc.session_clock_watermark("s"), Some(w2));
}

#[test]
fn bad_invoke_leaves_tenant_state_untouched() {
    // A caller-side mistake (typo'd export, wrong arity, wrong types) is
    // rejected before any guest code runs: it must neither wipe the
    // tenant's persistent state nor count as a served invocation.
    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("s", &stateful_wasm()).unwrap();
    for expect in 1..=3 {
        assert_eq!(svc.invoke("s", "bump", &[]).unwrap()[0], Value::I32(expect));
    }

    for (func, args) in [
        ("bmup", vec![]),                    // typo'd export
        ("bump", vec![Value::I32(1)]),       // wrong arity
    ] {
        match svc.invoke("s", func, &args) {
            Err(TwineError::Trap(Trap::BadInvoke(_))) => {}
            other => panic!("expected BadInvoke, got {other:?}"),
        }
    }

    assert_eq!(
        svc.invoke("s", "bump", &[]).unwrap()[0],
        Value::I32(4),
        "tenant state survived the rejected calls"
    );
    assert_eq!(
        svc.session_stats("s").unwrap().invocations,
        4,
        "rejected calls are not counted as served"
    );
}

#[test]
fn start_functions_cannot_run_unmetered_at_open() {
    // A malicious tenant hides an infinite loop in the start function; a
    // fuelled service must refuse the session instead of hanging.
    let mut b = ModuleBuilder::new();
    let s = b.add_func(
        FuncType::new(vec![], vec![]),
        vec![],
        vec![Instr::Loop(
            twine_wasm::instr::BlockType::Empty,
            vec![Instr::Br(0)],
        )],
    );
    b.start(s);
    let wasm = encode(&b.build());

    let mut svc = TwineBuilder::new().fuel(10_000).build_service();
    match svc.open_session("evil", &wasm) {
        Err(TwineError::Module(_)) => {}
        other => panic!("expected instantiation failure, got {other:?}"),
    }
    assert_eq!(svc.session_count(), 0);
    assert_eq!(
        svc.module_cache().len(),
        0,
        "a failed open must not leave an orphaned cache entry"
    );

    // The service keeps serving well-behaved tenants afterwards.
    svc.open_session("good", &stateful_wasm()).unwrap();
    assert_eq!(svc.invoke("good", "bump", &[]).unwrap()[0], Value::I32(1));
}
