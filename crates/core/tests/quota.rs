//! Quota, admission-control and backpressure tests (control plane,
//! DESIGN.md §10).
//!
//! What the control plane promises under overload:
//!
//! - a full bounded shard queue surfaces as the *typed*
//!   [`TwineError::Overloaded`] — never a panic, never a deadlock, never
//!   an unbounded queue;
//! - a tenant at its in-flight cap is rejected at admission (before any
//!   queueing or restore work) and the cap is released when its call
//!   finishes, without starving *other* tenants;
//! - a noisy tenant running arbitrarily expensive invocations cannot push
//!   a victim's p99 latency — measured in **virtual cycles**, the modelled
//!   machine's own time — anywhere near the cost of one un-preempted
//!   noisy invocation, because the per-invocation deadline slices the
//!   noisy guest into bounded quanta;
//! - `invoke_batch` stays semantically identical to the same sequence of
//!   sequential `invoke`s while eviction, deadlines and bounded queues
//!   are all armed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use twine_core::{ControlPlane, Overload, ShardedService, TwineBuilder, TwineError};
use twine_wasm::types::Value;

/// Order-sensitive stateful guest (same as the churn suite): cheap calls,
/// state survives park/restore, final value encodes exact call order.
const STATEFUL_SRC: &str = "
    int acc;
    int step(int x) {
        acc = acc * 31 + x;
        return acc;
    }
";

/// Expensive compute guest: the noisy tenant's weapon of choice.
const COMPUTE_SRC: &str = "
    double A[24][24];
    int run(int seed) {
        for (int i = 0; i < 24; i += 1) {
            for (int j = 0; j < 24; j += 1) {
                A[i][j] = (double)((i * 31 + j * 7 + seed) % 97);
            }
        }
        double acc = 0.0;
        for (int i = 0; i < 24; i += 1) {
            for (int j = 0; j < 24; j += 1) {
                acc += A[i][j] * A[j][i];
            }
        }
        int out = (int)acc;
        return out % 65536;
    }
";

/// Heavyweight noisy guest for the isolation test: enough work per call
/// (64×64 doubles, two passes) that execution cost dominates the fixed
/// per-command enclave-transition cycles — otherwise preemption has
/// nothing meaningful to slice.
const NOISY_SRC: &str = "
    double A[64][64];
    int churn(int seed) {
        for (int i = 0; i < 64; i += 1) {
            for (int j = 0; j < 64; j += 1) {
                A[i][j] = (double)((i * 31 + j * 7 + seed) % 97);
            }
        }
        double acc = 0.0;
        for (int i = 0; i < 64; i += 1) {
            for (int j = 0; j < 64; j += 1) {
                acc += A[i][j] * A[j][i];
            }
        }
        int out = (int)acc;
        return out % 65536;
    }
";

fn stateful_wasm() -> Vec<u8> {
    twine_minicc::compile_to_bytes(STATEFUL_SRC).expect("stateful compiles")
}

fn compute_wasm() -> Vec<u8> {
    twine_minicc::compile_to_bytes(COMPUTE_SRC).expect("compute compiles")
}

/// Full cost of one un-preempted invocation: (fuel units, virtual
/// cycles), measured on an unconstrained single service.
fn full_cost(wasm: &[u8], func: &str) -> (u64, u64) {
    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("probe", wasm).expect("open");
    let t0 = svc.clock().cycles();
    let (report, _) = svc
        .invoke_with_report("probe", func, &[Value::I32(1)])
        .expect("uninterrupted run");
    (report.meter.total(), svc.clock().cycles_since(t0))
}

/// Pick a session name hashing to the given shard.
fn name_on_shard(svc: &ShardedService, shard: usize, stem: &str) -> String {
    (0..)
        .map(|k| format!("{stem}-{k}"))
        .find(|n| svc.shard_of(n) == shard)
        .unwrap()
}

// ---------------------------------------------------------------------
// Bounded queues
// ---------------------------------------------------------------------

/// Hammer a depth-1 shard queue from six concurrent clients: every call
/// must come back as either `Ok` or the typed `Overloaded` — no panics,
/// no deadlocks, no other error — rejections must actually occur (six
/// synchronous senders cannot all fit in a one-slot queue), and the
/// service must still serve normally once the storm passes.
#[test]
fn full_queue_rejects_typed_overloaded_never_deadlocks() {
    const CLIENTS: usize = 6;
    const CALLS: usize = 40;
    let control = ControlPlane {
        queue_depth: Some(1),
        ..ControlPlane::default()
    };
    let svc = Arc::new(
        TwineBuilder::new()
            .control_plane(control)
            .build_sharded(1),
    );
    let wasm = compute_wasm();
    for c in 0..CLIENTS {
        svc.open_session(&format!("tenant-{c}"), &wasm).expect("open");
    }

    let ok = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let ok = Arc::clone(&ok);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                let name = format!("tenant-{c}");
                for i in 0..CALLS {
                    match svc.invoke(&name, "run", &[Value::I32(i as i32)]) {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(e @ TwineError::Overloaded(_)) => {
                            assert!(e.is_retryable(), "Overloaded is retryable by contract");
                            match e {
                                TwineError::Overloaded(Overload::QueueFull { shard, depth }) => {
                                    assert_eq!(shard, 0, "single-shard service");
                                    assert_eq!(depth, 1, "configured queue depth surfaces");
                                }
                                other => panic!("queue storm must reject as QueueFull: {other}"),
                            }
                            rejected.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("full queue must surface Overloaded, got: {e}"),
                    };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no client panicked");
    }

    let ok = ok.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert_eq!(ok + rejected, (CLIENTS * CALLS) as u64, "no call lost");
    assert!(rejected > 0, "six clients on a one-slot queue must collide");
    assert!(ok > 0, "backpressure must not starve the system entirely");
    let stats = svc.control_stats();
    assert_eq!(stats.queue_rejections, rejected);

    // The storm is over: a (retried) call goes straight through.
    let mut tries = 0;
    loop {
        match svc.invoke("tenant-0", "run", &[Value::I32(7)]) {
            Ok(_) => break,
            Err(TwineError::Overloaded(_)) => {
                tries += 1;
                assert!(tries < 100, "queue never drained");
            }
            Err(e) => panic!("unexpected error after storm: {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Per-tenant in-flight caps
// ---------------------------------------------------------------------

/// One tenant saturates its in-flight cap with a long batch; concurrent
/// calls on the *same* tenant are rejected at admission, a tenant on
/// another shard is completely unaffected, and the cap is released the
/// moment the batch completes.
#[test]
fn inflight_cap_rejects_same_tenant_releases_after() {
    const BATCH: usize = 250;
    let control = ControlPlane {
        max_in_flight: Some(1),
        ..ControlPlane::default()
    };
    let svc = Arc::new(
        TwineBuilder::new()
            .control_plane(control)
            .build_sharded(2),
    );
    let noisy = name_on_shard(&svc, 0, "noisy");
    let victim = name_on_shard(&svc, 1, "victim");
    svc.open_session(&noisy, &compute_wasm()).expect("open noisy");
    svc.open_session(&victim, &stateful_wasm()).expect("open victim");

    let done = Arc::new(AtomicBool::new(false));
    let batcher = {
        let svc = Arc::clone(&svc);
        let done = Arc::clone(&done);
        let noisy = noisy.clone();
        std::thread::spawn(move || {
            // The main thread also probes this tenant, so admission may
            // briefly be lost to a probe — retry until the batch holds it.
            let r = loop {
                let args: Vec<Vec<Value>> =
                    (0..BATCH).map(|i| vec![Value::I32(i as i32)]).collect();
                match svc.invoke_batch(&noisy, "run", args) {
                    Err(TwineError::Overloaded(_)) => continue,
                    other => break other,
                }
            };
            done.store(true, Ordering::SeqCst);
            r.expect("batch runs once admitted")
        })
    };

    // While the batch holds the tenant's single in-flight slot, same-tenant
    // calls bounce at admission and the other shard's tenant is untouched.
    let mut overloaded = 0u64;
    let mut victim_calls = 0u64;
    while !done.load(Ordering::SeqCst) {
        match svc.invoke(&noisy, "run", &[Value::I32(0)]) {
            Err(TwineError::Overloaded(o)) => {
                match &o {
                    Overload::InFlight { tenant, max } => {
                        assert_eq!(tenant, &noisy, "rejection names the capped tenant");
                        assert_eq!(*max, 1, "rejection carries the configured cap");
                    }
                    other => panic!("capped tenant must reject as InFlight: {other}"),
                }
                overloaded += 1;
            }
            Ok(_) => {}
            Err(e) => panic!("unexpected error on capped tenant: {e}"),
        }
        svc.invoke(&victim, "step", &[Value::I32(1)])
            .expect("victim on its own shard is never rejected");
        victim_calls += 1;
    }
    assert_eq!(batcher.join().expect("batcher").len(), BATCH);
    assert!(
        overloaded > 0,
        "a 250-call batch must hold the in-flight slot long enough to observe rejections"
    );
    assert!(victim_calls > 0);
    assert!(svc.control_stats().inflight_rejections >= overloaded);

    // Cap released: the tenant serves again immediately.
    svc.invoke(&noisy, "run", &[Value::I32(9)])
        .expect("in-flight slot released after the batch");
}

// ---------------------------------------------------------------------
// Noisy-tenant isolation
// ---------------------------------------------------------------------

/// The headline isolation property: with a per-invocation deadline of
/// ~1/16 of the noisy guest's full cost, a victim sharing the *same
/// shard* keeps its p99 latency (measured in virtual cycles, send →
/// reply) well below the cost of even one un-preempted noisy invocation.
/// Without preemption the victim would routinely queue behind a full
/// noisy run; the deadline slices noisy work into bounded quanta.
#[test]
fn noisy_tenant_cannot_push_victim_p99_past_one_quantum() {
    const SAMPLES: usize = 120;
    let noisy_wasm = twine_minicc::compile_to_bytes(NOISY_SRC).expect("noisy compiles");
    let (full_fuel, full_cycles) = full_cost(&noisy_wasm, "churn");
    let deadline = (full_fuel / 16).max(1);
    let control = ControlPlane {
        deadline: Some(deadline),
        ..ControlPlane::default()
    };
    let svc = Arc::new(
        TwineBuilder::new()
            .control_plane(control)
            .build_sharded(1),
    );
    svc.open_session("noisy", &noisy_wasm).expect("open noisy");
    svc.open_session("victim", &stateful_wasm()).expect("open victim");

    let stop = Arc::new(AtomicBool::new(false));
    let noisy = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut preempted = 0u64;
            let mut i = 0i32;
            while !stop.load(Ordering::SeqCst) {
                i += 1;
                match svc.invoke("noisy", "churn", &[Value::I32(i)]) {
                    Err(TwineError::Trap(twine_wasm::Trap::DeadlineExceeded)) => preempted += 1,
                    Ok(_) => {}
                    Err(e) => panic!("noisy tenant saw unexpected error: {e}"),
                }
            }
            preempted
        })
    };

    let clock = svc.clock();
    let mut latencies: Vec<u64> = (0..SAMPLES)
        .map(|k| {
            let t0 = clock.cycles();
            svc.invoke("victim", "step", &[Value::I32(k as i32)])
                .expect("victim calls always succeed");
            clock.cycles_since(t0)
        })
        .collect();
    stop.store(true, Ordering::SeqCst);
    let preempted = noisy.join().expect("noisy thread");

    latencies.sort_unstable();
    let p99 = latencies[(SAMPLES * 99) / 100];
    let p50 = latencies[SAMPLES / 2];
    assert!(
        preempted > 0,
        "the deadline must actually be preempting the noisy tenant"
    );
    assert!(svc.control_stats().deadline_preemptions >= preempted);
    assert!(
        p99 < full_cycles / 2,
        "victim p99 ({p99} cycles) must stay below half an un-preempted noisy \
         invocation ({full_cycles} cycles) — preemption quantum is ~1/16"
    );
    assert!(p50 <= p99);
}

// ---------------------------------------------------------------------
// Batch ≡ sequential under admission control
// ---------------------------------------------------------------------

fn admission_control() -> ControlPlane {
    ControlPlane {
        max_live_sessions: Some(1), // every cross-session switch parks
        queue_depth: Some(1),       // a batch is one command: always fits
        max_in_flight: Some(1),     // single client: cap armed, never hit
        deadline: Some(1_000_000),  // armed, far above any call here
        ..ControlPlane::default()
    }
}

/// `invoke_batch` must be observably identical to the same calls issued
/// one by one — with eviction, bounded queues, in-flight caps and
/// deadlines all armed. Covers the Ok path (order-sensitive state,
/// park/restore interleaving between two sessions) and the abort path
/// (the batch's first trap is the same error sequential invocation hits,
/// and post-trap session state matches).
#[test]
fn invoke_batch_matches_sequential_under_admission_control() {
    const TRAP_FUEL: u64 = 150;
    let batch_svc = TwineBuilder::new()
        .control_plane(admission_control())
        .build_sharded(1);
    let seq_svc = TwineBuilder::new()
        .control_plane(admission_control())
        .build_sharded(1);

    for svc in [&batch_svc, &seq_svc] {
        svc.open_session("alpha", &stateful_wasm()).expect("open alpha");
        svc.open_session("beta", &compute_wasm()).expect("open beta");
        svc.set_session_fuel("beta", Some(TRAP_FUEL)).expect("fuel");
    }

    // Ok path: order-sensitive batch on alpha (opening beta above parked
    // alpha on both services, so the batch also exercises restore).
    let args: Vec<Vec<Value>> = (1..=6).map(|i| vec![Value::I32(i)]).collect();
    let batched = batch_svc
        .invoke_batch("alpha", "step", args.clone())
        .expect("batch succeeds");
    let sequential: Vec<Vec<Value>> = args
        .iter()
        .map(|a| seq_svc.invoke("alpha", "step", a).expect("sequential ok"))
        .collect();
    assert_eq!(batched, sequential, "batch diverged from sequential");

    // Abort path: beta's first call runs out of fuel; the batch surfaces
    // exactly the error the first sequential invoke surfaces.
    let beta_args: Vec<Vec<Value>> = (0..4).map(|i| vec![Value::I32(i)]).collect();
    let batch_err = batch_svc
        .invoke_batch("beta", "run", beta_args.clone())
        .expect_err("fuel trap aborts the batch");
    let seq_err = seq_svc
        .invoke("beta", "run", &beta_args[0])
        .expect_err("fuel trap on first sequential call");
    assert_eq!(batch_err.to_string(), seq_err.to_string());
    assert!(
        !batch_err.is_retryable(),
        "a guest trap is deterministic — retrying it is useless"
    );

    // Post-trap convergence: alpha's state (it was parked while beta ran)
    // continues identically on both services.
    let a = batch_svc.invoke("alpha", "step", &[Value::I32(7)]).expect("ok");
    let b = seq_svc.invoke("alpha", "step", &[Value::I32(7)]).expect("ok");
    assert_eq!(a, b, "session state diverged after the aborted batch");

    // Both services actually parked/restored along the way — the
    // admission-control config wasn't a no-op.
    for svc in [&batch_svc, &seq_svc] {
        let stats = svc.control_stats();
        assert!(stats.parks > 0 && stats.restores > 0);
    }
}
