//! Criterion micro-benchmarks of the core engines (sanity-level
//! performance tracking; the paper-figure harnesses live in `src/bin/`).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_wasm_kernel(c: &mut Criterion) {
    use twine_polybench::{kernels, run_kernel};
    let kernel = kernels::Kernel {
        name: "gemm",
        source: kernels::source_for("gemm", kernels::Scale::Mini),
    };
    c.bench_function("wasm_gemm_mini", |b| {
        b.iter(|| run_kernel(&kernel).expect("run"));
    });
}

/// Dispatch-loop comparison of the three execution tiers: the module is
/// AoT-compiled once per tier outside the timed body, so the benches time
/// instantiation + execution only. Fused must beat baseline and the
/// register tier must beat fused on wall-clock, while metering stays
/// bit-identical (asserted by `twine-polybench`'s own tests and the
/// differential proptests in `crates/wasm/tests/tier_differential.rs`).
fn bench_wasm_tiers(c: &mut Criterion) {
    use twine_polybench::{compile_kernel, kernels, run_compiled};
    use twine_wasm::ExecTier;
    for name in ["gemm", "doitgen", "cholesky"] {
        let kernel = kernels::Kernel {
            name,
            source: kernels::source_for(name, kernels::Scale::Mini),
        };
        for tier in [ExecTier::Baseline, ExecTier::Fused, ExecTier::Reg] {
            let compiled = compile_kernel(&kernel, tier).expect("compile");
            c.bench_function(&format!("wasm_{name}_mini_{tier}"), |b| {
                b.iter(|| run_compiled(&compiled).expect("run"));
            });
        }
    }
}

/// Cold one-shot serving vs a warm persistent session (the `fig8_serving`
/// harness's criterion twin): the cold path re-runs decode + validate +
/// AoT-lower + instantiate per call on a long-lived runtime, the warm path
/// reuses a session's instance and WASI context and must win on wall-clock
/// while results and meters stay bit-identical (asserted by
/// `crates/core/tests/session_semantics.rs`).
fn bench_serving(c: &mut Criterion) {
    use twine_core::TwineBuilder;
    use twine_wasm::Value;
    let wasm = twine_minicc::compile_to_bytes(
        "int handle(int req) {
            int acc = 7;
            for (int i = 0; i < req % 64 + 64; i += 1) { acc = acc * 3 + i; }
            return acc;
        }",
    )
    .expect("guest compiles");

    let mut twine = TwineBuilder::new().build();
    c.bench_function("serving_cold_one_shot", |b| {
        b.iter(|| {
            let app = twine.load_wasm(&wasm).expect("load");
            twine.invoke(&app, "handle", &[Value::I32(17)]).expect("run")
        });
    });

    let mut svc = TwineBuilder::new().build_service();
    svc.open_session("tenant", &wasm).expect("open");
    c.bench_function("serving_warm_session", |b| {
        b.iter(|| svc.invoke("tenant", "handle", &[Value::I32(17)]).expect("run"));
    });

    // Warm-session pair pinned to explicit tiers: the register tier's
    // frame arena + dispatch win on the per-call guest work, holding the
    // rest of the warm path constant.
    use twine_wasm::ExecTier;
    for (name, tier) in [
        ("serving_warm_session_fused", ExecTier::Fused),
        ("serving_warm_session_reg", ExecTier::Reg),
    ] {
        let mut svc = TwineBuilder::new().exec_tier(tier).build_service();
        svc.open_session("tenant", &wasm).expect("open");
        c.bench_function(name, |b| {
            b.iter(|| svc.invoke("tenant", "handle", &[Value::I32(17)]).expect("run"));
        });
    }
}

fn bench_pfs(c: &mut Criterion) {
    use twine_pfs::{MemStorage, PfsMode, PfsOptions, SgxFile};
    let data = vec![0xA5u8; 64 * 1024];
    for mode in [PfsMode::Intel, PfsMode::Optimised] {
        let name = match mode {
            PfsMode::Intel => "pfs_write_read_64k_intel",
            PfsMode::Optimised => "pfs_write_read_64k_optimised",
        };
        c.bench_function(name, |b| {
            b.iter(|| {
                let opts = PfsOptions {
                    mode,
                    cache_nodes: 16,
                    enclave: None,
                    profiler: None,
                    journal: false,
                };
                let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], opts).expect("create");
                f.write(&data).expect("write");
                f.flush().expect("flush");
                f.seek(0).expect("seek");
                let mut buf = vec![0u8; data.len()];
                f.read(&mut buf).expect("read");
                buf
            });
        });
    }
}

fn bench_crypto(c: &mut Criterion) {
    use twine_crypto::{AesCcm, AesGcm};
    let gcm = AesGcm::new_128(&[7u8; 16]);
    let ccm = AesCcm::new_128(&[7u8; 16]);
    let mut buf = vec![0x5Au8; 4096];
    c.bench_function("aes_gcm_4k_encrypt", |b| {
        b.iter(|| gcm.encrypt_in_place(&[1u8; 12], b"", &mut buf));
    });
    c.bench_function("aes_ccm_4k_encrypt", |b| {
        b.iter(|| ccm.encrypt_in_place(&[1u8; 12], b"", &mut buf));
    });
}

fn bench_sql(c: &mut Criterion) {
    use twine_sqldb::Connection;
    c.bench_function("sql_insert_select_100", |b| {
        b.iter(|| {
            let mut db = Connection::open_memory();
            db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)").expect("ct");
            db.execute("BEGIN").expect("begin");
            for i in 0..100 {
                db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 3)).expect("ins");
            }
            db.execute("COMMIT").expect("commit");
            db.query_scalar("SELECT sum(b) FROM t").expect("sum")
        });
    });
}

fn bench_btree(c: &mut Criterion) {
    use twine_sqldb::btree;
    use twine_sqldb::pager::Pager;
    c.bench_function("btree_insert_1000", |b| {
        b.iter(|| {
            let mut p = Pager::open_memory();
            p.begin().expect("begin");
            let root = btree::create_table_tree(&mut p).expect("tree");
            for i in 0..1000i64 {
                btree::table_insert(&mut p, root, i, &[7u8; 64]).expect("insert");
            }
            p.commit().expect("commit");
        });
    });
}

criterion_group!(
    benches,
    bench_wasm_kernel,
    bench_wasm_tiers,
    bench_serving,
    bench_pfs,
    bench_crypto,
    bench_sql,
    bench_btree
);
criterion_main!(benches);
