//! # twine-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§V). Each binary prints the same rows/series the paper
//! reports and writes CSV under `results/`.
//!
//! | Binary            | Reproduces              |
//! |-------------------|-------------------------|
//! | `fig3_polybench`  | Figure 3                |
//! | `fig4_speedtest`  | Figure 4                |
//! | `fig5_micro`      | Figure 5a/b/c           |
//! | `table2_summary`  | Table II                |
//! | `fig6_hw_sw`      | Figure 6                |
//! | `fig7_breakdown`  | Figure 7                |
//! | `table3_costs`    | Table IIIa/IIIb         |
//!
//! Run e.g. `cargo run -p twine-bench --release --bin fig3_polybench`.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::path::PathBuf;

/// Where CSV outputs land (`results/` at the workspace root).
#[must_use]
pub fn results_dir() -> PathBuf {
    let candidates = [PathBuf::from("results"), PathBuf::from("../../results")];
    for c in &candidates {
        if c.is_dir() {
            return c.clone();
        }
    }
    std::fs::create_dir_all("results").ok();
    PathBuf::from("results")
}

/// Write a CSV file under `results/`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    println!("\nwrote {}", path.display());
}

/// Parse a `--flag value` style argument.
#[must_use]
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Is a bare flag present?
#[must_use]
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}
