//! # twine-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§V). Each binary prints the same rows/series the paper
//! reports and writes CSV under `results/`.
//!
//! | Binary            | Reproduces              |
//! |-------------------|-------------------------|
//! | `fig3_polybench`  | Figure 3                |
//! | `fig4_speedtest`  | Figure 4                |
//! | `fig5_micro`      | Figure 5a/b/c           |
//! | `table2_summary`  | Table II                |
//! | `fig6_hw_sw`      | Figure 6                |
//! | `fig7_breakdown`  | Figure 7                |
//! | `table3_costs`    | Table IIIa/IIIb         |
//! | `fig8_serving`    | beyond the paper: cold-start vs warm session serving (DESIGN.md §7) |
//!
//! Run e.g. `cargo run -p twine-bench --release --bin fig3_polybench`.
//!
//! **Dependency graph**: top of the workspace — drives every other crate
//! and writes the per-figure CSVs consumed by the evaluation write-up.
//! Paper anchor: §V.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::path::PathBuf;

/// Where CSV outputs land (`results/` at the workspace root). The
/// directory is created if missing, so the binaries work on a fresh
/// checkout and regardless of the invocation directory: an existing
/// `results/` relative to the current directory wins, then the workspace
/// root (anchored via this crate's manifest), then `./results` is created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let workspace_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    let candidates = [PathBuf::from("results"), workspace_root.clone()];
    for c in &candidates {
        if c.is_dir() {
            return c.clone();
        }
    }
    // Fresh checkout: create at the workspace root first, falling back to
    // the current directory.
    for c in [&workspace_root, &candidates[0]] {
        if std::fs::create_dir_all(c).is_ok() {
            return c.clone();
        }
    }
    PathBuf::from("results")
}

/// Write a CSV file under `results/` and print the output path. I/O
/// failures are reported on stderr without aborting the run — the table
/// has already been printed to stdout at this point.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(name);
    let write = |path: &std::path::Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{header}")?;
        for r in rows {
            writeln!(f, "{r}")?;
        }
        Ok(())
    };
    match write(&path) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Write a machine-readable benchmark artefact at the **workspace root**
/// (not `results/`): `BENCH_*.json` files are the perf trajectory future
/// changes diff against, so they live next to the sources under version
/// control. The JSON is assembled by the caller; this helper only anchors
/// the path and reports it. See DESIGN.md §8 for the schemas.
pub fn write_bench_json(name: &str, json: &str) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = if root.is_dir() {
        root.join(name)
    } else {
        PathBuf::from(name)
    };
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Parse a `--flag value` style argument.
#[must_use]
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Is a bare flag present?
#[must_use]
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}
