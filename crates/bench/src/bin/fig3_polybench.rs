//! Figure 3: PolyBench/C micro-benchmarks, normalised run time
//! (Native = 1) for Native, WAMR and Twine.
//!
//! Each kernel is compiled from MiniC to Wasm, executed once on the metered
//! engine, and the same instruction stream is priced under the three cost
//! models (DESIGN.md §4). `--mem-sweep` additionally reports the EPC
//! behaviour of the memory-hungry kernels the paper singles out
//! (deriche/lu/ludcmp, §V-B). `--tiers` runs every kernel on both
//! execution tiers (baseline dispatch vs fused superinstructions),
//! verifies the metered virtual-time streams are bit-identical, and
//! reports the wall-clock delta.

use twine_baselines::model::{kernel_seconds, ExecMode};
use twine_bench::{arg_value, has_flag, write_csv};
use twine_polybench::{all_kernels, run_kernel, Scale};

fn main() {
    let scale = match arg_value("--scale").as_deref() {
        Some("mini") => Scale::Mini,
        _ => Scale::Small,
    };
    println!("Figure 3 — PolyBench/C, normalised run time (native = 1)\n");
    println!(
        "{:<16} {:>9} {:>9} {:>9}   {:>12} {:>10}",
        "kernel", "native", "wamr", "twine", "instrs", "pages"
    );
    let mut rows = Vec::new();
    let mut wamr_sum = 0.0;
    let mut twine_sum = 0.0;
    let kernels = all_kernels(scale);
    for k in &kernels {
        let run = run_kernel(k).unwrap_or_else(|e| panic!("{e}"));
        let native = kernel_seconds(&run.meter, ExecMode::Native);
        let wamr = kernel_seconds(&run.meter, ExecMode::WamrAot) / native;
        let twine = kernel_seconds(&run.meter, ExecMode::TwineAot) / native;
        wamr_sum += wamr;
        twine_sum += twine;
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>9.2}   {:>12} {:>10}",
            run.name,
            1.0,
            wamr,
            twine,
            run.meter.total(),
            run.page_transitions
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{},{}",
            run.name,
            1.0,
            wamr,
            twine,
            run.meter.total(),
            run.page_transitions
        ));
    }
    let n = kernels.len() as f64;
    println!(
        "\nmean slowdown: wamr {:.2}x, twine {:.2}x (paper: wamr ~2.1x avg, twine above wamr)",
        wamr_sum / n,
        twine_sum / n
    );
    write_csv(
        "fig3_polybench.csv",
        "kernel,native,wamr,twine,instructions,page_transitions",
        &rows,
    );

    if has_flag("--tiers") {
        tier_comparison(scale);
    }

    if has_flag("--mem-sweep") {
        mem_sweep();
    }
}

/// Execute every kernel on both tiers, check that the metered virtual-time
/// inputs (per-class counts, bytes, page transitions) are bit-identical,
/// and report the wall-clock speedup of the fused tier.
fn tier_comparison(scale: Scale) {
    use std::time::Instant;
    use twine_polybench::{compile_kernel, run_compiled};
    use twine_wasm::meter::InstrClass;
    use twine_wasm::ExecTier;

    println!("\nExecution tiers: baseline dispatch vs fused superinstructions");
    println!(
        "{:<16} {:>12} {:>12} {:>9}  {:>11} {:>11}",
        "kernel", "base_ms", "fused_ms", "speedup", "base_ops", "fused_ops"
    );
    let mut rows = Vec::new();
    let mut log_sum = 0.0f64;
    let kernels = all_kernels(scale);
    for k in &kernels {
        let base = compile_kernel(k, ExecTier::Baseline).unwrap_or_else(|e| panic!("{e}"));
        let fused = compile_kernel(k, ExecTier::Fused).unwrap_or_else(|e| panic!("{e}"));
        // One untimed warm-up run per tier, then the minimum of three
        // timed runs: both tiers face the same cache/allocator state and
        // scheduler jitter on a single sample cannot skew the CSV.
        run_compiled(&base).unwrap_or_else(|e| panic!("{e}"));
        run_compiled(&fused).unwrap_or_else(|e| panic!("{e}"));
        let time_min = |ck: &twine_polybench::CompiledKernel| {
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..3 {
                let t = Instant::now();
                last = Some(run_compiled(ck).unwrap_or_else(|e| panic!("{e}")));
                best = best.min(t.elapsed().as_secs_f64());
            }
            (best, last.expect("three runs"))
        };
        let (base_s, rb) = time_min(&base);
        let (fused_s, rf) = time_min(&fused);

        // The whole point of the design: virtual time must be unchanged.
        assert_eq!(
            rb.checksum.to_bits(),
            rf.checksum.to_bits(),
            "{}: checksum diverged between tiers",
            k.name
        );
        for c in InstrClass::all() {
            assert_eq!(
                rb.meter.count(c),
                rf.meter.count(c),
                "{}: metered class {c:?} diverged between tiers",
                k.name
            );
        }
        assert_eq!(rb.meter.bytes_accessed, rf.meter.bytes_accessed, "{}", k.name);
        assert_eq!(rb.meter.page_transitions, rf.meter.page_transitions, "{}", k.name);

        let speedup = base_s / fused_s;
        log_sum += speedup.ln();
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>8.2}x  {:>11} {:>11}",
            k.name,
            base_s * 1e3,
            fused_s * 1e3,
            speedup,
            base.code.code_size_lowered_ops(),
            fused.code.code_size_lowered_ops()
        );
        rows.push(format!(
            "{},{:.6},{:.6},{:.4},{},{}",
            k.name,
            base_s,
            fused_s,
            speedup,
            base.code.code_size_lowered_ops(),
            fused.code.code_size_lowered_ops()
        ));
    }
    let geomean = (log_sum / kernels.len() as f64).exp();
    println!("\ngeomean wall-clock speedup (fused over baseline): {geomean:.2}x");
    println!("virtual cycle streams: bit-identical across tiers (verified per kernel)");
    write_csv(
        "fig3_tier_wallclock.csv",
        "kernel,baseline_seconds,fused_seconds,speedup,baseline_ops,fused_ops",
        &rows,
    );
}

/// §V-B memory study: attach an EPC model of shrinking size to the kernels
/// the paper calls out and report fault escalation.
fn mem_sweep() {
    use twine_sgx::{Epc, SimClock};

    println!("\nMemory sweep (§V-B): EPC faults vs usable EPC size");
    println!("{:<16} {:>10} {:>12} {:>12}", "kernel", "epc_pages", "faults", "evictions");
    let mut rows = Vec::new();
    for name in ["deriche", "lu", "ludcmp", "gemm"] {
        let kernel = twine_polybench::kernels::Kernel {
            name: "sweep",
            source: twine_polybench::kernels::source_for(name, Scale::Small),
        };
        // Replay the page-touch stream against EPCs of different sizes.
        for pages in [4096usize, 1024, 256, 64] {
            let wasm = twine_minicc::compile_to_bytes(&kernel.source).expect("compile");
            let code = twine_wasm::compile::CompiledModule::from_bytes(&wasm).expect("wasm");
            let mut linker = twine_wasm::Linker::new();
            twine_core::runtime::register_libm(&mut linker);
            let mut inst = twine_wasm::Instance::instantiate(
                std::sync::Arc::new(code),
                linker,
                Box::new(()),
            )
            .expect("instantiate");
            struct Sink(std::rc::Rc<std::cell::RefCell<Epc>>);
            impl twine_wasm::PageSink for Sink {
                fn touch(&mut self, page: u64) {
                    self.0.borrow_mut().touch(page);
                }
            }
            let epc = std::rc::Rc::new(std::cell::RefCell::new(Epc::new(pages, SimClock::new())));
            inst.set_page_sink(Some(Box::new(Sink(epc.clone()))));
            inst.invoke("init", &[]).expect("init");
            inst.invoke("kernel", &[]).expect("kernel");
            let stats = epc.borrow().stats();
            println!(
                "{:<16} {:>10} {:>12} {:>12}",
                name, pages, stats.faults, stats.evictions
            );
            rows.push(format!("{name},{pages},{},{}", stats.faults, stats.evictions));
        }
    }
    write_csv("fig3_mem_sweep.csv", "kernel,epc_pages,faults,evictions", &rows);
}
