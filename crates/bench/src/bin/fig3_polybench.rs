//! Figure 3: PolyBench/C micro-benchmarks, normalised run time
//! (Native = 1) for Native, WAMR and Twine.
//!
//! Each kernel is compiled from MiniC to Wasm, executed once on the metered
//! engine, and the same instruction stream is priced under the three cost
//! models (DESIGN.md §4). `--mem-sweep` additionally reports the EPC
//! behaviour of the memory-hungry kernels the paper singles out
//! (deriche/lu/ludcmp, §V-B).

use twine_baselines::model::{kernel_seconds, ExecMode};
use twine_bench::{arg_value, has_flag, write_csv};
use twine_polybench::{all_kernels, run_kernel, Scale};

fn main() {
    let scale = match arg_value("--scale").as_deref() {
        Some("mini") => Scale::Mini,
        _ => Scale::Small,
    };
    println!("Figure 3 — PolyBench/C, normalised run time (native = 1)\n");
    println!(
        "{:<16} {:>9} {:>9} {:>9}   {:>12} {:>10}",
        "kernel", "native", "wamr", "twine", "instrs", "pages"
    );
    let mut rows = Vec::new();
    let mut wamr_sum = 0.0;
    let mut twine_sum = 0.0;
    let kernels = all_kernels(scale);
    for k in &kernels {
        let run = run_kernel(k).unwrap_or_else(|e| panic!("{e}"));
        let native = kernel_seconds(&run.meter, ExecMode::Native);
        let wamr = kernel_seconds(&run.meter, ExecMode::WamrAot) / native;
        let twine = kernel_seconds(&run.meter, ExecMode::TwineAot) / native;
        wamr_sum += wamr;
        twine_sum += twine;
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>9.2}   {:>12} {:>10}",
            run.name,
            1.0,
            wamr,
            twine,
            run.meter.total(),
            run.page_transitions
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{},{}",
            run.name,
            1.0,
            wamr,
            twine,
            run.meter.total(),
            run.page_transitions
        ));
    }
    let n = kernels.len() as f64;
    println!(
        "\nmean slowdown: wamr {:.2}x, twine {:.2}x (paper: wamr ~2.1x avg, twine above wamr)",
        wamr_sum / n,
        twine_sum / n
    );
    write_csv(
        "fig3_polybench.csv",
        "kernel,native,wamr,twine,instructions,page_transitions",
        &rows,
    );

    if has_flag("--mem-sweep") {
        mem_sweep();
    }
}

/// §V-B memory study: attach an EPC model of shrinking size to the kernels
/// the paper calls out and report fault escalation.
fn mem_sweep() {
    use twine_sgx::{Epc, SimClock};

    println!("\nMemory sweep (§V-B): EPC faults vs usable EPC size");
    println!("{:<16} {:>10} {:>12} {:>12}", "kernel", "epc_pages", "faults", "evictions");
    let mut rows = Vec::new();
    for name in ["deriche", "lu", "ludcmp", "gemm"] {
        let kernel = twine_polybench::kernels::Kernel {
            name: "sweep",
            source: twine_polybench::kernels::source_for(name, Scale::Small),
        };
        // Replay the page-touch stream against EPCs of different sizes.
        for pages in [4096usize, 1024, 256, 64] {
            let wasm = twine_minicc::compile_to_bytes(&kernel.source).expect("compile");
            let code = twine_wasm::compile::CompiledModule::from_bytes(&wasm).expect("wasm");
            let mut linker = twine_wasm::Linker::new();
            twine_core::runtime::register_libm(&mut linker);
            let mut inst = twine_wasm::Instance::instantiate(
                std::sync::Arc::new(code),
                linker,
                Box::new(()),
            )
            .expect("instantiate");
            struct Sink(std::rc::Rc<std::cell::RefCell<Epc>>);
            impl twine_wasm::PageSink for Sink {
                fn touch(&mut self, page: u64) {
                    self.0.borrow_mut().touch(page);
                }
            }
            let epc = std::rc::Rc::new(std::cell::RefCell::new(Epc::new(pages, SimClock::new())));
            inst.set_page_sink(Some(Box::new(Sink(epc.clone()))));
            inst.invoke("init", &[]).expect("init");
            inst.invoke("kernel", &[]).expect("kernel");
            let stats = epc.borrow().stats();
            println!(
                "{:<16} {:>10} {:>12} {:>12}",
                name, pages, stats.faults, stats.evictions
            );
            rows.push(format!("{name},{pages},{},{}", stats.faults, stats.evictions));
        }
    }
    write_csv("fig3_mem_sweep.csv", "kernel,epc_pages,faults,evictions", &rows);
}
