//! Figure 3: PolyBench/C micro-benchmarks, normalised run time
//! (Native = 1) for Native, WAMR and Twine.
//!
//! Each kernel is compiled from MiniC to Wasm, executed once on the metered
//! engine, and the same instruction stream is priced under the three cost
//! models (DESIGN.md §4). `--mem-sweep` additionally reports the EPC
//! behaviour of the memory-hungry kernels the paper singles out
//! (deriche/lu/ludcmp, §V-B). `--tiers` runs every kernel on both
//! execution tiers (baseline dispatch vs fused superinstructions),
//! verifies the metered virtual-time streams are bit-identical, and
//! reports the wall-clock delta.

use twine_baselines::model::{kernel_seconds, ExecMode};
use twine_bench::{arg_value, has_flag, write_csv};
use twine_polybench::{all_kernels, run_kernel, Scale};

fn main() {
    let scale = match arg_value("--scale").as_deref() {
        Some("mini") => Scale::Mini,
        _ => Scale::Small,
    };
    println!("Figure 3 — PolyBench/C, normalised run time (native = 1)\n");
    println!(
        "{:<16} {:>9} {:>9} {:>9}   {:>12} {:>10}",
        "kernel", "native", "wamr", "twine", "instrs", "pages"
    );
    let mut rows = Vec::new();
    let mut wamr_sum = 0.0;
    let mut twine_sum = 0.0;
    let kernels = all_kernels(scale);
    for k in &kernels {
        let run = run_kernel(k).unwrap_or_else(|e| panic!("{e}"));
        let native = kernel_seconds(&run.meter, ExecMode::Native);
        let wamr = kernel_seconds(&run.meter, ExecMode::WamrAot) / native;
        let twine = kernel_seconds(&run.meter, ExecMode::TwineAot) / native;
        wamr_sum += wamr;
        twine_sum += twine;
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>9.2}   {:>12} {:>10}",
            run.name,
            1.0,
            wamr,
            twine,
            run.meter.total(),
            run.page_transitions
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{},{}",
            run.name,
            1.0,
            wamr,
            twine,
            run.meter.total(),
            run.page_transitions
        ));
    }
    let n = kernels.len() as f64;
    println!(
        "\nmean slowdown: wamr {:.2}x, twine {:.2}x (paper: wamr ~2.1x avg, twine above wamr)",
        wamr_sum / n,
        twine_sum / n
    );
    write_csv(
        "fig3_polybench.csv",
        "kernel,native,wamr,twine,instructions,page_transitions",
        &rows,
    );

    if has_flag("--tiers") {
        tier_comparison(scale);
    }

    if has_flag("--mem-sweep") {
        mem_sweep();
    }
}

/// Execute every kernel on all three tiers, check that the metered
/// virtual-time inputs (per-class counts, bytes, page transitions) are
/// bit-identical, and report the wall-clock speedups. Writes both the
/// human CSV (`results/fig3_tier_wallclock.csv`) and the machine-readable
/// perf trajectory (`BENCH_fig3.json` at the workspace root, DESIGN.md §8).
#[allow(clippy::too_many_lines)]
fn tier_comparison(scale: Scale) {
    use std::time::Instant;
    use twine_bench::write_bench_json;
    use twine_polybench::{compile_kernel, run_compiled};
    use twine_wasm::meter::InstrClass;
    use twine_wasm::ExecTier;

    const TIERS: [ExecTier; 3] = [ExecTier::Baseline, ExecTier::Fused, ExecTier::Reg];

    println!("\nExecution tiers: baseline dispatch vs fused vs register-allocated");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>9} {:>9}  {:>10}",
        "kernel", "base_ms", "fused_ms", "reg_ms", "fus/base", "reg/fus", "ops"
    );
    let mut rows = Vec::new();
    let mut json_kernels = Vec::new();
    // Geometric means of: fused over baseline, reg over baseline, reg over
    // fused.
    let mut log_sums = [0.0f64; 3];
    let kernels = all_kernels(scale);
    for k in &kernels {
        let compiled: Vec<_> = TIERS
            .iter()
            .map(|t| compile_kernel(k, *t).unwrap_or_else(|e| panic!("{e}")))
            .collect();
        // One untimed warm-up run per tier, then the minimum of three
        // timed runs: all tiers face the same cache/allocator state and
        // scheduler jitter on a single sample cannot skew the CSV.
        let time_min = |ck: &twine_polybench::CompiledKernel| {
            run_compiled(ck).unwrap_or_else(|e| panic!("{e}"));
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..3 {
                let t = Instant::now();
                last = Some(run_compiled(ck).unwrap_or_else(|e| panic!("{e}")));
                best = best.min(t.elapsed().as_secs_f64());
            }
            (best, last.expect("three runs"))
        };
        let timed: Vec<_> = compiled.iter().map(time_min).collect();
        let (rb, secs) = (&timed[0].1, [timed[0].0, timed[1].0, timed[2].0]);

        // The whole point of the design: virtual time must be unchanged.
        for (tier, (_, run)) in TIERS.iter().zip(timed.iter()).skip(1) {
            assert_eq!(
                rb.checksum.to_bits(),
                run.checksum.to_bits(),
                "{} ({tier}): checksum diverged from baseline",
                k.name
            );
            for c in InstrClass::all() {
                assert_eq!(
                    rb.meter.count(c),
                    run.meter.count(c),
                    "{} ({tier}): metered class {c:?} diverged from baseline",
                    k.name
                );
            }
            assert_eq!(
                rb.meter.bytes_accessed,
                run.meter.bytes_accessed,
                "{} ({tier})",
                k.name
            );
            assert_eq!(
                rb.meter.page_transitions,
                run.meter.page_transitions,
                "{} ({tier})",
                k.name
            );
        }

        let fused_speedup = secs[0] / secs[1];
        let reg_speedup = secs[0] / secs[2];
        let reg_over_fused = secs[1] / secs[2];
        for (sum, s) in log_sums
            .iter_mut()
            .zip([fused_speedup, reg_speedup, reg_over_fused])
        {
            *sum += s.ln();
        }
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>8.2}x {:>8.2}x  {:>10}",
            k.name,
            secs[0] * 1e3,
            secs[1] * 1e3,
            secs[2] * 1e3,
            fused_speedup,
            reg_over_fused,
            compiled[1].code.code_size_lowered_ops()
        );
        rows.push(format!(
            "{},{:.6},{:.6},{:.6},{:.4},{:.4},{},{}",
            k.name,
            secs[0],
            secs[1],
            secs[2],
            fused_speedup,
            reg_over_fused,
            compiled[0].code.code_size_lowered_ops(),
            compiled[1].code.code_size_lowered_ops()
        ));
        json_kernels.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"wall_seconds\": {{\"baseline\": {:.6}, ",
                "\"fused\": {:.6}, \"reg\": {:.6}}}, \"meter_total\": {}, ",
                "\"page_transitions\": {}}}"
            ),
            k.name,
            secs[0],
            secs[1],
            secs[2],
            rb.meter.total(),
            rb.meter.page_transitions
        ));
    }
    let n = kernels.len() as f64;
    let geo: Vec<f64> = log_sums.iter().map(|s| (s / n).exp()).collect();
    println!(
        "\ngeomean wall-clock speedups: fused/baseline {:.2}x, reg/baseline {:.2}x, reg/fused {:.2}x",
        geo[0], geo[1], geo[2]
    );
    println!("virtual cycle streams: bit-identical across all three tiers (verified per kernel)");
    write_csv(
        "fig3_tier_wallclock.csv",
        "kernel,baseline_seconds,fused_seconds,reg_seconds,fused_speedup,reg_over_fused_speedup,baseline_ops,fused_ops",
        &rows,
    );
    write_bench_json(
        "BENCH_fig3.json",
        &format!(
            concat!(
                "{{\n  \"bench\": \"fig3_polybench\",\n  \"scale\": \"{}\",\n",
                "  \"tiers\": [\"baseline\", \"fused\", \"reg\"],\n",
                "  \"meters_identical\": true,\n  \"kernels\": [\n{}\n  ],\n",
                "  \"geomean_speedup\": {{\"fused_over_baseline\": {:.4}, ",
                "\"reg_over_baseline\": {:.4}, \"reg_over_fused\": {:.4}}}\n}}\n"
            ),
            match scale {
                Scale::Mini => "mini",
                Scale::Small => "small",
            },
            json_kernels.join(",\n"),
            geo[0],
            geo[1],
            geo[2]
        ),
    );
}

/// §V-B memory study: attach an EPC model of shrinking size to the kernels
/// the paper calls out and report fault escalation.
fn mem_sweep() {
    use twine_sgx::{Epc, SimClock};

    println!("\nMemory sweep (§V-B): EPC faults vs usable EPC size");
    println!("{:<16} {:>10} {:>12} {:>12}", "kernel", "epc_pages", "faults", "evictions");
    let mut rows = Vec::new();
    for name in ["deriche", "lu", "ludcmp", "gemm"] {
        let kernel = twine_polybench::kernels::Kernel {
            name: "sweep",
            source: twine_polybench::kernels::source_for(name, Scale::Small),
        };
        // Replay the page-touch stream against EPCs of different sizes.
        for pages in [4096usize, 1024, 256, 64] {
            let wasm = twine_minicc::compile_to_bytes(&kernel.source).expect("compile");
            let code = twine_wasm::compile::CompiledModule::from_bytes(&wasm).expect("wasm");
            let mut linker = twine_wasm::Linker::new();
            twine_core::runtime::register_libm(&mut linker);
            let mut inst = twine_wasm::Instance::instantiate(
                std::sync::Arc::new(code),
                linker,
                Box::new(()),
            )
            .expect("instantiate");
            struct Sink(std::sync::Arc<std::sync::Mutex<Epc>>);
            impl twine_wasm::PageSink for Sink {
                fn touch(&mut self, page: u64) {
                    self.0.lock().unwrap().touch(page);
                }
            }
            let epc = std::sync::Arc::new(std::sync::Mutex::new(Epc::new(pages, SimClock::new())));
            inst.set_page_sink(Some(Box::new(Sink(epc.clone()))));
            inst.invoke("init", &[]).expect("init");
            inst.invoke("kernel", &[]).expect("kernel");
            let stats = epc.lock().unwrap().stats();
            println!(
                "{:<16} {:>10} {:>12} {:>12}",
                name, pages, stats.faults, stats.evictions
            );
            rows.push(format!("{name},{pages},{},{}", stats.faults, stats.evictions));
        }
    }
    write_csv("fig3_mem_sweep.csv", "kernel,epc_pages,faults,evictions", &rows);
}
