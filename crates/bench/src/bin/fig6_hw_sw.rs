//! Figure 6: SGX hardware mode vs software (simulation) mode for the
//! in-file database — insertion, sequential and random reading, normalised
//! to Twine hardware mode.

use rand::SeedableRng;
use twine_baselines::{DbStorage, DbVariant, VariantDb};
use twine_bench::{arg_value, write_csv};
use twine_pfs::PfsMode;
use twine_sgx::SgxMode;
use twine_sqldb::speedtest;

fn measure(variant: DbVariant, mode: SgxMode, rows: u32) -> [f64; 3] {
    let mut db = VariantDb::open_with_epc(
        variant,
        DbStorage::File,
        mode,
        PfsMode::Intel,
        Some(2048), // 8 MiB EPC keeps the run fast while exercising paging
    );
    db.run(speedtest::micro_setup).expect("setup");
    let (_, ins) = db
        .run(|c| speedtest::micro_insert(c, rows, 1024))
        .expect("insert");
    let (_, seq) = db.run(speedtest::micro_sequential_read).expect("seq");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let (_, rnd) = db
        .run(|c| speedtest::micro_random_read(c, 400, &mut rng))
        .expect("rand");
    [ins.virtual_seconds, seq.virtual_seconds, rnd.virtual_seconds]
}

fn main() {
    let rows: u32 = arg_value("--rows").and_then(|s| s.parse().ok()).unwrap_or(6_000);
    println!("Figure 6 — SGX HW vs SW mode, in-file database, {rows} rows\n");
    let twine_hw = measure(DbVariant::Twine, SgxMode::Hardware, rows);
    let twine_sw = measure(DbVariant::Twine, SgxMode::Simulation, rows);
    let lkl_hw = measure(DbVariant::SgxLkl, SgxMode::Hardware, rows);
    let lkl_sw = measure(DbVariant::SgxLkl, SgxMode::Simulation, rows);

    let ops = ["Insertion", "Sequential", "Random"];
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}   (normalised to Twine HW)",
        "query", "twine-hw", "twine-sw", "lkl-hw", "lkl-sw"
    );
    let mut rows_csv = Vec::new();
    for i in 0..3 {
        let base = twine_hw[i].max(1e-9);
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            ops[i],
            1.0,
            twine_sw[i] / base,
            lkl_hw[i] / base,
            lkl_sw[i] / base
        );
        rows_csv.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            ops[i],
            1.0,
            twine_sw[i] / base,
            lkl_hw[i] / base,
            lkl_sw[i] / base
        ));
    }
    println!("\npaper shape: SW mode is cheaper than HW everywhere; the HW/SW gap is the");
    println!("cost assignable to SGX memory protection (largest for random reading).");
    write_csv("fig6_hw_sw.csv", "query,twine_hw,twine_sw,lkl_hw,lkl_sw", &rows_csv);
}
