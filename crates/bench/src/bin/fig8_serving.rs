//! Figure 8 (beyond the paper): serving economics of the session layer.
//!
//! The paper's embedding is one-shot — every call pays decode + validate +
//! AoT-lower + instantiate. The `TwineService` session layer amortises all
//! of that: N tenants share one content-addressed compiled module, and each
//! tenant's instance + WASI context persist across calls, so a *warm*
//! invocation runs the guest and nothing else.
//!
//! This harness opens N sessions over the same Wasm binary and drives M
//! calls per session, reporting cold-start vs warm-invocation latency
//! (wall-clock **and** modelled virtual cycles — metering semantics are
//! bit-identical either way, so virtual time shows only the boundary-copy
//! and extra-ECALL savings while wall-clock shows the compile/instantiate
//! savings) plus aggregate warm throughput.
//!
//! ```sh
//! cargo run -p twine-bench --release --bin fig8_serving [--sessions 8] [--calls 32]
//! ```

use std::time::Instant;

use twine_bench::{arg_value, write_bench_json, write_csv};
use twine_core::TwineBuilder;
use twine_wasm::{ExecTier, Value};

const GUEST_SRC: &str = r"
    int handle(int req) {
        int acc = 7;
        for (int i = 0; i < req % 64 + 64; i += 1) {
            if (i % 2 == 0) { acc = acc * 3 + i; } else { acc = acc - req; }
        }
        return acc;
    }
";

struct Phase {
    wall_us: Vec<f64>,
    cycles: Vec<u64>,
}

impl Phase {
    fn new() -> Self {
        Self {
            wall_us: Vec::new(),
            cycles: Vec::new(),
        }
    }
    fn mean_wall_us(&self) -> f64 {
        self.wall_us.iter().sum::<f64>() / self.wall_us.len().max(1) as f64
    }
    fn mean_cycles(&self) -> f64 {
        self.cycles.iter().sum::<u64>() as f64 / self.cycles.len().max(1) as f64
    }
}

fn main() {
    let sessions: usize = arg_value("--sessions")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    let calls: usize = arg_value("--calls")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
        .max(1);
    println!("Figure 8 — session serving: {sessions} sessions x {calls} calls\n");

    let wasm = twine_minicc::compile_to_bytes(GUEST_SRC).expect("guest compiles");
    let mut svc = TwineBuilder::new().build_service();

    // Cold starts: open_session (cache lookup/compile + boundary copy +
    // instantiate) plus the first invocation.
    let mut cold = Phase::new();
    for s in 0..sessions {
        let name = format!("tenant-{s}");
        let c0 = svc.clock().cycles();
        let t0 = Instant::now();
        svc.open_session(&name, &wasm).expect("open");
        let out = svc
            .invoke(&name, "handle", &[Value::I32(s as i32)])
            .expect("first call");
        cold.wall_us.push(t0.elapsed().as_secs_f64() * 1e6);
        cold.cycles.push(svc.clock().cycles() - c0);
        assert!(matches!(out[0], Value::I32(_)));
    }
    assert_eq!(
        svc.module_cache().len(),
        1,
        "all sessions share one compiled module"
    );
    assert_eq!(svc.module_cache().hits(), sessions as u64 - 1);

    // Warm invocations: persistent instance + WasiCtx; no decode, validate
    // or instantiate work at all.
    let mut warm = Phase::new();
    let warm_t0 = Instant::now();
    for call in 0..calls {
        for s in 0..sessions {
            let name = format!("tenant-{s}");
            let c0 = svc.clock().cycles();
            let t0 = Instant::now();
            svc.invoke(&name, "handle", &[Value::I32((s + call) as i32)])
                .expect("warm call");
            warm.wall_us.push(t0.elapsed().as_secs_f64() * 1e6);
            warm.cycles.push(svc.clock().cycles() - c0);
        }
    }
    let warm_wall_s = warm_t0.elapsed().as_secs_f64();
    let warm_calls = (sessions * calls) as f64;

    let throughput = warm_calls / warm_wall_s;
    println!(
        "{:<14} {:>14} {:>16} {:>18}",
        "phase", "mean wall (us)", "mean cycles", "throughput (c/s)"
    );
    println!(
        "{:<14} {:>14.2} {:>16.0} {:>18}",
        "cold-start",
        cold.mean_wall_us(),
        cold.mean_cycles(),
        "-"
    );
    println!(
        "{:<14} {:>14.2} {:>16.0} {:>18.0}",
        "warm", warm.mean_wall_us(), warm.mean_cycles(), throughput
    );
    println!(
        "\nwarm-call savings: {:.1}x wall-clock, {:.2}x modelled cycles",
        cold.mean_wall_us() / warm.mean_wall_us().max(1e-9),
        cold.mean_cycles() / warm.mean_cycles().max(1e-9)
    );
    println!(
        "module cache: {} modules, {} hits / {} misses",
        svc.module_cache().len(),
        svc.module_cache().hits(),
        svc.module_cache().misses()
    );

    write_csv(
        "fig8_serving.csv",
        "phase,sessions,calls,mean_wall_us,mean_cycles,throughput_calls_per_s",
        &[
            format!(
                "cold,{sessions},1,{:.3},{:.0},",
                cold.mean_wall_us(),
                cold.mean_cycles()
            ),
            format!(
                "warm,{sessions},{calls},{:.3},{:.0},{throughput:.0}",
                warm.mean_wall_us(),
                warm.mean_cycles()
            ),
        ],
    );

    // Machine-readable perf trajectory (DESIGN.md §8): future PRs diff
    // cold/warm serving latency against this file.
    write_bench_json(
        "BENCH_fig8.json",
        &format!(
            concat!(
                "{{\n  \"bench\": \"fig8_serving\",\n  \"exec_tier\": \"{}\",\n",
                "  \"sessions\": {}, \n  \"calls\": {},\n",
                "  \"cold\": {{\"mean_wall_us\": {:.3}, \"mean_cycles\": {:.0}}},\n",
                "  \"warm\": {{\"mean_wall_us\": {:.3}, \"mean_cycles\": {:.0}}},\n",
                "  \"warm_throughput_calls_per_s\": {:.0}\n}}\n"
            ),
            ExecTier::default(),
            sessions,
            calls,
            cold.mean_wall_us(),
            cold.mean_cycles(),
            warm.mean_wall_us(),
            warm.mean_cycles(),
            throughput,
        ),
    );
}
