//! Figure 8 (beyond the paper): serving economics of the session layer,
//! now with a multi-threaded scaling axis.
//!
//! The paper's embedding is one-shot — every call pays decode + validate +
//! AoT-lower + instantiate. The `TwineService` session layer amortises all
//! of that: N tenants share one content-addressed compiled module, and each
//! tenant's instance + WASI context persist across calls, so a *warm*
//! invocation runs the guest and nothing else.
//!
//! **Phase 1 (cold vs warm)** opens N sessions over the same Wasm binary and
//! drives M calls per session on a single-threaded service, reporting
//! cold-start vs warm-invocation latency (wall-clock **and** modelled
//! virtual cycles).
//!
//! **Phase 2 (`--threads T`)** sweeps shard counts 1, 2, 4, … up to `T` on
//! the [`ShardedService`]: the same number of sessions and warm calls each
//! time, driven by one client thread per shard. Each configuration reports
//!
//! * real wall-clock throughput (depends on how many host cores this
//!   machine actually has), and
//! * **modelled scaling** — per-shard *busy* nanoseconds are measured on
//!   the worker threads themselves; `max(busy)` across shards is the
//!   parallel makespan on a machine with one core per shard, and
//!   `makespan(1 shard) / makespan(T shards)` is the machine-independent
//!   warm-throughput scaling figure recorded in `BENCH_fig8.json`
//!   (DESIGN.md §9; same philosophy as the virtual-time methodology of
//!   DESIGN.md §4 — report the model, not the host's scheduler).
//!
//! The sweep also *verifies* serving semantics: per-session results,
//! per-class meters and fuel of the sharded run are asserted bit-identical
//! to a single-threaded replay — the binary panics (and CI fails) on any
//! cross-thread divergence.
//!
//! **Phase 3 (`--churn`)** is the control-plane economics axis
//! (DESIGN.md §10): thousands of sessions arriving, invoking, being
//! revisited and expiring against a sharded service with a *tiny*
//! eviction budget (`max_live_sessions` per shard), so the service is
//! continuously parking LRU sessions (sealed out of the enclave) and
//! restoring them warm. Reports p50/p99 invoke latency plus the
//! park/restore/seal-traffic counters into `BENCH_fig8.json`
//! (`churn_axis`; `null` when the phase is skipped).
//!
//! **`--pool`** enables the instance-pooling/memory-image fast path
//! (DESIGN.md §11) for the cold phase and the churn axis: cold opens
//! become pool-slot checkouts, parks seal O(dirty pages) deltas against
//! the module's shared base image, and restores patch a pooled slot
//! instead of re-instantiating. The churn differential suite proves the
//! two modes observably identical; this harness reports their economics
//! (`pool_hit_rate`, `restore_p50_us`/`restore_p99_us`, delta seal
//! traffic) side by side in `BENCH_fig8.json`.
//!
//! ```sh
//! cargo run -p twine-bench --release --bin fig8_serving \
//!     [--sessions 8] [--calls 32] [--threads 8] \
//!     [--churn] [--churn-sessions 2000] [--churn-budget 16] \
//!     [--pool] [--pool-slots 32] [--faults <seed>]
//! ```
//!
//! **`--faults <seed>`** arms a seeded chaos [`FaultPlan`] on the churn
//! axis (DESIGN.md §12): seal/unseal failures, transient ECALL/OCALL
//! aborts, EPC spikes and corrupt pool slots are injected at
//! trust-boundary crossings while the churn workload runs. Every call must
//! still succeed (the chaos differential suite proves guest-visible
//! semantics are untouched); the fault/retry/fallback tallies land in the
//! `churn_axis` of `BENCH_fig8.json` and the throughput floor relaxes to
//! `TWINE_CHAOS_CHURN_FLOOR`.
//!
//! [`FaultPlan`]: twine_sgx::FaultPlan

use std::sync::{Arc, Barrier};
use std::time::Instant;

use twine_bench::{arg_value, has_flag, write_bench_json, write_csv};
use twine_core::{ControlPlane, ControlStats, ShardedService, TwineBuilder};
use twine_wasm::{ExecTier, Value};

const GUEST_SRC: &str = r"
    int slots[256];
    int handle(int req) {
        int acc = 7;
        for (int i = 0; i < req % 64 + 64; i += 1) {
            if (i % 2 == 0) { acc = acc * 3 + i; } else { acc = acc - req; }
        }
        slots[req % 256] = acc;
        return acc;
    }
";

struct Phase {
    wall_us: Vec<f64>,
    cycles: Vec<u64>,
}

impl Phase {
    fn new() -> Self {
        Self {
            wall_us: Vec::new(),
            cycles: Vec::new(),
        }
    }
    fn mean_wall_us(&self) -> f64 {
        self.wall_us.iter().sum::<f64>() / self.wall_us.len().max(1) as f64
    }
    fn mean_cycles(&self) -> f64 {
        self.cycles.iter().sum::<u64>() as f64 / self.cycles.len().max(1) as f64
    }
}

/// One `--threads` sweep point.
struct ScalePoint {
    threads: usize,
    wall_s: f64,
    /// Modelled parallel makespan: max per-shard busy nanoseconds.
    makespan_ns: u64,
    calls: usize,
}

impl ScalePoint {
    fn throughput(&self) -> f64 {
        self.calls as f64 / self.wall_s.max(1e-12)
    }
}

/// Session names balanced across `threads` shards: at most
/// `ceil(sessions / threads)` per shard (exact when `threads` divides
/// `sessions`, as in the sweep), so the modelled makespan measures
/// scaling, not hash-placement luck. The ceiling keeps the admission
/// loop terminating for any (sessions, threads) pair.
fn balanced_names(svc: &ShardedService, sessions: usize, threads: usize) -> Vec<String> {
    let per_shard = sessions.div_ceil(threads);
    let mut counts = vec![0usize; threads];
    let mut names = Vec::with_capacity(sessions);
    let mut i = 0usize;
    while names.len() < sessions {
        let name = format!("tenant-{i}");
        let s = svc.shard_of(&name);
        if counts[s] < per_shard {
            counts[s] += 1;
            names.push(name);
        }
        i += 1;
    }
    names
}

/// Warm calls per pipelined batch: amortises the cross-thread hand-off
/// (and, on boxes with fewer cores than shards, scheduler noise inside
/// the measured busy windows) without giving up inter-session
/// interleaving on each shard.
const BATCH: usize = 8;

/// `calls` warm calls per session owned by one client (pipelined in
/// batches of [`BATCH`]).
fn client_calls(svc: &ShardedService, mine: &[String], calls: usize) {
    let mut done = 0;
    while done < calls {
        let n = BATCH.min(calls - done);
        for (k, name) in mine.iter().enumerate() {
            let reqs: Vec<Vec<Value>> = (0..n)
                .map(|c| vec![Value::I32(((done + c) * 7 + k) as i32)])
                .collect();
            let out = svc.invoke_batch(name, "handle", reqs).expect("warm batch");
            assert_eq!(out.len(), n);
        }
        done += n;
    }
}

/// Drive `calls` warm calls per session from one **persistent** client
/// thread per shard; returns (wall seconds, modelled makespan ns).
///
/// The measured window is gated by barriers: clients are spawned and do
/// their `warmup` calls per session *before* the window opens, then park
/// on a start barrier; the clock runs from the barrier release until the
/// last client reaches the finish barrier. PR 5's driver spawned and
/// joined the client threads *inside* the timed window, so at high shard
/// counts the wall figure measured thread setup and teardown as much as
/// serving — one of the compounding causes of the flat wall-clock curve
/// this sweep used to report (ROADMAP open item 1).
fn drive_warm(
    svc: &Arc<ShardedService>,
    names: &[String],
    warmup: usize,
    calls: usize,
) -> (f64, u64) {
    let threads = svc.shard_count();
    let ready = Arc::new(Barrier::new(threads + 1));
    let start = Arc::new(Barrier::new(threads + 1));
    let finish = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|shard| {
            let svc = Arc::clone(svc);
            let (ready, start, finish) =
                (Arc::clone(&ready), Arc::clone(&start), Arc::clone(&finish));
            let mine: Vec<String> = names
                .iter()
                .filter(|n| svc.shard_of(n) == shard)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                client_calls(&svc, &mine, warmup);
                ready.wait();
                // Shards are idle here while the driver snapshots busy_ns.
                start.wait();
                client_calls(&svc, &mine, calls);
                finish.wait();
            })
        })
        .collect();
    ready.wait();
    let busy0: Vec<u64> = svc.shard_stats().iter().map(|s| s.busy_ns).collect();
    // The driver is the (threads + 1)-th barrier participant: the clock
    // starts just before the release that unparks every client at once,
    // and stops when the last client reaches the finish barrier.
    let t0 = Instant::now();
    start.wait();
    finish.wait();
    let wall_s = t0.elapsed().as_secs_f64();
    for h in handles {
        h.join().expect("client thread");
    }
    let makespan_ns = svc
        .shard_stats()
        .iter()
        .zip(&busy0)
        .map(|(s, b0)| s.busy_ns - b0)
        .max()
        .unwrap_or(0);
    (wall_s, makespan_ns)
}

/// Assert per-session serving semantics are thread-count-independent:
/// every (values, meter, fuel) triple of the sharded run must equal the
/// single-threaded service's replay of the same per-session sequence.
fn verify_bit_identity(wasm: &[u8], threads: usize, sessions: usize, calls: usize) {
    let svc = Arc::new(TwineBuilder::new().build_sharded(threads));
    let names = balanced_names(&svc, sessions, threads);
    for name in &names {
        svc.open_session(name, wasm).expect("open");
    }
    let handles: Vec<_> = (0..svc.shard_count())
        .map(|shard| {
            let svc = Arc::clone(&svc);
            let mine: Vec<(usize, String)> = names
                .iter()
                .enumerate()
                .filter(|(_, n)| svc.shard_of(n) == shard)
                .map(|(i, n)| (i, n.clone()))
                .collect();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for (i, name) in &mine {
                    let mut seq = Vec::new();
                    for call in 0..calls {
                        let req = (i * 13 + call * 5) as i32;
                        let (report, values) = svc
                            .invoke_with_report(name, "handle", &[Value::I32(req)])
                            .expect("verified call");
                        seq.push((values, report.meter, report.fuel_remaining));
                    }
                    out.push((*i, seq));
                }
                out
            })
        })
        .collect();
    let mut sharded: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("verify thread"))
        .collect();
    sharded.sort_by_key(|(i, _)| *i);

    let mut single = TwineBuilder::new().build_service();
    for name in &names {
        single.open_session(name, wasm).expect("open");
    }
    for (i, name) in names.iter().enumerate() {
        for call in 0..calls {
            let req = (i * 13 + call * 5) as i32;
            let (report, values) = single
                .invoke_with_report(name, "handle", &[Value::I32(req)])
                .expect("replay call");
            let (values_t, meter_t, fuel_t) = &sharded[i].1[call];
            assert_eq!(&values, values_t, "results diverged: session {name} call {call}");
            assert_eq!(
                &report.meter, meter_t,
                "cross-thread meter divergence: session {name} call {call}"
            );
            assert_eq!(
                &report.fuel_remaining, fuel_t,
                "fuel diverged: session {name} call {call}"
            );
        }
    }
}

/// Deterministic per-client stream (Knuth MMIX constants) so the churn
/// workload is reproducible across runs and machines.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Outcome of one churn run (phase 3).
struct ChurnOutcome {
    shards: usize,
    sessions: usize,
    budget: usize,
    invokes: usize,
    wall_s: f64,
    p50_us: f64,
    p99_us: f64,
    /// Latency percentiles of the revisit invokes that found their tenant
    /// parked — the calls that pay the unseal + restore path.
    restore_p50_us: f64,
    restore_p99_us: f64,
    pool: Option<usize>,
    /// Chaos fault seed (`--faults`): the churn run doubles as a fault
    /// drill when set.
    faults: Option<u64>,
    stats: ControlStats,
}

impl ChurnOutcome {
    fn throughput(&self) -> f64 {
        self.invokes as f64 / self.wall_s.max(1e-12)
    }
    fn pool_hit_rate(&self) -> f64 {
        let total = self.stats.pool_hits + self.stats.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.stats.pool_hits as f64 / total as f64
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Phase 3 driver: `total` sessions stream through `shards` shards whose
/// eviction budget (`max_live_sessions`) is far below the number of
/// concurrently open sessions, so the control plane parks and restores
/// continuously. Each of the `shards` client threads owns a disjoint
/// tenant subset: a tenant arrives, serves a couple of calls, gets
/// revisited later (usually after eviction parked it — the revisit pays
/// the warm-restore path), and expires once it falls out of its client's
/// keep-alive window. Returns invoke-latency percentiles and the control
/// counters; panics on any failed call, so the bench doubles as a smoke
/// test of the eviction machinery under concurrency.
fn run_churn(
    wasm: &[u8],
    shards: usize,
    total: usize,
    budget: usize,
    pool: Option<usize>,
    faults: Option<u64>,
) -> ChurnOutcome {
    /// Sessions each client keeps open: enough above the per-shard budget
    /// that parking never stops.
    const WINDOW: usize = 48;
    /// Warm calls served on arrival, and revisits of older tenants per
    /// arrival (revisits are the restore path).
    const ARRIVAL_CALLS: usize = 2;
    const REVISITS: usize = 2;

    let control = ControlPlane {
        max_live_sessions: Some(budget),
        pool_slots_per_module: pool,
        ..ControlPlane::default()
    };
    let mut builder = TwineBuilder::new().control_plane(control);
    if let Some(seed) = faults {
        builder = builder.faults(Arc::new(twine_sgx::FaultPlan::new(
            twine_sgx::FaultConfig::chaos(seed),
        )));
    }
    let svc = Arc::new(builder.build_sharded(shards));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..shards)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let wasm = wasm.to_vec();
            std::thread::spawn(move || {
                let mut lcg = Lcg(0x9e3779b97f4a7c15 ^ c as u64);
                let mut lat_us: Vec<f64> = Vec::new();
                let mut restore_us: Vec<f64> = Vec::new();
                let mut open: Vec<usize> = Vec::new();
                let invoke = |svc: &ShardedService, i: usize, req: i32, lat: &mut Vec<f64>| {
                    let t = Instant::now();
                    svc.invoke(&format!("churn-{i}"), "handle", &[Value::I32(req)])
                        .expect("churn invoke");
                    let us = t.elapsed().as_secs_f64() * 1e6;
                    lat.push(us);
                    us
                };
                for i in (c..total).step_by(shards) {
                    // Arrive.
                    svc.open_session(&format!("churn-{i}"), &wasm).expect("open");
                    for k in 0..ARRIVAL_CALLS {
                        invoke(&svc, i, (i + k) as i32, &mut lat_us);
                    }
                    open.push(i);
                    // Revisit older tenants (restore path for parked ones;
                    // revisits that find their tenant sealed are sampled
                    // into the restore-latency percentiles).
                    for _ in 0..REVISITS {
                        let j = open[(lcg.next() as usize) % open.len()];
                        let parked = svc.session_parked(&format!("churn-{j}")) == Some(true);
                        let us = invoke(&svc, j, j as i32, &mut lat_us);
                        if parked {
                            restore_us.push(us);
                        }
                    }
                    // Expire the oldest tenant past the keep-alive window.
                    if open.len() > WINDOW {
                        let gone = open.remove(0);
                        svc.close_session(&format!("churn-{gone}")).expect("close");
                    }
                }
                for gone in open {
                    svc.close_session(&format!("churn-{gone}")).expect("close");
                }
                (lat_us, restore_us)
            })
        })
        .collect();
    let (mut lat_us, mut restore_us) = (Vec::new(), Vec::new());
    for h in handles {
        let (lat, restore) = h.join().expect("churn client");
        lat_us.extend(lat);
        restore_us.extend(restore);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    restore_us.sort_by(f64::total_cmp);
    let stats = svc.control_stats();
    assert!(stats.parks > 0, "churn under a tiny budget must park");
    assert!(stats.restores > 0, "revisits must restore parked sessions");
    assert!(!restore_us.is_empty(), "some revisit must have found its tenant parked");
    assert_eq!(svc.session_count(), 0, "every churned session expired");
    if pool.is_some() {
        assert!(stats.pool_hits > 0, "pooled churn must recycle slots: {stats:?}");
        if faults.is_none() {
            assert!(
                stats.delta_sealed_bytes == stats.sealed_bytes,
                "poolable guest: every park seals a delta: {stats:?}"
            );
        } else {
            // Under faults a seal failure mid-delta degrades that park to
            // a full image by design, so delta traffic is only a subset.
            assert!(
                stats.delta_sealed_bytes <= stats.sealed_bytes,
                "delta traffic cannot exceed total seal traffic: {stats:?}"
            );
        }
    }
    if faults.is_some() {
        assert!(
            stats.faults_injected > 0,
            "a seeded chaos churn run must actually inject faults: {stats:?}"
        );
        assert_eq!(stats.quarantines, 0, "injected faults are transient: {stats:?}");
    }
    ChurnOutcome {
        shards,
        sessions: total,
        budget,
        invokes: lat_us.len(),
        wall_s,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        restore_p50_us: percentile(&restore_us, 0.50),
        restore_p99_us: percentile(&restore_us, 0.99),
        pool,
        faults,
        stats,
    }
}

fn main() {
    let sessions: usize = arg_value("--sessions")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    let calls: usize = arg_value("--calls")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
        .max(1);
    let max_threads: usize = arg_value("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    let pool: Option<usize> = has_flag("--pool").then(|| {
        arg_value("--pool-slots")
            .and_then(|s| s.parse().ok())
            .unwrap_or(32)
            .max(1)
    });
    // Seeded chaos fault injection for the churn axis (DESIGN.md §12):
    // the run doubles as a fault drill — every counter still lands in
    // BENCH_fig8.json, plus the fault/retry/fallback tallies.
    let fault_seed: Option<u64> = arg_value("--faults").and_then(|s| s.parse().ok());
    println!(
        "Figure 8 — session serving: {sessions} sessions x {calls} calls (pooling {}{})\n",
        if pool.is_some() { "on" } else { "off" },
        fault_seed.map_or_else(String::new, |s| format!(", chaos faults seed {s}"))
    );

    let wasm = twine_minicc::compile_to_bytes(GUEST_SRC).expect("guest compiles");
    let mut builder = TwineBuilder::new();
    if let Some(n) = pool {
        builder = builder.pool_slots_per_module(n);
    }
    let mut svc = builder.build_service();

    // The one-time module compile (decode + validate + AoT-lower) is paid
    // once per module *content*, not per session — report it separately
    // instead of folding it into the first tenant's cold-open figure.
    let compile_t0 = Instant::now();
    let (_, _, cache_hit) = svc
        .module_cache()
        .get_or_compile(&wasm)
        .expect("guest compiles");
    let first_compile_us = compile_t0.elapsed().as_secs_f64() * 1e6;
    assert!(!cache_hit, "first compile cannot be a cache hit");

    // Cold opens: open_session (cache hit + boundary copy + instantiate —
    // or, with --pool, a pool-slot checkout) plus the first invocation.
    // Each probe tenant closes before the next opens, the steady state of
    // a serving fleet (with pooling, close recycles the slot the next
    // open checks out). One unmeasured probe first: it pays the one-time
    // instantiate that seeds the pool (and warms the allocator), so the
    // measured probes see the steady state in both modes.
    svc.open_session("cold-warmup", &wasm).expect("open");
    svc.invoke("cold-warmup", "handle", &[Value::I32(0)]).expect("first call");
    svc.close_session("cold-warmup");
    let mut cold = Phase::new();
    for s in 0..sessions {
        let name = format!("cold-{s}");
        let c0 = svc.clock().cycles();
        let t0 = Instant::now();
        svc.open_session(&name, &wasm).expect("open");
        let out = svc
            .invoke(&name, "handle", &[Value::I32(s as i32)])
            .expect("first call");
        cold.wall_us.push(t0.elapsed().as_secs_f64() * 1e6);
        cold.cycles.push(svc.clock().cycles() - c0);
        assert!(matches!(out[0], Value::I32(_)));
        svc.close_session(&name);
    }

    // The warm tenants (opens not measured).
    for s in 0..sessions {
        svc.open_session(&format!("tenant-{s}"), &wasm).expect("open");
    }
    assert_eq!(
        svc.module_cache().len(),
        1,
        "all sessions share one compiled module"
    );
    assert_eq!(svc.module_cache().hits(), 2 * sessions as u64 + 1);

    // Warm invocations: persistent instance + WasiCtx; no decode, validate
    // or instantiate work at all.
    let mut warm = Phase::new();
    let warm_t0 = Instant::now();
    for call in 0..calls {
        for s in 0..sessions {
            let name = format!("tenant-{s}");
            let c0 = svc.clock().cycles();
            let t0 = Instant::now();
            svc.invoke(&name, "handle", &[Value::I32((s + call) as i32)])
                .expect("warm call");
            warm.wall_us.push(t0.elapsed().as_secs_f64() * 1e6);
            warm.cycles.push(svc.clock().cycles() - c0);
        }
    }
    let warm_wall_s = warm_t0.elapsed().as_secs_f64();
    let warm_calls = (sessions * calls) as f64;

    let throughput = warm_calls / warm_wall_s;
    println!(
        "{:<14} {:>14} {:>16} {:>18}",
        "phase", "mean wall (us)", "mean cycles", "throughput (c/s)"
    );
    println!(
        "{:<14} {:>14.2} {:>16} {:>18}",
        "first-compile", first_compile_us, "-", "-"
    );
    println!(
        "{:<14} {:>14.2} {:>16.0} {:>18}",
        "cold-open",
        cold.mean_wall_us(),
        cold.mean_cycles(),
        "-"
    );
    println!(
        "{:<14} {:>14.2} {:>16.0} {:>18.0}",
        "warm", warm.mean_wall_us(), warm.mean_cycles(), throughput
    );
    println!(
        "\nwarm-call savings: {:.1}x wall-clock, {:.2}x modelled cycles",
        cold.mean_wall_us() / warm.mean_wall_us().max(1e-9),
        cold.mean_cycles() / warm.mean_cycles().max(1e-9)
    );
    println!(
        "module cache: {} modules, {} hits / {} misses",
        svc.module_cache().len(),
        svc.module_cache().hits(),
        svc.module_cache().misses()
    );

    // Soft pooled-mode target (ISSUE: cold-open ≤ 3x a warm call once the
    // compile is amortised and opens are slot checkouts). Env-overridable
    // so slow or noisy hosts can relax it without patching the harness.
    let cold_warm_ratio = cold.mean_wall_us() / warm.mean_wall_us().max(1e-9);
    if pool.is_some() {
        let ratio_ceiling: f64 = std::env::var("TWINE_COLD_WARM_RATIO")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3.0);
        assert!(
            cold_warm_ratio <= ratio_ceiling,
            "pooled cold-open is {cold_warm_ratio:.2}x a warm call (ceiling \
             {ratio_ceiling}x; override with TWINE_COLD_WARM_RATIO)"
        );
    }

    // -----------------------------------------------------------------
    // Threads axis: warm-throughput scaling of the sharded service.
    // -----------------------------------------------------------------
    let mut sweep: Vec<usize> = Vec::new();
    let mut t = 1;
    while t < max_threads {
        sweep.push(t);
        t *= 2;
    }
    sweep.push(max_threads);
    // The same total work at every point: sessions divisible by every
    // swept shard count, and at least two per shard at the widest point so
    // the makespan is not a single session's tail.
    let lcm = sweep.iter().fold(1usize, |a, &b| a * b / gcd(a, b));
    let scale_sessions = lcm * sessions.div_ceil(lcm).max(2);
    let scale_calls = calls.max(96);

    println!(
        "\nthreads axis: {scale_sessions} sessions x {scale_calls} warm calls per point"
    );
    println!(
        "{:<9} {:>12} {:>18} {:>20} {:>14} {:>16}",
        "threads", "wall (ms)", "makespan (ms)", "throughput (c/s)", "wall scaling", "modelled scaling"
    );
    let mut points: Vec<ScalePoint> = Vec::new();
    for &threads in &sweep {
        let sharded = Arc::new(TwineBuilder::new().build_sharded(threads));
        let names = balanced_names(&sharded, scale_sessions, threads);
        for name in &names {
            sharded.open_session(name, &wasm).expect("open");
        }
        // Two warm-up calls per session (before the timed window opens) so
        // every instance's frame arena has grown and caches are hot.
        let (wall_s, makespan_ns) = drive_warm(&sharded, &names, 2, scale_calls);
        points.push(ScalePoint {
            threads,
            wall_s,
            makespan_ns,
            calls: scale_sessions * scale_calls,
        });
    }
    let base_makespan = points[0].makespan_ns.max(1);
    let base_throughput = points[0].throughput().max(1e-12);
    for p in &points {
        println!(
            "{:<9} {:>12.2} {:>18.2} {:>20.0} {:>13.2}x {:>15.2}x",
            p.threads,
            p.wall_s * 1e3,
            p.makespan_ns as f64 / 1e6,
            p.throughput(),
            p.throughput() / base_throughput,
            base_makespan as f64 / p.makespan_ns.max(1) as f64,
        );
    }

    // Differential verification (small, with reports): the binary fails on
    // any cross-thread meter/result/fuel divergence.
    verify_bit_identity(&wasm, *sweep.last().unwrap(), scale_sessions.min(16), 6);
    println!("\nbit-identity vs single-threaded service: verified");

    // -----------------------------------------------------------------
    // Churn axis (--churn): eviction economics under arrival/expiry.
    // -----------------------------------------------------------------
    let churn = has_flag("--churn").then(|| {
        let churn_sessions: usize = arg_value("--churn-sessions")
            .and_then(|s| s.parse().ok())
            .unwrap_or(2000)
            .max(64);
        let churn_budget: usize = arg_value("--churn-budget")
            .and_then(|s| s.parse().ok())
            .unwrap_or(16)
            .max(1);
        let churn_shards = max_threads.clamp(1, 4);
        println!(
            "\nchurn axis: {churn_sessions} sessions through {churn_shards} shard(s), \
             eviction budget {churn_budget} live sessions/shard, pooling {}{}",
            if pool.is_some() { "on" } else { "off" },
            fault_seed.map_or_else(String::new, |s| format!(", chaos faults seed {s}"))
        );
        let o = run_churn(&wasm, churn_shards, churn_sessions, churn_budget, pool, fault_seed);
        println!(
            "  {} invokes in {:.2}s ({:.0} calls/s): p50 {:.1} us, p99 {:.1} us \
             (restore p50 {:.1} us, p99 {:.1} us)",
            o.invokes,
            o.wall_s,
            o.throughput(),
            o.p50_us,
            o.p99_us,
            o.restore_p50_us,
            o.restore_p99_us
        );
        println!(
            "  evictions: {} parks, {} restores; seal traffic {:.1} MiB out, {:.1} MiB in",
            o.stats.parks,
            o.stats.restores,
            o.stats.sealed_bytes as f64 / (1 << 20) as f64,
            o.stats.unsealed_bytes as f64 / (1 << 20) as f64
        );
        if o.pool.is_some() {
            println!(
                "  pool: {:.0}% hit rate ({} hits / {} misses), {} dirty pages \
                 restored, delta seal traffic {:.2} MiB",
                o.pool_hit_rate() * 100.0,
                o.stats.pool_hits,
                o.stats.pool_misses,
                o.stats.dirty_pages_restored,
                o.stats.delta_sealed_bytes as f64 / (1 << 20) as f64
            );
        }
        if o.faults.is_some() {
            println!(
                "  chaos: {} faults injected, {} retries, {} fallback parks, \
                 {} pool discards, {} quarantines",
                o.stats.faults_injected,
                o.stats.retries,
                o.stats.fallback_parks,
                o.stats.pool_discards,
                o.stats.quarantines
            );
        }
        if o.pool.is_some() && o.faults.is_none() {
            // Soft pooled-churn floor (ISSUE: ≥10x the PR 7 full-image
            // baseline of 470 calls/s on the reference configuration).
            let floor: f64 = std::env::var("TWINE_POOL_CHURN_FLOOR")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(4_700.0);
            assert!(
                o.throughput() >= floor,
                "pooled churn throughput {:.0} calls/s is below the floor of \
                 {floor:.0} (override with TWINE_POOL_CHURN_FLOOR)",
                o.throughput()
            );
        } else if o.pool.is_some() {
            // Under injected faults the retry backoffs and fallback parks
            // cost real work; hold a separate, softer floor so a chaos
            // regression (e.g. an accidental retry storm) still trips CI.
            let floor: f64 = std::env::var("TWINE_CHAOS_CHURN_FLOOR")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(2_000.0);
            assert!(
                o.throughput() >= floor,
                "chaos churn throughput {:.0} calls/s is below the floor of \
                 {floor:.0} (override with TWINE_CHAOS_CHURN_FLOOR)",
                o.throughput()
            );
        }
        o
    });

    let max_point = points.last().expect("sweep non-empty");
    let max_scaling = base_makespan as f64 / max_point.makespan_ns.max(1) as f64;
    let max_wall_scaling = max_point.throughput() / base_throughput;
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Modelled-scaling floor: only meaningful where busy_ns is real
    // per-thread CPU time (Linux); the wall-clock fallback absorbs
    // scheduler preemption once shards outnumber cores, which would fail
    // the floor on a small non-Linux box even though serving is correct.
    let cpu_time_accounting = std::path::Path::new("/proc/thread-self/schedstat").exists();
    if !cpu_time_accounting {
        println!(
            "warning: no per-thread CPU-time accounting on this platform \
             (/proc/thread-self/schedstat missing); busy_ns fell back to \
             wall clock and the modelled-scaling floor was NOT asserted"
        );
    } else if max_point.threads >= 8 {
        assert!(
            max_scaling >= 3.0,
            "modelled warm-throughput scaling at {} threads is {max_scaling:.2}x (< 3x)",
            max_point.threads
        );
    }

    // Measured wall-clock floor: only asserted when the host actually has
    // a core per shard — on smaller machines the shards time-slice and
    // wall throughput physically cannot scale, which is exactly the
    // modelled-vs-measured distinction recorded in BENCH_fig8.json
    // (DESIGN.md §9). `TWINE_WALL_SCALING_FLOOR` overrides the default
    // floor of 4.0 (CI uses a conservative 2.5 to absorb runner noise).
    let wall_floor: f64 = std::env::var("TWINE_WALL_SCALING_FLOOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4.0);
    let wall_scaling_asserted = max_point.threads >= 8 && host_cores >= max_point.threads;
    if wall_scaling_asserted {
        assert!(
            max_wall_scaling >= wall_floor,
            "measured wall-clock scaling at {} threads is {max_wall_scaling:.2}x \
             (< {wall_floor}x) on a {host_cores}-core host",
            max_point.threads
        );
    } else if max_point.threads >= 8 {
        println!(
            "warning: host has {host_cores} core(s) for {} shards; measured \
             wall-clock scaling ({max_wall_scaling:.2}x) NOT asserted — see \
             modelled scaling ({max_scaling:.2}x) for the per-core figure",
            max_point.threads
        );
    }

    let mut rows = vec![
        format!(
            "cold,1,{sessions},1,{:.3},{:.0},",
            cold.mean_wall_us(),
            cold.mean_cycles()
        ),
        format!(
            "warm,1,{sessions},{calls},{:.3},{:.0},{throughput:.0}",
            warm.mean_wall_us(),
            warm.mean_cycles()
        ),
    ];
    for p in &points {
        rows.push(format!(
            "sharded-warm,{},{scale_sessions},{scale_calls},,,{:.0}",
            p.threads,
            p.calls as f64 / p.wall_s.max(1e-12)
        ));
    }
    write_csv(
        "fig8_serving.csv",
        "phase,threads,sessions,calls,mean_wall_us,mean_cycles,throughput_calls_per_s",
        &rows,
    );

    // Machine-readable perf trajectory (DESIGN.md §8/§9): future PRs diff
    // serving latency and thread scaling against this file.
    let threads_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"threads\": {}, \"wall_ms\": {:.3}, ",
                    "\"modelled_makespan_ms\": {:.3}, ",
                    "\"wall_throughput_calls_per_s\": {:.0}, ",
                    "\"measured_wall_scaling_x\": {:.3}, ",
                    "\"modelled_scaling_x\": {:.3}}}"
                ),
                p.threads,
                p.wall_s * 1e3,
                p.makespan_ns as f64 / 1e6,
                p.throughput(),
                p.throughput() / base_throughput,
                base_makespan as f64 / p.makespan_ns.max(1) as f64,
            )
        })
        .collect();
    // Control-plane churn axis: `null` when `--churn` was not requested,
    // so the file's shape is stable either way.
    let churn_json = churn.as_ref().map_or_else(
        || "null".to_string(),
        |o| {
            format!(
                concat!(
                    "{{\n",
                    "    \"sessions\": {}, \"shards\": {}, \"eviction_budget_per_shard\": {},\n",
                    "    \"invokes\": {}, \"wall_s\": {:.3}, \"throughput_calls_per_s\": {:.0},\n",
                    "    \"p50_us\": {:.3}, \"p99_us\": {:.3},\n",
                    "    \"restore_p50_us\": {:.3}, \"restore_p99_us\": {:.3},\n",
                    "    \"parks\": {}, \"restores\": {},\n",
                    "    \"sealed_bytes\": {}, \"unsealed_bytes\": {},\n",
                    "    \"pool_enabled\": {}, \"pool_slots_per_module\": {},\n",
                    "    \"pool_hits\": {}, \"pool_misses\": {}, \"pool_hit_rate\": {:.4},\n",
                    "    \"dirty_pages_restored\": {}, \"delta_sealed_bytes\": {},\n",
                    "    \"faults_enabled\": {}, \"fault_seed\": {},\n",
                    "    \"faults_injected\": {}, \"retries\": {}, \"fallback_parks\": {},\n",
                    "    \"pool_discards\": {}, \"quarantines\": {}\n  }}"
                ),
                o.sessions,
                o.shards,
                o.budget,
                o.invokes,
                o.wall_s,
                o.throughput(),
                o.p50_us,
                o.p99_us,
                o.restore_p50_us,
                o.restore_p99_us,
                o.stats.parks,
                o.stats.restores,
                o.stats.sealed_bytes,
                o.stats.unsealed_bytes,
                o.pool.is_some(),
                o.pool.map_or_else(|| "null".to_string(), |n| n.to_string()),
                o.stats.pool_hits,
                o.stats.pool_misses,
                o.pool_hit_rate(),
                o.stats.dirty_pages_restored,
                o.stats.delta_sealed_bytes,
                o.faults.is_some(),
                o.faults.map_or_else(|| "null".to_string(), |s| s.to_string()),
                o.stats.faults_injected,
                o.stats.retries,
                o.stats.fallback_parks,
                o.stats.pool_discards,
                o.stats.quarantines,
            )
        },
    );
    write_bench_json(
        "BENCH_fig8.json",
        &format!(
            concat!(
                "{{\n  \"bench\": \"fig8_serving\",\n  \"exec_tier\": \"{}\",\n",
                "  \"sessions\": {},\n  \"calls\": {},\n",
                "  \"host_cores\": {},\n",
                "  \"cpu_time_accounting\": {},\n",
                "  \"pool_enabled\": {},\n",
                "  \"first_compile_us\": {:.3},\n",
                "  \"cold\": {{\"mean_wall_us\": {:.3}, \"mean_cycles\": {:.0}}},\n",
                "  \"warm\": {{\"mean_wall_us\": {:.3}, \"mean_cycles\": {:.0}}},\n",
                "  \"warm_throughput_calls_per_s\": {:.0},\n",
                "  \"threads_axis\": {{\n",
                "    \"sessions\": {}, \"calls_per_session\": {},\n",
                "    \"max_modelled_scaling_x\": {:.3},\n",
                "    \"max_measured_wall_scaling_x\": {:.3},\n",
                "    \"wall_scaling_asserted\": {},\n",
                "    \"points\": [\n{}\n    ]\n  }},\n",
                "  \"churn_axis\": {}\n}}\n"
            ),
            ExecTier::default(),
            sessions,
            calls,
            host_cores,
            cpu_time_accounting,
            pool.is_some(),
            first_compile_us,
            cold.mean_wall_us(),
            cold.mean_cycles(),
            warm.mean_wall_us(),
            warm.mean_cycles(),
            throughput,
            scale_sessions,
            scale_calls,
            max_scaling,
            max_wall_scaling,
            wall_scaling_asserted,
            threads_json.join(",\n"),
            churn_json,
        ),
    );
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}
