//! Table II: normalised run time of the technologies, split into the
//! below-EPC and above-EPC regimes (derived from the Figure 5 sweep).

use rand::SeedableRng;
use twine_baselines::{DbStorage, DbVariant, VariantDb};
use twine_bench::{arg_value, write_csv};
use twine_pfs::PfsMode;
use twine_sgx::SgxMode;
use twine_sqldb::speedtest;

struct Cell {
    below: f64,
    above: f64,
}

fn main() {
    let epc_mib: u64 = arg_value("--epc-mib").and_then(|s| s.parse().ok()).unwrap_or(8);
    let epc_pages = Some((epc_mib << 20 >> 12) as usize);
    // Databases of half-EPC and 3×EPC size (1 KiB records ≈ 1.3 KiB stored).
    let below_rows = (epc_mib << 10) as u32 / 3;
    let above_rows = (epc_mib << 10) as u32 * 2;
    println!(
        "Table II — normalised run time (native = 1); EPC {epc_mib} MiB, \
         <EPC at {below_rows} rows, >=EPC at {above_rows} rows\n"
    );

    let mut results: Vec<(String, [Cell; 6])> = Vec::new();
    for &variant in &DbVariant::all() {
        let mut cells = Vec::new();
        for &storage in &[DbStorage::Memory, DbStorage::File] {
            for &rows in &[below_rows, above_rows] {
                let pfs = if variant == DbVariant::Twine {
                    PfsMode::Optimised
                } else {
                    PfsMode::Intel
                };
                let mut db =
                    VariantDb::open_with_epc(variant, storage, SgxMode::Hardware, pfs, epc_pages);
                db.run(speedtest::micro_setup).expect("setup");
                let (_, ins) = db
                    .run(|c| speedtest::micro_insert(c, rows, 1024))
                    .expect("insert");
                let (_, seq) = db.run(speedtest::micro_sequential_read).expect("seq");
                let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                let (_, rnd) = db
                    .run(|c| speedtest::micro_random_read(c, 400, &mut rng))
                    .expect("rand");
                cells.push((rows, storage, ins.virtual_seconds, seq.virtual_seconds, rnd.virtual_seconds));
            }
        }
        // cells: [mem-below, mem-above, file-below, file-above]
        let pack = |op: usize| Cell {
            below: [cells[0].2, cells[0].3, cells[0].4][op],
            above: [cells[1].2, cells[1].3, cells[1].4][op],
        };
        let pack_file = |op: usize| Cell {
            below: [cells[2].2, cells[2].3, cells[2].4][op],
            above: [cells[3].2, cells[3].3, cells[3].4][op],
        };
        results.push((
            variant.label().to_string(),
            [pack(0), pack_file(0), pack(1), pack_file(1), pack(2), pack_file(2)],
        ));
    }

    let metrics = [
        "Insert mem.",
        "Insert file",
        "Seq. read mem.",
        "Seq. read file",
        "Rand. read mem.",
        "Rand. read file",
    ];
    println!(
        "{:<18} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "(native = 1)", "lkl<EPC", "lkl>=EPC", "twine<EPC", "twine>=EPC", "wamr<", "wamr>="
    );
    let mut rows_csv = Vec::new();
    for (mi, metric) in metrics.iter().enumerate() {
        let native = &results[0].1[mi];
        let lkl = &results[1].1[mi];
        let wamr = &results[2].1[mi];
        let twine = &results[3].1[mi];
        let n = |c: &Cell, above: bool| {
            let (v, base) = if above {
                (c.above, native.above)
            } else {
                (c.below, native.below)
            };
            v / base.max(1e-9)
        };
        println!(
            "{:<18} {:>9.1} {:>9.1} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1}",
            metric,
            n(lkl, false),
            n(lkl, true),
            n(twine, false),
            n(twine, true),
            n(wamr, false),
            n(wamr, true),
        );
        rows_csv.push(format!(
            "{metric},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
            n(lkl, false),
            n(lkl, true),
            n(twine, false),
            n(twine, true),
            n(wamr, false),
            n(wamr, true),
        ));
    }
    println!("\npaper shape: all variants slow down past the EPC; twine tracks wamr plus SGX costs;");
    println!("twine beats sgx-lkl on random-read file (paper marks it with *).");
    write_csv(
        "table2_summary.csv",
        "metric,sgxlkl_below,sgxlkl_above,twine_below,twine_above,wamr_below,wamr_above",
        &rows_csv,
    );
}
