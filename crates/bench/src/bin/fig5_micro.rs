//! Figure 5: §V-D micro-benchmarks — insertion, sequential read and random
//! read as the database grows past the EPC limit; 8 series (4 variants ×
//! {memory, file}).
//!
//! Scaling note (EXPERIMENTS.md): the paper sweeps 1k→175k 1-KiB records
//! against a 93 MiB EPC. To keep laptop runs in minutes, the harness
//! defaults to a 16 MiB usable EPC and sweeps 1k→24k records — the same
//! ratio of database size to EPC, so the cliffs appear at the same
//! *relative* position. Use `--full --epc-mib 93` for the paper's exact
//! parameters.

use rand::SeedableRng;
use twine_baselines::{DbStorage, DbVariant, VariantDb};
use twine_bench::{arg_value, has_flag, write_csv};
use twine_pfs::PfsMode;
use twine_sgx::SgxMode;
use twine_sqldb::speedtest;

fn main() {
    let epc_mib: u64 = arg_value("--epc-mib").and_then(|s| s.parse().ok()).unwrap_or(16);
    let epc_pages = Some((epc_mib << 20 >> 12) as usize);
    let sizes: Vec<u32> = if has_flag("--full") {
        (1..=35).map(|i| i * 5_000).collect() // 5k..175k
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24]
            .into_iter()
            .map(|k| k * 1_000)
            .collect()
    };
    let step_random_reads: u32 = 500;
    println!(
        "Figure 5 — micro-benchmarks, EPC {epc_mib} MiB, sizes up to {} records\n",
        sizes.last().unwrap()
    );

    let variants = DbVariant::all();
    let storages = [DbStorage::Memory, DbStorage::File];
    let mut insert_rows = Vec::new();
    let mut seq_rows = Vec::new();
    let mut rand_rows = Vec::new();

    for &variant in &variants {
        for &storage in &storages {
            let label = format!("{}-{}", variant.label(), storage_label(storage));
            // Optimised PFS for Twine-file, as in the paper's Figure 5 note
            // ("based on the enhanced version of IPFS").
            let pfs = if variant == DbVariant::Twine {
                PfsMode::Optimised
            } else {
                PfsMode::Intel
            };
            let mut db = VariantDb::open_with_epc(
                variant,
                storage,
                SgxMode::Hardware,
                pfs,
                epc_pages,
            );
            db.run(speedtest::micro_setup).expect("setup");
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut total = 0u32;
            for &target in &sizes {
                let batch = target - total;
                total = target;
                // (a) Insertion: time to add this batch.
                let (_, ins) = db
                    .run(|c| speedtest::micro_insert(c, batch, 1024))
                    .expect("insert");
                // (b) Sequential read of everything.
                let (_, seq) = db
                    .run(speedtest::micro_sequential_read)
                    .expect("seq read");
                // (c) Random reads.
                let (_, rnd) = db
                    .run(|c| speedtest::micro_random_read(c, step_random_reads, &mut rng))
                    .expect("random read");
                println!(
                    "{label:<16} {target:>7} rows  insert {:>8.4}s  seq {:>8.4}s  rand {:>8.4}s  (epc faults {:>7})",
                    ins.virtual_seconds, seq.virtual_seconds, rnd.virtual_seconds, rnd.epc_faults
                );
                insert_rows.push(format!("{label},{target},{:.6}", ins.virtual_seconds));
                seq_rows.push(format!("{label},{target},{:.6}", seq.virtual_seconds));
                rand_rows.push(format!("{label},{target},{:.6}", rnd.virtual_seconds));
            }
        }
    }
    write_csv("fig5a_insert.csv", "series,records,seconds", &insert_rows);
    write_csv("fig5b_seqread.csv", "series,records,seconds", &seq_rows);
    write_csv("fig5c_randread.csv", "series,records,seconds", &rand_rows);
}

fn storage_label(s: DbStorage) -> &'static str {
    match s {
        DbStorage::Memory => "mem",
        DbStorage::File => "file",
    }
}
