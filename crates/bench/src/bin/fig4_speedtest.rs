//! Figure 4: relative performance of the SQLite Speedtest1 clone —
//! 29 tests × {Native, SGX-LKL, WAMR, Twine} × {memory, file}, normalised
//! to native for each storage class.

use twine_baselines::{DbStorage, DbVariant, VariantDb};
use twine_bench::{arg_value, write_csv};
use twine_pfs::PfsMode;
use twine_sgx::SgxMode;
use twine_sqldb::speedtest::{test_name, Speedtest, TEST_IDS};

fn main() {
    let size: u32 = arg_value("--size").and_then(|s| s.parse().ok()).unwrap_or(150);
    println!("Figure 4 — Speedtest1 clone, normalised run time (native = 1), size={size}\n");

    // results[test][variant][storage] = virtual seconds
    let variants = DbVariant::all();
    let storages = [DbStorage::Memory, DbStorage::File];
    let mut seconds = vec![[[0.0f64; 2]; 4]; TEST_IDS.len()];

    for (vi, &variant) in variants.iter().enumerate() {
        for (si, &storage) in storages.iter().enumerate() {
            let mut db = VariantDb::open(variant, storage, SgxMode::Hardware, PfsMode::Intel);
            let mut st = Speedtest::new(size, 42);
            for (ti, &id) in TEST_IDS.iter().enumerate() {
                let (_, report) = db
                    .run(|conn| st.run_test(conn, id))
                    .unwrap_or_else(|e| panic!("{}/{storage:?} test {id}: {e}", variant.label()));
                seconds[ti][vi][si] = report.virtual_seconds;
            }
        }
    }

    println!(
        "{:<5} {:<38} {:>21} {:>21} {:>21}",
        "test", "description", "sgx-lkl (mem/file)", "wamr (mem/file)", "twine (mem/file)"
    );
    let mut rows = Vec::new();
    let mut sums = [[0.0f64; 2]; 4];
    for (ti, &id) in TEST_IDS.iter().enumerate() {
        let native = [seconds[ti][0][0].max(1e-9), seconds[ti][0][1].max(1e-9)];
        let norm = |vi: usize, si: usize| seconds[ti][vi][si] / native[si];
        for (vi, _) in variants.iter().enumerate() {
            sums[vi][0] += norm(vi, 0);
            sums[vi][1] += norm(vi, 1);
        }
        println!(
            "{:<5} {:<38} {:>9.2}/{:<9.2} {:>9.2}/{:<9.2} {:>9.2}/{:<9.2}",
            id,
            test_name(id),
            norm(1, 0),
            norm(1, 1),
            norm(2, 0),
            norm(2, 1),
            norm(3, 0),
            norm(3, 1),
        );
        rows.push(format!(
            "{id},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            norm(0, 0),
            norm(0, 1),
            norm(1, 0),
            norm(1, 1),
            norm(2, 0),
            norm(2, 1),
            norm(3, 0),
            norm(3, 1),
        ));
    }
    let n = TEST_IDS.len() as f64;
    println!(
        "\naverages vs native:  sgx-lkl mem {:.2}x file {:.2}x | wamr mem {:.2}x file {:.2}x | twine mem {:.2}x file {:.2}x",
        sums[1][0] / n,
        sums[1][1] / n,
        sums[2][0] / n,
        sums[2][1] / n,
        sums[3][0] / n,
        sums[3][1] / n,
    );
    println!(
        "paper: wamr ~4.1x mem / ~3.7x file; twine/wamr ~1.7x mem / ~1.9x file \
         (here: {:.2}x / {:.2}x)",
        sums[3][0] / sums[2][0],
        sums[3][1] / sums[2][1],
    );
    write_csv(
        "fig4_speedtest.csv",
        "test,native_mem,native_file,sgxlkl_mem,sgxlkl_file,wamr_mem,wamr_file,twine_mem,twine_file",
        &rows,
    );
}
