//! Figure 4: relative performance of the SQLite Speedtest1 clone —
//! 29 tests × {Native, SGX-LKL, WAMR, Twine} × {memory, file}, normalised
//! to native for each storage class.
//!
//! # `--serve`: the DB-as-a-service axis (DESIGN.md §13)
//!
//! The paper runs Speedtest1 one-shot; the serving plane runs it as
//! **persistent tenant sessions** on [`ShardedService`]: every tenant owns
//! a private protected database (`db_open_session`), statements ride the
//! shard queues (non-query statements batched into `db_execute_batch`
//! round trips, queries individually), warm SQL text is served from the
//! per-session prepared-statement cache, and each tenant is parked and
//! transparently restored mid-workload. The axis sweeps 1→N shards and
//! records, per shard count:
//!
//! * cold open latency per tenant (backend + database initialisation),
//! * warm round-trip p50/p99 per tenant,
//! * statement throughput across the fleet,
//! * the plan-cache hit rate and park/restore counters from
//!   [`ControlStats`](twine_core::ControlStats).
//!
//! Every tenant's final row total is asserted equal to a never-served
//! single-connection oracle running the same seeded workload — the same
//! differential the `db_sessions` test battery proves bit-identically.
//!
//! Results land in `BENCH_fig4.json` at the workspace root (schema in
//! DESIGN.md §13; checked by CI) next to the fig3/fig8 artefacts.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use twine_baselines::{DbStorage, DbVariant, VariantDb};
use twine_bench::{arg_value, has_flag, write_bench_json, write_csv};
use twine_core::{ShardedService, TwineBuilder, TwineError};
use twine_pfs::PfsMode;
use twine_sgx::SgxMode;
use twine_sqldb::speedtest::{integrity_check, test_name, Speedtest, SqlExecutor, TEST_IDS};
use twine_sqldb::value::Row;
use twine_sqldb::{DbError, DbResult};

/// Non-query statements buffered per `db_execute_batch` round trip.
const FLUSH: usize = 64;

fn to_db(e: TwineError) -> DbError {
    DbError::Storage(format!("serve: {e}"))
}

/// [`SqlExecutor`] over the sharded serving plane: one tenant session.
/// Non-query statements are buffered and flushed as a single
/// `db_execute_batch` round trip (transaction state lives in the
/// session's persistent connection, so a BEGIN/COMMIT pair may straddle
/// two batches); queries flush the buffer, then round-trip individually.
struct ServeConn<'a> {
    svc: &'a ShardedService,
    name: &'a str,
    pending: Vec<String>,
    /// Wall microseconds of every shard round trip (the warm latency
    /// samples behind the per-tenant percentiles).
    lat_us: Vec<f64>,
}

impl<'a> ServeConn<'a> {
    fn new(svc: &'a ShardedService, name: &'a str) -> Self {
        Self {
            svc,
            name,
            pending: Vec::new(),
            lat_us: Vec::new(),
        }
    }

    fn round_trip<T>(
        &mut self,
        f: impl FnOnce(&ShardedService) -> Result<T, TwineError>,
    ) -> DbResult<T> {
        let t0 = Instant::now();
        let out = f(self.svc).map_err(to_db);
        self.lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        out
    }

    fn flush(&mut self) -> DbResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let stmts = std::mem::take(&mut self.pending);
        let name = self.name;
        self.round_trip(|svc| svc.db_execute_batch(name, stmts))
            .map(|_| ())
    }
}

impl SqlExecutor for ServeConn<'_> {
    fn execute(&mut self, sql: &str) -> DbResult<()> {
        self.pending.push(sql.to_string());
        if self.pending.len() >= FLUSH {
            self.flush()?;
        }
        Ok(())
    }

    fn query(&mut self, sql: &str) -> DbResult<Vec<Row>> {
        self.flush()?;
        let name = self.name;
        self.round_trip(|svc| svc.db_query(name, sql))
    }

    fn table_names(&mut self) -> DbResult<Vec<String>> {
        self.flush()?;
        let name = self.name;
        self.round_trip(|svc| svc.db_table_names(name))
    }
}

/// `q`-th percentile (nearest-rank) of a sorted sample.
fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[i]
}

struct TenantResult {
    name: String,
    total_rows: u64,
    round_trips: usize,
    p50_us: f64,
    p99_us: f64,
}

/// One tenant's warm workload: the full Speedtest1 battery through the
/// serving plane, a park/restore cycle halfway, then repeated identical
/// point queries (the plan-cache warm path) and a full-scan integrity
/// check whose row total the caller compares to the oracle.
fn run_tenant(
    svc: &ShardedService,
    name: &str,
    size: u32,
    point_queries: usize,
) -> TenantResult {
    let mut st = Speedtest::new(size, 42);
    let mut conn = ServeConn::new(svc, name);
    for (i, &id) in TEST_IDS.iter().enumerate() {
        st.run_test(&mut conn, id)
            .unwrap_or_else(|e| panic!("serve tenant {name} test {id}: {e}"));
        if i == TEST_IDS.len() / 2 {
            // Mid-workload eviction: flush at a transaction boundary, park
            // (connection closed, manifest sealed, EPC pages released) —
            // the next statement restores the session transparently.
            conn.flush().expect("flush before park");
            svc.db_park_session(name).expect("park");
            assert_eq!(svc.db_session_parked(name), Some(true), "tenant {name} not parked");
        }
    }
    let tables = conn.table_names().expect("table names");
    let point = format!("SELECT count(*) FROM {}", tables[0]);
    for _ in 0..point_queries {
        conn.query(&point).expect("point query");
    }
    let total_rows = integrity_check(&mut conn)
        .unwrap_or_else(|e| panic!("serve tenant {name} integrity check: {e}"));
    conn.flush().expect("final flush");
    let mut lat = conn.lat_us;
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    TenantResult {
        name: name.to_string(),
        total_rows,
        round_trips: lat.len(),
        p50_us: pct(&lat, 0.50),
        p99_us: pct(&lat, 0.99),
    }
}

struct ServePoint {
    shards: usize,
    cold_us: Vec<f64>,
    tenants: Vec<TenantResult>,
    warm_wall_s: f64,
    db_statements: u64,
    stmt_cache_hits: u64,
    stmt_cache_misses: u64,
    parks: u64,
    restores: u64,
}

impl ServePoint {
    fn hit_rate(&self) -> f64 {
        let prepared = self.stmt_cache_hits + self.stmt_cache_misses;
        self.stmt_cache_hits as f64 / prepared.max(1) as f64
    }
    fn throughput(&self) -> f64 {
        self.db_statements as f64 / self.warm_wall_s.max(1e-12)
    }
    fn round_trips(&self) -> usize {
        self.tenants.iter().map(|t| t.round_trips).sum()
    }
}

/// One shard-count sweep point: open `tenants` cold, then drive the warm
/// workloads from one client thread per shard (barrier-gated so the
/// measured wall excludes thread setup), and fold the fleet's control
/// counters.
fn serve_point(
    shards: usize,
    tenants: usize,
    size: u32,
    point_queries: usize,
    oracle_total: u64,
) -> ServePoint {
    let svc = Arc::new(TwineBuilder::new().build_sharded(shards));
    let names: Vec<String> = (0..tenants).map(|i| format!("tenant-{i}")).collect();
    let mut cold_us = Vec::with_capacity(tenants);
    for name in &names {
        let t0 = Instant::now();
        svc.db_open_session(name).expect("open db session");
        cold_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let before = svc.control_stats();
    let start = Arc::new(Barrier::new(shards + 1));
    let finish = Arc::new(Barrier::new(shards + 1));
    let handles: Vec<_> = (0..shards)
        .map(|shard| {
            let svc = Arc::clone(&svc);
            let (start, finish) = (Arc::clone(&start), Arc::clone(&finish));
            let mine: Vec<String> = names
                .iter()
                .filter(|n| svc.shard_of(n) == shard)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                start.wait();
                let out: Vec<TenantResult> = mine
                    .iter()
                    .map(|n| run_tenant(&svc, n, size, point_queries))
                    .collect();
                finish.wait();
                out
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    finish.wait();
    let warm_wall_s = t0.elapsed().as_secs_f64();
    let mut results: Vec<TenantResult> = Vec::with_capacity(tenants);
    for h in handles {
        results.extend(h.join().expect("serve client thread"));
    }
    results.sort_by(|a, b| a.name.cmp(&b.name));
    for t in &results {
        assert_eq!(
            t.total_rows, oracle_total,
            "tenant {} diverged from the single-connection oracle",
            t.name
        );
    }
    let after = svc.control_stats();
    let point = ServePoint {
        shards,
        cold_us,
        tenants: results,
        warm_wall_s,
        db_statements: after.db_statements - before.db_statements,
        stmt_cache_hits: after.stmt_cache_hits - before.stmt_cache_hits,
        stmt_cache_misses: after.stmt_cache_misses - before.stmt_cache_misses,
        parks: after.parks - before.parks,
        restores: after.restores - before.restores,
    };
    // Every tenant parked once mid-workload and was restored on its next
    // statement; the repeated point query must hit the plan cache.
    assert_eq!(point.parks, tenants as u64, "every tenant parks once");
    assert_eq!(point.restores, tenants as u64, "every tenant restores once");
    assert!(point.stmt_cache_hits > 0, "warm statements never hit the plan cache");
    point
}

/// Shard counts swept by `--serve`: powers of two up to `max`, plus `max`.
fn shards_axis(max: usize) -> Vec<usize> {
    let mut axis = Vec::new();
    let mut s = 1;
    while s <= max {
        axis.push(s);
        s *= 2;
    }
    if *axis.last().unwrap() != max {
        axis.push(max);
    }
    axis
}

fn serve_axis_json(
    points: &[ServePoint],
    tenants: usize,
    size: u32,
    point_queries: usize,
) -> String {
    let mut jp = Vec::new();
    for p in points {
        let mut cold = p.cold_us.clone();
        cold.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let jt: Vec<String> = p
            .tenants
            .iter()
            .zip(&p.cold_us)
            .map(|(t, c)| {
                format!(
                    concat!(
                        "        {{\"name\": \"{}\", \"cold_open_us\": {:.1}, ",
                        "\"round_trips\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}"
                    ),
                    t.name, c, t.round_trips, t.p50_us, t.p99_us
                )
            })
            .collect();
        jp.push(format!(
            concat!(
                "    {{\"shards\": {}, \"cold_open_p50_us\": {:.1}, ",
                "\"cold_open_p99_us\": {:.1}, \"warm_wall_s\": {:.4}, ",
                "\"round_trips\": {}, \"db_statements\": {}, ",
                "\"throughput_stmts_per_s\": {:.1}, ",
                "\"stmt_cache_hits\": {}, \"stmt_cache_misses\": {}, ",
                "\"stmt_cache_hit_rate\": {:.4}, \"parks\": {}, \"restores\": {},\n",
                "      \"tenants\": [\n{}\n      ]}}"
            ),
            p.shards,
            pct(&cold, 0.50),
            pct(&cold, 0.99),
            p.warm_wall_s,
            p.round_trips(),
            p.db_statements,
            p.throughput(),
            p.stmt_cache_hits,
            p.stmt_cache_misses,
            p.hit_rate(),
            p.parks,
            p.restores,
            jt.join(",\n")
        ));
    }
    format!(
        concat!(
            "{{\n    \"tenants\": {}, \"size\": {}, \"point_queries\": {}, ",
            "\"speedtest_tests\": {}, \"oracle_checked\": true,\n",
            "    \"points\": [\n{}\n  ]}}"
        ),
        tenants,
        size,
        point_queries,
        TEST_IDS.len(),
        jp.join(",\n")
    )
}

fn main() {
    let size: u32 = arg_value("--size").and_then(|s| s.parse().ok()).unwrap_or(150);
    println!("Figure 4 — Speedtest1 clone, normalised run time (native = 1), size={size}\n");

    // results[test][variant][storage] = virtual seconds
    let variants = DbVariant::all();
    let storages = [DbStorage::Memory, DbStorage::File];
    let mut seconds = vec![[[0.0f64; 2]; 4]; TEST_IDS.len()];

    for (vi, &variant) in variants.iter().enumerate() {
        for (si, &storage) in storages.iter().enumerate() {
            let mut db = VariantDb::open(variant, storage, SgxMode::Hardware, PfsMode::Intel);
            let mut st = Speedtest::new(size, 42);
            for (ti, &id) in TEST_IDS.iter().enumerate() {
                let (_, report) = db
                    .run(|conn| st.run_test(conn, id))
                    .unwrap_or_else(|e| panic!("{}/{storage:?} test {id}: {e}", variant.label()));
                seconds[ti][vi][si] = report.virtual_seconds;
            }
        }
    }

    println!(
        "{:<5} {:<38} {:>21} {:>21} {:>21}",
        "test", "description", "sgx-lkl (mem/file)", "wamr (mem/file)", "twine (mem/file)"
    );
    let mut rows = Vec::new();
    let mut sums = [[0.0f64; 2]; 4];
    for (ti, &id) in TEST_IDS.iter().enumerate() {
        let native = [seconds[ti][0][0].max(1e-9), seconds[ti][0][1].max(1e-9)];
        let norm = |vi: usize, si: usize| seconds[ti][vi][si] / native[si];
        for (vi, _) in variants.iter().enumerate() {
            sums[vi][0] += norm(vi, 0);
            sums[vi][1] += norm(vi, 1);
        }
        println!(
            "{:<5} {:<38} {:>9.2}/{:<9.2} {:>9.2}/{:<9.2} {:>9.2}/{:<9.2}",
            id,
            test_name(id),
            norm(1, 0),
            norm(1, 1),
            norm(2, 0),
            norm(2, 1),
            norm(3, 0),
            norm(3, 1),
        );
        rows.push(format!(
            "{id},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            norm(0, 0),
            norm(0, 1),
            norm(1, 0),
            norm(1, 1),
            norm(2, 0),
            norm(2, 1),
            norm(3, 0),
            norm(3, 1),
        ));
    }
    let n = TEST_IDS.len() as f64;
    println!(
        "\naverages vs native:  sgx-lkl mem {:.2}x file {:.2}x | wamr mem {:.2}x file {:.2}x | twine mem {:.2}x file {:.2}x",
        sums[1][0] / n,
        sums[1][1] / n,
        sums[2][0] / n,
        sums[2][1] / n,
        sums[3][0] / n,
        sums[3][1] / n,
    );
    println!(
        "paper: wamr ~4.1x mem / ~3.7x file; twine/wamr ~1.7x mem / ~1.9x file \
         (here: {:.2}x / {:.2}x)",
        sums[3][0] / sums[2][0],
        sums[3][1] / sums[2][1],
    );
    write_csv(
        "fig4_speedtest.csv",
        "test,native_mem,native_file,sgxlkl_mem,sgxlkl_file,wamr_mem,wamr_file,twine_mem,twine_file",
        &rows,
    );

    // ------------------------------------------------------------------
    // --serve: Speedtest1 as persistent tenant DB sessions (DESIGN.md §13)
    // ------------------------------------------------------------------
    let serve_json = if has_flag("--serve") {
        let tenants: usize = arg_value("--tenants")
            .and_then(|s| s.parse().ok())
            .unwrap_or(8)
            .max(1);
        let max_shards: usize = arg_value("--serve-shards")
            .and_then(|s| s.parse().ok())
            .unwrap_or(4)
            .max(1);
        let serve_size: u32 = arg_value("--serve-size")
            .and_then(|s| s.parse().ok())
            .unwrap_or(25)
            .max(1);
        let point_queries: usize = arg_value("--point-queries")
            .and_then(|s| s.parse().ok())
            .unwrap_or(32);

        // Never-served oracle: one direct connection, same seeded
        // workload — every tenant's final row total must match it.
        let mut oracle = VariantDb::open(
            DbVariant::Twine,
            DbStorage::File,
            SgxMode::Hardware,
            PfsMode::Intel,
        );
        let mut st = Speedtest::new(serve_size, 42);
        for &id in &TEST_IDS {
            oracle
                .run(|conn| st.run_test(conn, id))
                .unwrap_or_else(|e| panic!("oracle test {id}: {e}"));
        }
        let (oracle_total, _) = oracle.run(integrity_check).expect("oracle integrity");

        println!(
            "\n--serve: {tenants} tenants × Speedtest1(size={serve_size}) as persistent DB \
             sessions, {point_queries} point queries, park/restore mid-workload\n"
        );
        println!(
            "{:>6} {:>14} {:>14} {:>12} {:>12} {:>12} {:>10}",
            "shards", "cold p50 (us)", "warm p50 (us)", "p99 (us)", "stmts/s", "hit rate", "parks"
        );
        let mut serve_rows = Vec::new();
        let mut points = Vec::new();
        for shards in shards_axis(max_shards) {
            let p = serve_point(shards, tenants, serve_size, point_queries, oracle_total);
            let mut cold = p.cold_us.clone();
            cold.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut warm: Vec<f64> = Vec::new();
            for t in &p.tenants {
                warm.push(t.p50_us);
            }
            warm.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p99 = p
                .tenants
                .iter()
                .map(|t| t.p99_us)
                .fold(0.0f64, f64::max);
            println!(
                "{:>6} {:>14.1} {:>14.1} {:>12.1} {:>12.1} {:>9.1}% {:>10}",
                p.shards,
                pct(&cold, 0.50),
                pct(&warm, 0.50),
                p99,
                p.throughput(),
                p.hit_rate() * 100.0,
                p.parks,
            );
            serve_rows.push(format!(
                "{},{},{:.1},{:.1},{:.1},{:.1},{:.4},{},{}",
                p.shards,
                tenants,
                pct(&cold, 0.50),
                pct(&warm, 0.50),
                p99,
                p.throughput(),
                p.hit_rate(),
                p.parks,
                p.restores,
            ));
            points.push(p);
        }
        println!(
            "\nall {} tenants bit-identical to the single-connection oracle at every shard count",
            tenants
        );
        write_csv(
            "fig4_serve.csv",
            "shards,tenants,cold_open_p50_us,warm_p50_us,warm_p99_us,throughput_stmts_per_s,stmt_cache_hit_rate,parks,restores",
            &serve_rows,
        );
        serve_axis_json(&points, tenants, serve_size, point_queries)
    } else {
        "null".to_string()
    };

    write_bench_json(
        "BENCH_fig4.json",
        &format!(
            concat!(
                "{{\n  \"bench\": \"fig4_speedtest\",\n  \"size\": {},\n",
                "  \"avg_vs_native\": {{\"sgxlkl_mem\": {:.4}, \"sgxlkl_file\": {:.4}, ",
                "\"wamr_mem\": {:.4}, \"wamr_file\": {:.4}, ",
                "\"twine_mem\": {:.4}, \"twine_file\": {:.4}}},\n",
                "  \"twine_over_wamr\": {{\"mem\": {:.4}, \"file\": {:.4}}},\n",
                "  \"serve_axis\": {}\n}}\n"
            ),
            size,
            sums[1][0] / n,
            sums[1][1] / n,
            sums[2][0] / n,
            sums[2][1] / n,
            sums[3][0] / n,
            sums[3][1] / n,
            sums[3][0] / sums[2][0],
            sums[3][1] / sums[2][1],
            serve_json
        ),
    );
}
