//! Figure 7: time breakdown of random reads through the protected file
//! system, stock Intel IPFS vs the paper's §V-F optimised version
//! (no redundant memset, zero-copy OCALL reads + AES-CCM).

use rand::SeedableRng;
use twine_baselines::{DbStorage, DbVariant, VariantDb};
use twine_bench::{arg_value, write_csv};
use twine_pfs::{PfsCategory, PfsMode};
use twine_sgx::clock::CPU_HZ;
use twine_sgx::SgxMode;
use twine_sqldb::speedtest;

struct Breakdown {
    total: f64,
    memset: f64,
    ocall: f64,
    read: f64,
    crypto: f64,
    sql_inner: f64,
}

fn measure(mode: PfsMode, rows: u32, reads: u32) -> Breakdown {
    let mut db = VariantDb::open_with_epc(
        DbVariant::Twine,
        DbStorage::File,
        SgxMode::Hardware,
        mode,
        Some(4096),
    );
    db.run(speedtest::micro_setup).expect("setup");
    db.run(|c| speedtest::micro_insert(c, rows, 1024))
        .expect("insert");
    // Profile only the random-read phase.
    let before = db.profiler().expect("twine profiler").snapshot();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let (_, report) = db
        .run(|c| speedtest::micro_random_read(c, reads, &mut rng))
        .expect("random read");
    let snap = db.profiler().expect("profiler").snapshot().since(&before);
    let cycles_to_s = |c: u64| c as f64 / CPU_HZ as f64;
    let memset = cycles_to_s(snap.get(PfsCategory::Memset));
    let ocall = cycles_to_s(snap.get(PfsCategory::Ocall));
    let read = cycles_to_s(snap.get(PfsCategory::ReadOps));
    let crypto = cycles_to_s(snap.get(PfsCategory::Crypto));
    let total = report.virtual_seconds;
    Breakdown {
        total,
        memset,
        ocall,
        read,
        crypto,
        sql_inner: (total - memset - ocall - read - crypto).max(0.0),
    }
}

fn main() {
    let rows: u32 = arg_value("--rows").and_then(|s| s.parse().ok()).unwrap_or(8_000);
    let reads: u32 = arg_value("--reads").and_then(|s| s.parse().ok()).unwrap_or(2_000);
    println!("Figure 7 — random-read time breakdown, {rows} rows, {reads} reads\n");
    let stock = measure(PfsMode::Intel, rows, reads);
    let opt = measure(PfsMode::Optimised, rows, reads);

    let print = |label: &str, b: &Breakdown| {
        println!(
            "{label:<10} total {:>8.3}s | sql {:>7.3}s  read {:>7.3}s  crypto {:>7.3}s  ocall {:>7.3}s  memset {:>7.3}s",
            b.total, b.sql_inner, b.read, b.crypto, b.ocall, b.memset
        );
        println!(
            "{:<10}                  | sql {:>6.1}%  read {:>6.1}%  crypto {:>6.1}%  ocall {:>6.1}%  memset {:>6.1}%",
            "",
            100.0 * b.sql_inner / b.total,
            100.0 * b.read / b.total,
            100.0 * b.crypto / b.total,
            100.0 * b.ocall / b.total,
            100.0 * b.memset / b.total
        );
    };
    print("IPFS", &stock);
    print("Optimised", &opt);
    let pfs_stock = stock.memset + stock.ocall + stock.read + stock.crypto;
    let pfs_opt = opt.memset + opt.ocall + opt.read + opt.crypto;
    println!(
        "\nspeedup end-to-end: {:.2}x | protected-FS path only: {:.2}x   (paper: 4.1x)",
        stock.total / opt.total.max(1e-9),
        pfs_stock / pfs_opt.max(1e-9),
    );
    println!(
        "memset eliminated: {} → {:.3}s. Note: our SQL engine parses every query\n\
         (no prepared statements), so its inner share is ~{:.0}% versus SQLite's 2.9%,\n\
         which dilutes the end-to-end ratio — see EXPERIMENTS.md.",
        format_s(stock.memset),
        opt.memset,
        100.0 * stock.sql_inner / stock.total
    );
    write_csv(
        "fig7_breakdown.csv",
        "variant,total,sql_inner,read,crypto,ocall,memset",
        &[
            format!(
                "ipfs,{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                stock.total, stock.sql_inner, stock.read, stock.crypto, stock.ocall, stock.memset
            ),
            format!(
                "optimised,{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                opt.total, opt.sql_inner, opt.read, opt.crypto, opt.ocall, opt.memset
            ),
        ],
    );
}

fn format_s(v: f64) -> String {
    format!("{v:.3}s")
}
