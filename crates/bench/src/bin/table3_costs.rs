//! Table III: cost factors — build/deploy times (IIIa) and artifact sizes
//! (IIIb). Measured on this repository's own artifacts where possible;
//! toolchain costs this environment cannot run use the paper's values
//! (marked `[paper]`).

use std::time::Instant;

use twine_baselines::costs::{table3a, table3b};
use twine_baselines::{DbStorage, DbVariant, VariantDb};
use twine_bench::write_csv;
use twine_pfs::PfsMode;
use twine_polybench::{all_kernels, Scale};
use twine_sgx::SgxMode;
use twine_sqldb::speedtest;
use twine_wasm::compile::CompiledModule;

fn main() {
    println!("Table III — cost factors\n");

    // Measure: MiniC → Wasm compile time and artifact size over the whole
    // PolyBench suite (the repository's "application").
    let kernels = all_kernels(Scale::Small);
    let t0 = Instant::now();
    let wasms: Vec<Vec<u8>> = kernels
        .iter()
        .map(|k| twine_minicc::compile_to_bytes(&k.source).expect("compile"))
        .collect();
    let compile_wasm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let wasm_bytes: u64 = wasms.iter().map(|w| w.len() as u64).sum();

    // Measure: Wasm → flattened-AoT compile time and code size.
    let t1 = Instant::now();
    let compiled: Vec<CompiledModule> = wasms
        .iter()
        .map(|w| CompiledModule::from_bytes(w).expect("aot"))
        .collect();
    let compile_aot_ms = t1.elapsed().as_secs_f64() * 1e3;
    let aot_ops: usize = compiled.iter().map(CompiledModule::code_size_ops).sum();
    let aot_bytes = aot_ops * 16; // flattened op ≈ 16 bytes

    // Measure: ciphertext footprint of a Twine protected database.
    let mut db = VariantDb::open(
        DbVariant::Twine,
        DbStorage::File,
        SgxMode::Hardware,
        PfsMode::Intel,
    );
    db.run(speedtest::micro_setup).expect("setup");
    db.run(|c| speedtest::micro_insert(c, 2_000, 1_024))
        .expect("insert");
    let db_pages = db.conn.page_count();
    let ciphertext_kib = f64::from(db_pages) * 4096.0 * 1.05 / 1024.0; // + MHT overhead

    println!("measured on this build:");
    println!("  wasm artifacts: {} KiB across {} kernels", wasm_bytes / 1024, kernels.len());
    println!("  compile wasm: {compile_wasm_ms:.1} ms, compile AoT: {compile_aot_ms:.1} ms");
    println!("  AoT code: {aot_ops} ops (~{} KiB)", aot_bytes / 1024);
    println!("  protected DB ciphertext: {ciphertext_kib:.0} KiB for 2k records\n");

    let a = table3a(wasm_bytes, compile_wasm_ms, compile_aot_ms);
    let b = table3b(
        wasm_bytes as f64 / 1024.0,
        aot_bytes as f64 / 1024.0,
        ciphertext_kib,
        192_822.0,
        209_920.0,
    );

    println!("(IIIa) Times [ms]          native     sgx-lkl        wamr       twine");
    let mut rows = Vec::new();
    for row in a.iter().chain(b.iter()) {
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:>11.0}"),
            None => format!("{:>11}", "-"),
        };
        println!(
            "{:<24} {} {} {} {}{}",
            row.metric,
            fmt(row.values[0]),
            fmt(row.values[1]),
            fmt(row.values[2]),
            fmt(row.values[3]),
            if row.modelled { "  [paper]" } else { "" }
        );
        rows.push(format!(
            "{},{},{},{},{},{}",
            row.metric,
            row.values[0].map_or(String::new(), |v| format!("{v:.1}")),
            row.values[1].map_or(String::new(), |v| format!("{v:.1}")),
            row.values[2].map_or(String::new(), |v| format!("{v:.1}")),
            row.values[3].map_or(String::new(), |v| format!("{v:.1}")),
            row.modelled
        ));
    }
    write_csv(
        "table3_costs.csv",
        "metric,native,sgxlkl,wamr,twine,modelled",
        &rows,
    );
}
