//! End-to-end MiniC tests: compile source, run on the Wasm engine, compare
//! against the same computation done natively in Rust.

use std::sync::Arc;

use twine_minicc::compile;
use twine_wasm::compile::CompiledModule;
use twine_wasm::types::{FuncType, ValType, Value};
use twine_wasm::{Instance, Linker};

/// Instantiate a MiniC program with the libm `env` imports registered.
fn instantiate(src: &str) -> Instance {
    let module = compile(src).expect("minicc compile");
    let code = CompiledModule::compile(module).expect("wasm validate+compile");
    let mut linker = Linker::new();
    for (name, arity) in twine_minicc::codegen::LIBM_IMPORTS {
        let ty = FuncType::new(vec![ValType::F64; arity], vec![ValType::F64]);
        linker.func("env", name, ty, move |_ctx, args: &[Value]| {
            let xs: Vec<f64> = args.iter().map(|a| a.as_f64().unwrap()).collect();
            let r = match (name, xs.as_slice()) {
                ("exp", [x]) => x.exp(),
                ("log", [x]) => x.ln(),
                ("sin", [x]) => x.sin(),
                ("cos", [x]) => x.cos(),
                ("pow", [x, y]) => x.powf(*y),
                _ => unreachable!(),
            };
            Ok(vec![Value::F64(r)])
        });
    }
    Instance::instantiate(Arc::new(code), linker, Box::new(())).expect("instantiate")
}

fn run_i32(src: &str, func: &str, args: &[Value]) -> i32 {
    let mut inst = instantiate(src);
    inst.invoke(func, args).expect("invoke")[0]
        .as_i32()
        .expect("i32 result")
}

fn run_f64(src: &str, func: &str, args: &[Value]) -> f64 {
    let mut inst = instantiate(src);
    inst.invoke(func, args).expect("invoke")[0]
        .as_f64()
        .expect("f64 result")
}

#[test]
fn simple_arith() {
    assert_eq!(
        run_i32("int f(int a, int b) { return a * 10 + b; }", "f", &[Value::I32(4), Value::I32(2)]),
        42
    );
}

#[test]
fn operator_precedence_matches_c() {
    assert_eq!(run_i32("int f() { return 2 + 3 * 4 - 10 / 2; }", "f", &[]), 9);
    assert_eq!(run_i32("int f() { return (2 + 3) * (4 - 10) / 2; }", "f", &[]), -15);
    assert_eq!(run_i32("int f() { return 17 % 5; }", "f", &[]), 2);
}

#[test]
fn while_loop_sum() {
    let src = r"
        int sum(int n) {
            int s = 0;
            int i = 1;
            while (i <= n) {
                s = s + i;
                i = i + 1;
            }
            return s;
        }";
    assert_eq!(run_i32(src, "sum", &[Value::I32(100)]), 5050);
}

#[test]
fn for_loop_with_compound_assign() {
    let src = r"
        int sumsq(int n) {
            int s = 0;
            for (int i = 0; i < n; i += 1) {
                s += i * i;
            }
            return s;
        }";
    assert_eq!(run_i32(src, "sumsq", &[Value::I32(10)]), 285);
}

#[test]
fn break_and_continue() {
    let src = r"
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i += 1) {
                if (i % 2 == 0) { continue; }
                if (i > 7) { break; }
                s += i;
            }
            return s;
        }";
    // odd numbers <= 7: 1+3+5+7 = 16
    assert_eq!(run_i32(src, "f", &[Value::I32(100)]), 16);
}

#[test]
fn nested_loops_with_break() {
    let src = r"
        int f() {
            int count = 0;
            for (int i = 0; i < 10; i += 1) {
                for (int j = 0; j < 10; j += 1) {
                    if (j == 3) { break; }
                    count += 1;
                }
            }
            return count;
        }";
    assert_eq!(run_i32(src, "f", &[]), 30);
}

#[test]
fn recursion() {
    let src = "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }";
    assert_eq!(run_i32(src, "fib", &[Value::I32(10)]), 55);
}

#[test]
fn mutual_recursion() {
    let src = r"
        int is_odd(int n);
        ";
    // Forward declarations are not supported; mutual recursion works because
    // function indices are assigned in a pre-pass.
    let _ = src;
    let src = r"
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }";
    assert_eq!(run_i32(src, "is_even", &[Value::I32(10)]), 1);
    assert_eq!(run_i32(src, "is_odd", &[Value::I32(10)]), 0);
}

#[test]
fn global_arrays_matmul() {
    let src = r"
        double A[4][4];
        double B[4][4];
        double C[4][4];
        void init() {
            for (int i = 0; i < 4; i += 1) {
                for (int j = 0; j < 4; j += 1) {
                    A[i][j] = i * 4 + j;
                    B[i][j] = (i == j);
                    C[i][j] = 0.0;
                }
            }
        }
        void matmul() {
            for (int i = 0; i < 4; i += 1) {
                for (int j = 0; j < 4; j += 1) {
                    for (int k = 0; k < 4; k += 1) {
                        C[i][j] += A[i][k] * B[k][j];
                    }
                }
            }
        }
        double get(int i, int j) { return C[i][j]; }";
    let mut inst = instantiate(src);
    inst.invoke("init", &[]).unwrap();
    inst.invoke("matmul", &[]).unwrap();
    // A × I = A
    for i in 0..4 {
        for j in 0..4 {
            let v = inst
                .invoke("get", &[Value::I32(i), Value::I32(j)])
                .unwrap()[0]
                .as_f64()
                .unwrap();
            assert_eq!(v, f64::from(i * 4 + j), "C[{i}][{j}]");
        }
    }
}

#[test]
fn global_scalars_persist() {
    let src = r"
        int counter;
        void bump() { counter += 1; }
        int get() { return counter; }";
    let mut inst = instantiate(src);
    for _ in 0..5 {
        inst.invoke("bump", &[]).unwrap();
    }
    assert_eq!(inst.invoke("get", &[]).unwrap()[0], Value::I32(5));
}

#[test]
fn promotions_int_to_double() {
    let src = "double f(int a, double b) { return a / 2 + b / 2.0; }";
    // 7 / 2 (int division) = 3; 1.0/2.0 = 0.5 → 3.5
    assert_eq!(run_f64(src, "f", &[Value::I32(7), Value::F64(1.0)]), 3.5);
}

#[test]
fn casts() {
    assert_eq!(run_i32("int f(double x) { return (int)x; }", "f", &[Value::F64(3.9)]), 3);
    assert_eq!(run_i32("int f(double x) { return (int)x; }", "f", &[Value::F64(-3.9)]), -3);
    assert_eq!(
        run_f64("double f(int n) { return (double)n / 4; }", "f", &[Value::I32(10)]),
        2.5
    );
}

#[test]
fn long_arithmetic() {
    let src = "long f(long a, long b) { return a * b + 1; }";
    let mut inst = instantiate(src);
    let r = inst
        .invoke("f", &[Value::I64(3_000_000_000), Value::I64(2)])
        .unwrap()[0];
    assert_eq!(r, Value::I64(6_000_000_001));
}

#[test]
fn logical_short_circuit() {
    // Division by zero on the RHS must not be evaluated when the LHS decides.
    let src = r"
        int f(int a, int b) {
            if (a == 0 || 10 / a > b) { return 1; }
            return 0;
        }";
    assert_eq!(run_i32(src, "f", &[Value::I32(0), Value::I32(5)]), 1);
    assert_eq!(run_i32(src, "f", &[Value::I32(1), Value::I32(5)]), 1);
    assert_eq!(run_i32(src, "f", &[Value::I32(1), Value::I32(20)]), 0);
    let src_and = r"
        int g(int a) {
            if (a != 0 && 10 / a == 5) { return 1; }
            return 0;
        }";
    assert_eq!(run_i32(src_and, "g", &[Value::I32(0)]), 0);
    assert_eq!(run_i32(src_and, "g", &[Value::I32(2)]), 1);
}

#[test]
fn not_operator() {
    assert_eq!(run_i32("int f(int x) { return !x; }", "f", &[Value::I32(0)]), 1);
    assert_eq!(run_i32("int f(int x) { return !x; }", "f", &[Value::I32(7)]), 0);
    assert_eq!(run_i32("int f(int x) { return !!x; }", "f", &[Value::I32(7)]), 1);
}

#[test]
fn builtins_sqrt_fabs() {
    assert_eq!(run_f64("double f(double x) { return sqrt(x); }", "f", &[Value::F64(16.0)]), 4.0);
    assert_eq!(run_f64("double f(double x) { return fabs(x); }", "f", &[Value::F64(-2.5)]), 2.5);
    assert_eq!(run_f64("double f(double x) { return floor(x); }", "f", &[Value::F64(2.9)]), 2.0);
    assert_eq!(run_f64("double f(double x) { return ceil(x); }", "f", &[Value::F64(2.1)]), 3.0);
}

#[test]
fn libm_imports() {
    let r = run_f64("double f(double x) { return exp(x); }", "f", &[Value::F64(1.0)]);
    assert!((r - std::f64::consts::E).abs() < 1e-12);
    let r = run_f64(
        "double f(double x, double y) { return pow(x, y); }",
        "f",
        &[Value::F64(2.0), Value::F64(10.0)],
    );
    assert_eq!(r, 1024.0);
}

#[test]
fn compound_assign_array_element() {
    let src = r"
        double acc[4];
        void add(int i, double v) { acc[i] += v; }
        double get(int i) { return acc[i]; }";
    let mut inst = instantiate(src);
    inst.invoke("add", &[Value::I32(2), Value::F64(1.5)]).unwrap();
    inst.invoke("add", &[Value::I32(2), Value::F64(2.5)]).unwrap();
    assert_eq!(inst.invoke("get", &[Value::I32(2)]).unwrap()[0], Value::F64(4.0));
    assert_eq!(inst.invoke("get", &[Value::I32(0)]).unwrap()[0], Value::F64(0.0));
}

#[test]
fn block_scoping_and_shadowing() {
    let src = r"
        int f() {
            int x = 1;
            {
                int x = 2;
                x += 10;
            }
            return x;
        }";
    assert_eq!(run_i32(src, "f", &[]), 1);
}

#[test]
fn comparison_chains() {
    let src = "int f(int a, int b, int c) { return a < b && b < c; }";
    assert_eq!(run_i32(src, "f", &[Value::I32(1), Value::I32(2), Value::I32(3)]), 1);
    assert_eq!(run_i32(src, "f", &[Value::I32(3), Value::I32(2), Value::I32(3)]), 0);
}

#[test]
fn compile_errors() {
    assert!(compile("int f() { return y; }").is_err());
    assert!(compile("int f() { undefined(); }").is_err());
    assert!(compile("int f(int a) { return a % 2.0; }").is_err());
    assert!(compile("void f() { return 1; }").is_err());
    assert!(compile("int f() { return; }").is_err());
    assert!(compile("int f() { break; }").is_err());
    assert!(compile("double A[2]; int f() { return A[0][1]; }").is_err());
    assert!(compile("int f(int a, int a) { return a; }").is_err());
    assert!(compile("int x; int x;").is_err());
}

#[test]
fn gauss_sum_against_native() {
    // A slightly larger numeric kernel compared against a native Rust
    // implementation.
    let src = r"
        double K[32][32];
        void build(int n) {
            for (int i = 0; i < n; i += 1) {
                for (int j = 0; j < n; j += 1) {
                    K[i][j] = 1.0 / (1.0 + i + j);
                }
            }
        }
        double trace(int n) {
            double t = 0.0;
            for (int i = 0; i < n; i += 1) { t += K[i][i]; }
            return t;
        }";
    let mut inst = instantiate(src);
    inst.invoke("build", &[Value::I32(32)]).unwrap();
    let got = inst.invoke("trace", &[Value::I32(32)]).unwrap()[0]
        .as_f64()
        .unwrap();
    let want: f64 = (0..32).map(|i| 1.0 / (1.0 + 2.0 * f64::from(i))).sum();
    assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
}
