//! Code generation: MiniC AST → `twine_wasm::Module`.
//!
//! Globals live in linear memory at statically-assigned, 8-byte-aligned
//! offsets; locals and parameters map to Wasm locals. Control flow lowers to
//! structured Wasm blocks with computed branch depths, and the C "usual
//! arithmetic conversions" are emitted as explicit Wasm conversion ops.

use std::collections::HashMap;

use crate::ast::*;
use crate::CompileError;
use twine_wasm::instr::{
    BlockType, CvtOp, FBinOp, FRelOp, FUnOp, FloatWidth, IBinOp, IRelOp, Instr, IntWidth,
    LoadKind, MemArg, StoreKind,
};
use twine_wasm::types::{FuncType, Limits, ValType, Value};
use twine_wasm::{Module, ModuleBuilder};

/// `env` imports that stand in for libm (no Wasm equivalent instruction).
pub const LIBM_IMPORTS: [(&str, usize); 5] =
    [("exp", 1), ("log", 1), ("sin", 1), ("cos", 1), ("pow", 2)];

/// Builtins lowered directly to Wasm float instructions.
const WASM_BUILTINS: [&str; 4] = ["sqrt", "fabs", "floor", "ceil"];

fn valtype(ty: Ty) -> ValType {
    match ty {
        Ty::I32 => ValType::I32,
        Ty::I64 => ValType::I64,
        Ty::F32 => ValType::F32,
        Ty::F64 => ValType::F64,
    }
}

struct GlobalInfo {
    ty: Ty,
    dims: Vec<u32>,
    offset: u32,
}

struct FuncInfo {
    index: u32,
    params: Vec<Ty>,
    ret: Option<Ty>,
}

struct Env {
    globals: HashMap<String, GlobalInfo>,
    funcs: HashMap<String, FuncInfo>,
    /// Bytes of linear memory used by globals.
    globals_size: u32,
}

/// Generate a Wasm module from a parsed program.
pub fn generate(program: &Program) -> Result<Module, CompileError> {
    // ---- global layout ----------------------------------------------------
    let mut globals = HashMap::new();
    let mut offset = 8u32; // keep address 0 unused (null-ish guard)
    for g in &program.globals {
        if globals.contains_key(&g.name) {
            return Err(CompileError::new(g.line, format!("duplicate global {:?}", g.name)));
        }
        offset = (offset + 7) & !7;
        let size = g.byte_size();
        if u64::from(offset) + size > u64::from(u32::MAX) {
            return Err(CompileError::new(g.line, "globals exceed address space"));
        }
        globals.insert(
            g.name.clone(),
            GlobalInfo {
                ty: g.ty,
                dims: g.dims.clone(),
                offset,
            },
        );
        offset += size as u32;
    }

    // ---- imports (only those actually referenced) -------------------------
    let used_imports: Vec<(&str, usize)> = LIBM_IMPORTS
        .iter()
        .filter(|(name, _)| program_calls(program, name))
        .copied()
        .collect();

    let mut builder = ModuleBuilder::new();
    let mut funcs: HashMap<String, FuncInfo> = HashMap::new();
    for (name, arity) in &used_imports {
        let ty = FuncType::new(vec![ValType::F64; *arity], vec![ValType::F64]);
        let idx = builder.import_func("env", name, ty);
        funcs.insert(
            (*name).to_string(),
            FuncInfo {
                index: idx,
                params: vec![Ty::F64; *arity],
                ret: Some(Ty::F64),
            },
        );
    }

    // ---- function index pre-pass (allows mutual recursion) ----------------
    let n_imports = used_imports.len() as u32;
    for (i, f) in program.funcs.iter().enumerate() {
        if funcs.contains_key(&f.name) {
            return Err(CompileError::new(f.line, format!("duplicate function {:?}", f.name)));
        }
        funcs.insert(
            f.name.clone(),
            FuncInfo {
                index: n_imports + i as u32,
                params: f.params.iter().map(|(_, t)| *t).collect(),
                ret: f.ret,
            },
        );
    }

    let env = Env {
        globals,
        funcs,
        globals_size: offset,
    };

    // ---- memory ------------------------------------------------------------
    let pages = (u64::from(env.globals_size)).div_ceil(65_536) as u32 + 1;
    builder.memory(Limits::at_least(pages));
    builder.export_memory("memory");

    // ---- function bodies ----------------------------------------------------
    for f in &program.funcs {
        let mut gen = FnGen::new(&env, f)?;
        let mut body = Vec::new();
        gen.stmts(&f.body, &mut body)?;
        if let Some(ret) = f.ret {
            // Guarantee a result for fall-through paths (dead if the body
            // always returns).
            body.push(Instr::Const(zero_value(ret)));
        }
        let ty = FuncType::new(
            f.params.iter().map(|(_, t)| valtype(*t)).collect(),
            f.ret.map(valtype).into_iter().collect(),
        );
        let idx = builder.add_func(ty, gen.locals, body);
        debug_assert_eq!(idx, env.funcs[&f.name].index);
        builder.export_func(&f.name, idx);
    }

    Ok(builder.build())
}

fn zero_value(ty: Ty) -> Value {
    match ty {
        Ty::I32 => Value::I32(0),
        Ty::I64 => Value::I64(0),
        Ty::F32 => Value::F32(0.0),
        Ty::F64 => Value::F64(0.0),
    }
}

/// Does the program call the named function anywhere?
fn program_calls(program: &Program, name: &str) -> bool {
    fn expr_calls(e: &Expr, name: &str) -> bool {
        match &e.kind {
            ExprKind::Call(n, args) => n == name || args.iter().any(|a| expr_calls(a, name)),
            ExprKind::Binary(_, a, b) => expr_calls(a, name) || expr_calls(b, name),
            ExprKind::Neg(a) | ExprKind::Not(a) | ExprKind::Cast(_, a) => expr_calls(a, name),
            ExprKind::Index(_, idx) => idx.iter().any(|a| expr_calls(a, name)),
            _ => false,
        }
    }
    fn stmt_calls(s: &Stmt, name: &str) -> bool {
        match s {
            Stmt::Decl { init, .. } => init.as_ref().is_some_and(|e| expr_calls(e, name)),
            Stmt::Assign { target, value, .. } => {
                expr_calls(value, name)
                    || match target {
                        LValue::Index(_, idx) => idx.iter().any(|e| expr_calls(e, name)),
                        LValue::Var(_) => false,
                    }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_calls(cond, name)
                    || then_body.iter().any(|s| stmt_calls(s, name))
                    || else_body.iter().any(|s| stmt_calls(s, name))
            }
            Stmt::While { cond, body } => {
                expr_calls(cond, name) || body.iter().any(|s| stmt_calls(s, name))
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                init.as_ref().is_some_and(|s| stmt_calls(s, name))
                    || cond.as_ref().is_some_and(|e| expr_calls(e, name))
                    || step.as_ref().is_some_and(|s| stmt_calls(s, name))
                    || body.iter().any(|s| stmt_calls(s, name))
            }
            Stmt::Return(e, _) => e.as_ref().is_some_and(|e| expr_calls(e, name)),
            Stmt::ExprStmt(e) => expr_calls(e, name),
            Stmt::Block(body) => body.iter().any(|s| stmt_calls(s, name)),
            Stmt::Break(_) | Stmt::Continue(_) => false,
        }
    }
    program
        .funcs
        .iter()
        .any(|f| f.body.iter().any(|s| stmt_calls(s, name)))
}

struct FnGen<'e> {
    env: &'e Env,
    /// Declared (non-parameter) local types, in allocation order.
    locals: Vec<ValType>,
    n_params: usize,
    ret: Option<Ty>,
    scopes: Vec<HashMap<String, (u32, Ty)>>,
    /// Number of enclosing labelled constructs at the emission point.
    label_depth: u32,
    /// (break target depth, continue target depth) per enclosing loop.
    loops: Vec<(u32, u32)>,
    /// Lazily-allocated i32 scratch local for compound array assignment.
    scratch_i32: Option<u32>,
}

type GResult<T> = Result<T, CompileError>;

impl<'e> FnGen<'e> {
    fn new(env: &'e Env, f: &FuncDef) -> GResult<Self> {
        let mut top = HashMap::new();
        for (i, (name, ty)) in f.params.iter().enumerate() {
            if top.insert(name.clone(), (i as u32, *ty)).is_some() {
                return Err(CompileError::new(f.line, format!("duplicate parameter {name:?}")));
            }
        }
        Ok(Self {
            env,
            locals: Vec::new(),
            n_params: f.params.len(),
            ret: f.ret,
            scopes: vec![top],
            label_depth: 0,
            loops: Vec::new(),
            scratch_i32: None,
        })
    }

    fn alloc_local(&mut self, ty: Ty) -> u32 {
        let idx = (self.n_params + self.locals.len()) as u32;
        self.locals.push(valtype(ty));
        idx
    }

    fn scratch(&mut self) -> u32 {
        if let Some(s) = self.scratch_i32 {
            return s;
        }
        let s = self.alloc_local(Ty::I32);
        self.scratch_i32 = Some(s);
        s
    }

    fn lookup(&self, name: &str) -> Option<(u32, Ty)> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(*v);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt], out: &mut Vec<Instr>) -> GResult<()> {
        for s in stmts {
            self.stmt(s, out)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt, out: &mut Vec<Instr>) -> GResult<()> {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                let idx = self.alloc_local(*ty);
                let scope = self.scopes.last_mut().expect("scope");
                if scope.insert(name.clone(), (idx, *ty)).is_some() {
                    return Err(CompileError::new(
                        *line,
                        format!("duplicate declaration of {name:?} in scope"),
                    ));
                }
                if let Some(e) = init {
                    let vt = self.expr(e, out)?;
                    convert(out, vt, *ty);
                    out.push(Instr::LocalSet(idx));
                }
            }
            Stmt::Assign {
                target,
                op,
                value,
                line,
            } => self.assign(target, *op, value, *line, out)?,
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.condition(cond, out)?;
                let mut then_instrs = Vec::new();
                let mut else_instrs = Vec::new();
                self.label_depth += 1;
                self.scopes.push(HashMap::new());
                self.stmts(then_body, &mut then_instrs)?;
                self.scopes.pop();
                self.scopes.push(HashMap::new());
                self.stmts(else_body, &mut else_instrs)?;
                self.scopes.pop();
                self.label_depth -= 1;
                out.push(Instr::If(BlockType::Empty, then_instrs, else_instrs));
            }
            Stmt::While { cond, body } => {
                // block (D+1)  -- break target
                //   loop (D+2) -- continue target
                //     !cond -> br 1 (exit)
                //     body
                //     br 0 (head)
                let break_depth = self.label_depth + 1;
                let continue_depth = self.label_depth + 2;
                self.loops.push((break_depth, continue_depth));
                self.label_depth += 2;
                self.scopes.push(HashMap::new());
                let mut loop_body = Vec::new();
                self.condition(cond, &mut loop_body)?;
                loop_body.push(Instr::ITestEqz(IntWidth::W32));
                loop_body.push(Instr::BrIf(1));
                self.stmts(body, &mut loop_body)?;
                loop_body.push(Instr::Br(0));
                self.scopes.pop();
                self.label_depth -= 2;
                self.loops.pop();
                out.push(Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(BlockType::Empty, loop_body)],
                ));
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // init
                // block (D+1)        -- break target
                //   loop (D+2)
                //     !cond -> br 1
                //     block (D+3)    -- continue target
                //       body
                //     end
                //     step
                //     br 0
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i, out)?;
                }
                let break_depth = self.label_depth + 1;
                let continue_depth = self.label_depth + 3;
                self.loops.push((break_depth, continue_depth));

                self.label_depth += 2;
                let mut loop_body = Vec::new();
                if let Some(c) = cond {
                    self.condition(c, &mut loop_body)?;
                    loop_body.push(Instr::ITestEqz(IntWidth::W32));
                    loop_body.push(Instr::BrIf(1));
                }
                // inner block for continue
                self.label_depth += 1;
                self.scopes.push(HashMap::new());
                let mut inner = Vec::new();
                self.stmts(body, &mut inner)?;
                self.scopes.pop();
                self.label_depth -= 1;
                loop_body.push(Instr::Block(BlockType::Empty, inner));
                if let Some(s) = step {
                    self.stmt(s, &mut loop_body)?;
                }
                loop_body.push(Instr::Br(0));
                self.label_depth -= 2;
                self.loops.pop();
                self.scopes.pop();
                out.push(Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(BlockType::Empty, loop_body)],
                ));
            }
            Stmt::Return(e, line) => {
                match (e, self.ret) {
                    (Some(e), Some(rt)) => {
                        let vt = self.expr(e, out)?;
                        convert(out, vt, rt);
                    }
                    (None, None) => {}
                    (Some(_), None) => {
                        return Err(CompileError::new(*line, "void function returns a value"))
                    }
                    (None, Some(_)) => {
                        return Err(CompileError::new(*line, "non-void function returns nothing"))
                    }
                }
                out.push(Instr::Return);
            }
            Stmt::Break(line) => {
                let (break_depth, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "break outside loop"))?;
                out.push(Instr::Br(self.label_depth - break_depth));
            }
            Stmt::Continue(line) => {
                let (_, continue_depth) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "continue outside loop"))?;
                out.push(Instr::Br(self.label_depth - continue_depth));
            }
            Stmt::ExprStmt(e) => {
                let ty = self.expr_maybe_void(e, out)?;
                if ty.is_some() {
                    out.push(Instr::Drop);
                }
            }
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                self.stmts(body, out)?;
                self.scopes.pop();
            }
        }
        Ok(())
    }

    fn assign(
        &mut self,
        target: &LValue,
        op: Option<BinOp>,
        value: &Expr,
        line: u32,
        out: &mut Vec<Instr>,
    ) -> GResult<()> {
        match target {
            LValue::Var(name) => {
                if let Some((idx, ty)) = self.lookup(name) {
                    match op {
                        None => {
                            let vt = self.expr(value, out)?;
                            convert(out, vt, ty);
                        }
                        Some(op) => {
                            out.push(Instr::LocalGet(idx));
                            let common = self.compound_rhs(ty, op, value, line, out)?;
                            convert(out, common, ty);
                        }
                    }
                    out.push(Instr::LocalSet(idx));
                    Ok(())
                } else if let Some(g) = self.env.globals.get(name) {
                    if !g.dims.is_empty() {
                        return Err(CompileError::new(line, format!("{name:?} is an array")));
                    }
                    let (ty, base) = (g.ty, g.offset);
                    out.push(Instr::Const(Value::I32(0)));
                    match op {
                        None => {
                            let vt = self.expr(value, out)?;
                            convert(out, vt, ty);
                        }
                        Some(op) => {
                            out.push(Instr::Const(Value::I32(0)));
                            out.push(Instr::Load(load_kind(ty), MemArg { align: 0, offset: base }));
                            let common = self.compound_rhs(ty, op, value, line, out)?;
                            convert(out, common, ty);
                        }
                    }
                    out.push(Instr::Store(store_kind(ty), MemArg { align: 0, offset: base }));
                    Ok(())
                } else {
                    Err(CompileError::new(line, format!("undefined variable {name:?}")))
                }
            }
            LValue::Index(name, indices) => {
                let g = self
                    .env
                    .globals
                    .get(name)
                    .ok_or_else(|| CompileError::new(line, format!("undefined array {name:?}")))?;
                let (ty, base, dims) = (g.ty, g.offset, g.dims.clone());
                if indices.len() != dims.len() {
                    return Err(CompileError::new(
                        line,
                        format!(
                            "array {name:?} has {} dimensions, {} indices given",
                            dims.len(),
                            indices.len()
                        ),
                    ));
                }
                self.element_addr(&dims, ty, indices, out)?;
                match op {
                    None => {
                        let vt = self.expr(value, out)?;
                        convert(out, vt, ty);
                    }
                    Some(op) => {
                        // Keep the address in a scratch local so we can both
                        // load the old value and store the new one.
                        let scratch = self.scratch();
                        out.push(Instr::LocalTee(scratch));
                        out.push(Instr::Load(load_kind(ty), MemArg { align: 0, offset: base }));
                        let common = self.compound_rhs(ty, op, value, line, out)?;
                        convert(out, common, ty);
                        // Stack is [value]; rebuild [addr, value] via a
                        // second scratch for the value.
                        let vscratch = self.alloc_local(ty);
                        out.push(Instr::LocalSet(vscratch));
                        out.push(Instr::LocalGet(scratch));
                        out.push(Instr::LocalGet(vscratch));
                    }
                }
                out.push(Instr::Store(store_kind(ty), MemArg { align: 0, offset: base }));
                Ok(())
            }
        }
    }

    /// With the old value (type `lhs_ty`) already on the stack, generate the
    /// RHS and the operator in the promoted type; returns the promoted type.
    fn compound_rhs(
        &mut self,
        lhs_ty: Ty,
        op: BinOp,
        value: &Expr,
        line: u32,
        out: &mut Vec<Instr>,
    ) -> GResult<Ty> {
        // Old value is on top; may need conversion *under* the RHS — so
        // convert it now, before generating the RHS.
        let vt = self.peek_type(value)?;
        let common = Ty::promote(lhs_ty, vt);
        convert(out, lhs_ty, common);
        let actual = self.expr(value, out)?;
        debug_assert_eq!(actual, vt);
        convert(out, vt, common);
        emit_arith(op, common, line, out)?;
        Ok(common)
    }

    /// Push the byte address of an array element (i32) onto the stack.
    fn element_addr(
        &mut self,
        dims: &[u32],
        ty: Ty,
        indices: &[Expr],
        out: &mut Vec<Instr>,
    ) -> GResult<()> {
        // Horner: lin = ((i0*d1 + i1)*d2 + i2)...
        for (k, idx) in indices.iter().enumerate() {
            let it = self.expr(idx, out)?;
            convert_index_to_i32(out, it, idx.line)?;
            if k > 0 {
                out.push(Instr::IBinop(IntWidth::W32, IBinOp::Add));
            }
            if k + 1 < dims.len() {
                out.push(Instr::Const(Value::I32(dims[k + 1] as i32)));
                out.push(Instr::IBinop(IntWidth::W32, IBinOp::Mul));
            }
        }
        out.push(Instr::Const(Value::I32(ty.size() as i32)));
        out.push(Instr::IBinop(IntWidth::W32, IBinOp::Mul));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Static type of an expression without emitting code.
    fn peek_type(&mut self, e: &Expr) -> GResult<Ty> {
        Ok(match &e.kind {
            ExprKind::IntLit(v) => {
                if i32::try_from(*v).is_ok() {
                    Ty::I32
                } else {
                    Ty::I64
                }
            }
            ExprKind::FloatLit(_) => Ty::F64,
            ExprKind::Var(name) => {
                if let Some((_, t)) = self.lookup(name) {
                    t
                } else if let Some(g) = self.env.globals.get(name) {
                    g.ty
                } else {
                    return Err(CompileError::new(e.line, format!("undefined variable {name:?}")));
                }
            }
            ExprKind::Index(name, _) => {
                self.env
                    .globals
                    .get(name)
                    .ok_or_else(|| CompileError::new(e.line, format!("undefined array {name:?}")))?
                    .ty
            }
            ExprKind::Binary(op, a, b) => {
                if op.is_comparison() || op.is_logical() {
                    Ty::I32
                } else {
                    Ty::promote(self.peek_type(a)?, self.peek_type(b)?)
                }
            }
            ExprKind::Neg(a) => self.peek_type(a)?,
            ExprKind::Not(_) => Ty::I32,
            ExprKind::Cast(t, _) => *t,
            ExprKind::Call(name, _) => {
                if WASM_BUILTINS.contains(&name.as_str()) {
                    Ty::F64
                } else if let Some(f) = self.env.funcs.get(name) {
                    f.ret.ok_or_else(|| {
                        CompileError::new(e.line, format!("void function {name:?} used as value"))
                    })?
                } else {
                    return Err(CompileError::new(e.line, format!("undefined function {name:?}")));
                }
            }
        })
    }

    /// Generate an expression; returns its type.
    fn expr(&mut self, e: &Expr, out: &mut Vec<Instr>) -> GResult<Ty> {
        self.expr_maybe_void(e, out)?
            .ok_or_else(|| CompileError::new(e.line, "void value used in expression"))
    }

    #[allow(clippy::too_many_lines)]
    fn expr_maybe_void(&mut self, e: &Expr, out: &mut Vec<Instr>) -> GResult<Option<Ty>> {
        let line = e.line;
        Ok(Some(match &e.kind {
            ExprKind::IntLit(v) => {
                if let Ok(v32) = i32::try_from(*v) {
                    out.push(Instr::Const(Value::I32(v32)));
                    Ty::I32
                } else {
                    out.push(Instr::Const(Value::I64(*v)));
                    Ty::I64
                }
            }
            ExprKind::FloatLit(v) => {
                out.push(Instr::Const(Value::F64(*v)));
                Ty::F64
            }
            ExprKind::Var(name) => {
                if let Some((idx, ty)) = self.lookup(name) {
                    out.push(Instr::LocalGet(idx));
                    ty
                } else if let Some(g) = self.env.globals.get(name) {
                    if !g.dims.is_empty() {
                        return Err(CompileError::new(
                            line,
                            format!("array {name:?} used without indices"),
                        ));
                    }
                    out.push(Instr::Const(Value::I32(0)));
                    out.push(Instr::Load(
                        load_kind(g.ty),
                        MemArg { align: 0, offset: g.offset },
                    ));
                    g.ty
                } else {
                    return Err(CompileError::new(line, format!("undefined variable {name:?}")));
                }
            }
            ExprKind::Index(name, indices) => {
                let g = self
                    .env
                    .globals
                    .get(name)
                    .ok_or_else(|| CompileError::new(line, format!("undefined array {name:?}")))?;
                let (ty, base, dims) = (g.ty, g.offset, g.dims.clone());
                if indices.len() != dims.len() {
                    return Err(CompileError::new(
                        line,
                        format!(
                            "array {name:?} has {} dimensions, {} indices given",
                            dims.len(),
                            indices.len()
                        ),
                    ));
                }
                self.element_addr(&dims, ty, indices, out)?;
                out.push(Instr::Load(load_kind(ty), MemArg { align: 0, offset: base }));
                ty
            }
            ExprKind::Binary(op, a, b) => {
                if op.is_logical() {
                    // Short-circuit: a && b / a || b yield 0 or 1.
                    self.condition(a, out)?;
                    let mut then_body = Vec::new();
                    let mut else_body = Vec::new();
                    self.label_depth += 1;
                    if *op == BinOp::And {
                        self.condition(b, &mut then_body)?;
                        else_body.push(Instr::Const(Value::I32(0)));
                    } else {
                        then_body.push(Instr::Const(Value::I32(1)));
                        self.condition(b, &mut else_body)?;
                    }
                    self.label_depth -= 1;
                    out.push(Instr::If(
                        BlockType::Value(ValType::I32),
                        then_body,
                        else_body,
                    ));
                    Ty::I32
                } else {
                    let at = self.peek_type(a)?;
                    let bt = self.peek_type(b)?;
                    let common = Ty::promote(at, bt);
                    let aa = self.expr(a, out)?;
                    debug_assert_eq!(aa, at);
                    convert(out, at, common);
                    let bb = self.expr(b, out)?;
                    debug_assert_eq!(bb, bt);
                    convert(out, bt, common);
                    if op.is_comparison() {
                        emit_compare(*op, common, out);
                        Ty::I32
                    } else {
                        emit_arith(*op, common, line, out)?;
                        common
                    }
                }
            }
            ExprKind::Neg(a) => {
                let ty = self.expr(a, out)?;
                match ty {
                    Ty::I32 => {
                        out.push(Instr::Const(Value::I32(-1)));
                        out.push(Instr::IBinop(IntWidth::W32, IBinOp::Mul));
                    }
                    Ty::I64 => {
                        out.push(Instr::Const(Value::I64(-1)));
                        out.push(Instr::IBinop(IntWidth::W64, IBinOp::Mul));
                    }
                    Ty::F32 => out.push(Instr::FUnop(FloatWidth::W32, FUnOp::Neg)),
                    Ty::F64 => out.push(Instr::FUnop(FloatWidth::W64, FUnOp::Neg)),
                }
                ty
            }
            ExprKind::Not(a) => {
                let ty = self.expr(a, out)?;
                match ty {
                    Ty::I32 => out.push(Instr::ITestEqz(IntWidth::W32)),
                    Ty::I64 => out.push(Instr::ITestEqz(IntWidth::W64)),
                    Ty::F32 => {
                        out.push(Instr::Const(Value::F32(0.0)));
                        out.push(Instr::FRelop(FloatWidth::W32, FRelOp::Eq));
                    }
                    Ty::F64 => {
                        out.push(Instr::Const(Value::F64(0.0)));
                        out.push(Instr::FRelop(FloatWidth::W64, FRelOp::Eq));
                    }
                }
                Ty::I32
            }
            ExprKind::Cast(ty, a) => {
                let at = self.expr(a, out)?;
                convert(out, at, *ty);
                *ty
            }
            ExprKind::Call(name, args) => {
                if WASM_BUILTINS.contains(&name.as_str()) {
                    if args.len() != 1 {
                        return Err(CompileError::new(
                            line,
                            format!("{name} takes exactly one argument"),
                        ));
                    }
                    let at = self.expr(&args[0], out)?;
                    convert(out, at, Ty::F64);
                    let op = match name.as_str() {
                        "sqrt" => FUnOp::Sqrt,
                        "fabs" => FUnOp::Abs,
                        "floor" => FUnOp::Floor,
                        _ => FUnOp::Ceil,
                    };
                    out.push(Instr::FUnop(FloatWidth::W64, op));
                    Ty::F64
                } else {
                    let f = self
                        .env
                        .funcs
                        .get(name)
                        .ok_or_else(|| {
                            CompileError::new(line, format!("undefined function {name:?}"))
                        })?;
                    let (index, params, ret) = (f.index, f.params.clone(), f.ret);
                    if args.len() != params.len() {
                        return Err(CompileError::new(
                            line,
                            format!(
                                "{name:?} takes {} arguments, {} given",
                                params.len(),
                                args.len()
                            ),
                        ));
                    }
                    for (arg, pt) in args.iter().zip(params.iter()) {
                        let at = self.expr(arg, out)?;
                        convert(out, at, *pt);
                    }
                    out.push(Instr::Call(index));
                    match ret {
                        Some(t) => t,
                        None => return Ok(None),
                    }
                }
            }
        }))
    }

    /// Generate a condition as an i32 truth value (0 or 1 for logical ops;
    /// any non-zero i32 is accepted by `if`/`br_if`).
    fn condition(&mut self, e: &Expr, out: &mut Vec<Instr>) -> GResult<()> {
        let ty = self.expr(e, out)?;
        match ty {
            Ty::I32 => {}
            Ty::I64 => {
                // i64 truth value: x != 0.
                out.push(Instr::Const(Value::I64(0)));
                out.push(Instr::IRelop(IntWidth::W64, IRelOp::Ne));
            }
            Ty::F32 => {
                out.push(Instr::Const(Value::F32(0.0)));
                out.push(Instr::FRelop(FloatWidth::W32, FRelOp::Ne));
            }
            Ty::F64 => {
                out.push(Instr::Const(Value::F64(0.0)));
                out.push(Instr::FRelop(FloatWidth::W64, FRelOp::Ne));
            }
        }
        Ok(())
    }
}

fn convert_index_to_i32(out: &mut Vec<Instr>, ty: Ty, line: u32) -> GResult<()> {
    match ty {
        Ty::I32 => Ok(()),
        Ty::I64 => {
            out.push(Instr::Cvt(CvtOp::I32WrapI64));
            Ok(())
        }
        _ => Err(CompileError::new(line, "array index must be an integer")),
    }
}

fn load_kind(ty: Ty) -> LoadKind {
    match ty {
        Ty::I32 => LoadKind::I32,
        Ty::I64 => LoadKind::I64,
        Ty::F32 => LoadKind::F32,
        Ty::F64 => LoadKind::F64,
    }
}

fn store_kind(ty: Ty) -> StoreKind {
    match ty {
        Ty::I32 => StoreKind::I32,
        Ty::I64 => StoreKind::I64,
        Ty::F32 => StoreKind::F32,
        Ty::F64 => StoreKind::F64,
    }
}

/// Emit conversion ops for `from` → `to` (C-style value conversion).
fn convert(out: &mut Vec<Instr>, from: Ty, to: Ty) {
    use CvtOp::*;
    if from == to {
        return;
    }
    let op = match (from, to) {
        (Ty::I32, Ty::I64) => I64ExtendI32S,
        (Ty::I32, Ty::F32) => F32ConvertI32S,
        (Ty::I32, Ty::F64) => F64ConvertI32S,
        (Ty::I64, Ty::I32) => I32WrapI64,
        (Ty::I64, Ty::F32) => F32ConvertI64S,
        (Ty::I64, Ty::F64) => F64ConvertI64S,
        (Ty::F32, Ty::I32) => I32TruncF32S,
        (Ty::F32, Ty::I64) => I64TruncF32S,
        (Ty::F32, Ty::F64) => F64PromoteF32,
        (Ty::F64, Ty::I32) => I32TruncF64S,
        (Ty::F64, Ty::I64) => I64TruncF64S,
        (Ty::F64, Ty::F32) => F32DemoteF64,
        _ => unreachable!("identity handled above"),
    };
    out.push(Instr::Cvt(op));
}

fn emit_compare(op: BinOp, ty: Ty, out: &mut Vec<Instr>) {
    match ty {
        Ty::I32 | Ty::I64 => {
            let w = if ty == Ty::I32 { IntWidth::W32 } else { IntWidth::W64 };
            let rel = match op {
                BinOp::Eq => IRelOp::Eq,
                BinOp::Ne => IRelOp::Ne,
                BinOp::Lt => IRelOp::LtS,
                BinOp::Le => IRelOp::LeS,
                BinOp::Gt => IRelOp::GtS,
                BinOp::Ge => IRelOp::GeS,
                _ => unreachable!(),
            };
            out.push(Instr::IRelop(w, rel));
        }
        Ty::F32 | Ty::F64 => {
            let w = if ty == Ty::F32 { FloatWidth::W32 } else { FloatWidth::W64 };
            let rel = match op {
                BinOp::Eq => FRelOp::Eq,
                BinOp::Ne => FRelOp::Ne,
                BinOp::Lt => FRelOp::Lt,
                BinOp::Le => FRelOp::Le,
                BinOp::Gt => FRelOp::Gt,
                BinOp::Ge => FRelOp::Ge,
                _ => unreachable!(),
            };
            out.push(Instr::FRelop(w, rel));
        }
    }
}

fn emit_arith(op: BinOp, ty: Ty, line: u32, out: &mut Vec<Instr>) -> GResult<()> {
    match ty {
        Ty::I32 | Ty::I64 => {
            let w = if ty == Ty::I32 { IntWidth::W32 } else { IntWidth::W64 };
            let bin = match op {
                BinOp::Add => IBinOp::Add,
                BinOp::Sub => IBinOp::Sub,
                BinOp::Mul => IBinOp::Mul,
                BinOp::Div => IBinOp::DivS,
                BinOp::Rem => IBinOp::RemS,
                _ => unreachable!("non-arithmetic operator"),
            };
            out.push(Instr::IBinop(w, bin));
        }
        Ty::F32 | Ty::F64 => {
            if op == BinOp::Rem {
                return Err(CompileError::new(line, "% requires integer operands"));
            }
            let w = if ty == Ty::F32 { FloatWidth::W32 } else { FloatWidth::W64 };
            let bin = match op {
                BinOp::Add => FBinOp::Add,
                BinOp::Sub => FBinOp::Sub,
                BinOp::Mul => FBinOp::Mul,
                BinOp::Div => FBinOp::Div,
                _ => unreachable!("non-arithmetic operator"),
            };
            out.push(Instr::FBinop(w, bin));
        }
    }
    Ok(())
}
