//! # twine-minicc
//!
//! A small C-subset compiler targeting WebAssembly, standing in for the
//! Clang/LLVM → Wasm+WASI toolchain of the paper's Figure 1 (offline
//! environments cannot run a real C compiler, so the PolyBench/C kernels of
//! §V-B are written in this dialect and compiled to genuine Wasm bytecode).
//!
//! ## The MiniC dialect
//!
//! * Scalar types: `int` (i32), `long` (i64), `float` (f32), `double` (f64).
//! * Global variables, including multi-dimensional arrays with constant
//!   dimensions (`double A[128][128];`) laid out row-major in linear memory.
//! * Functions with parameters and scalar returns; recursion allowed.
//! * Statements: declarations, assignment (incl. `+=` family), `if`/`else`,
//!   `while`, `for`, `break`, `continue`, `return`, blocks.
//! * Expressions: arithmetic with C-style promotions, comparisons, `&&`/`||`
//!   with short-circuit evaluation, `!`, unary `-`, casts
//!   (`(int)x`, `(double)n`), calls, array indexing.
//! * Built-ins lowered to Wasm instructions: `sqrt`, `fabs`, `floor`,
//!   `ceil`. Built-ins lowered to `env` imports (libm analogue): `exp`,
//!   `log`, `pow`, `sin`, `cos`.
//!
//! ```
//! let src = "int add(int a, int b) { return a + b; }";
//! let module = twine_minicc::compile(src).unwrap();
//! let bytes = twine_minicc::compile_to_bytes(src).unwrap();
//! assert!(bytes.starts_with(b"\0asm"));
//! # let _ = module;
//! ```
//!
//! **Dependency graph**: depends only on `twine-wasm` (emits modules via
//! `ModuleBuilder`). Consumed by `twine-polybench` (kernel compilation)
//! and `twine-core`'s examples/tests. Paper anchor: Figure 1, §V-B.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;

use twine_wasm::Module;

/// A compilation error with a source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line where the error was detected.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

impl CompileError {
    pub(crate) fn new(line: u32, msg: impl Into<String>) -> Self {
        Self {
            line,
            msg: msg.into(),
        }
    }
}

/// Compile MiniC source into a Wasm [`Module`].
///
/// Every top-level function is exported under its own name; linear memory is
/// sized to hold all globals plus `extra_pages` of headroom and exported as
/// `"memory"`.
pub fn compile(source: &str) -> Result<Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(tokens)?;
    codegen::generate(&program)
}

/// Compile MiniC source all the way to `.wasm` bytes.
pub fn compile_to_bytes(source: &str) -> Result<Vec<u8>, CompileError> {
    Ok(twine_wasm::encode::encode(&compile(source)?))
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_error_display() {
        let e = super::CompileError::new(3, "unexpected token");
        assert_eq!(e.to_string(), "line 3: unexpected token");
    }
}
