//! Abstract syntax tree of the MiniC dialect.

/// Scalar types of the language, mapping 1:1 to Wasm value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// `int` → i32
    I32,
    /// `long` → i64
    I64,
    /// `float` → f32
    F32,
    /// `double` → f64
    F64,
}

impl Ty {
    /// Size of a value of this type in linear memory.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            Ty::I32 | Ty::F32 => 4,
            Ty::I64 | Ty::F64 => 8,
        }
    }

    /// Whether this is a floating-point type.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// C usual-arithmetic-conversions rank.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            Ty::I32 => 0,
            Ty::I64 => 1,
            Ty::F32 => 2,
            Ty::F64 => 3,
        }
    }

    /// The common type of a binary operation per C promotion rules.
    #[must_use]
    pub fn promote(a: Ty, b: Ty) -> Ty {
        if a.rank() >= b.rank() {
            a
        } else {
            b
        }
    }
}

impl core::fmt::Display for Ty {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Ty::I32 => "int",
            Ty::I64 => "long",
            Ty::F32 => "float",
            Ty::F64 => "double",
        };
        write!(f, "{s}")
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// Whether the operator produces an `int` truth value.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is logical (`&&`/`||`).
    #[must_use]
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// An expression, annotated with its source line for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Node kind.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal (type `int` if it fits, else `long`).
    IntLit(i64),
    /// Floating literal (`double`).
    FloatLit(f64),
    /// Scalar variable reference (local, parameter or global).
    Var(String),
    /// Array element read: `A[i][j]`.
    Index(String, Vec<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Logical not (`!x` → `x == 0`).
    Not(Box<Expr>),
    /// Explicit cast.
    Cast(Ty, Box<Expr>),
    /// Function call (user function or builtin).
    Call(String, Vec<Expr>),
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index(String, Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration with optional initialiser.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Optional initialiser.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Assignment, possibly compound (`op` is the `+` of `+=`).
    Assign {
        /// Target.
        target: LValue,
        /// `Some(op)` for compound assignment.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// Two-armed conditional.
    If {
        /// Condition (integer truth value).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// While loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// C-style for loop.
    For {
        /// Initialiser statement (declaration or assignment), optional.
        init: Option<Box<Stmt>>,
        /// Condition, optional (missing = true).
        cond: Option<Expr>,
        /// Step statement, optional.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr;` or `return;`
    Return(Option<Expr>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// Expression evaluated for side effects (function call).
    ExprStmt(Expr),
    /// Nested block scope.
    Block(Vec<Stmt>),
}

/// A global variable (scalar if `dims` is empty, else a row-major array).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalVar {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Constant dimensions (empty for scalars).
    pub dims: Vec<u32>,
    /// Source line.
    pub line: u32,
}

impl GlobalVar {
    /// Number of scalar elements.
    #[must_use]
    pub fn element_count(&self) -> u64 {
        self.dims.iter().map(|&d| u64::from(d)).product::<u64>().max(1)
    }

    /// Total byte size.
    #[must_use]
    pub fn byte_size(&self) -> u64 {
        self.element_count() * u64::from(self.ty.size())
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Name (also the export name).
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Ty)>,
    /// Return type (`None` = void).
    pub ret: Option<Ty>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A complete translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Global variables, in declaration order.
    pub globals: Vec<GlobalVar>,
    /// Function definitions, in declaration order.
    pub funcs: Vec<FuncDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_follows_rank() {
        assert_eq!(Ty::promote(Ty::I32, Ty::F64), Ty::F64);
        assert_eq!(Ty::promote(Ty::I64, Ty::I32), Ty::I64);
        assert_eq!(Ty::promote(Ty::F32, Ty::I64), Ty::F32);
        assert_eq!(Ty::promote(Ty::I32, Ty::I32), Ty::I32);
    }

    #[test]
    fn global_sizes() {
        let g = GlobalVar {
            name: "A".into(),
            ty: Ty::F64,
            dims: vec![10, 20],
            line: 1,
        };
        assert_eq!(g.element_count(), 200);
        assert_eq!(g.byte_size(), 1600);
        let s = GlobalVar {
            name: "x".into(),
            ty: Ty::I32,
            dims: vec![],
            line: 1,
        };
        assert_eq!(s.element_count(), 1);
        assert_eq!(s.byte_size(), 4);
    }
}
