//! Tokeniser for the MiniC dialect.

use crate::CompileError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Punctuation / operator, e.g. `"+"`, `"<="`, `"&&"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
}

const PUNCTS2: [&str; 11] = ["<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%="];
const PUNCTS1: [&str; 16] = [
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "{", "}", "[", "]", ";",
];

/// Tokenise `source`.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let ident = &source[start..i];
                out.push(Token {
                    tok: Tok::Ident(ident.to_string()),
                    line,
                });
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut is_float = c == b'.';
                if is_float {
                    i += 1; // consume the leading '.' of a ".5" literal
                }
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !is_float => {
                            is_float = true;
                            i += 1;
                        }
                        b'e' | b'E' if i > start => {
                            is_float = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &source[start..i];
                // Optional L / f suffix.
                let mut long_suffix = false;
                if i < bytes.len() && (bytes[i] == b'L' || bytes[i] == b'l') {
                    long_suffix = true;
                    i += 1;
                } else if i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'F') {
                    is_float = true;
                    i += 1;
                }
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| CompileError::new(line, format!("bad float literal {text:?}")))?;
                    out.push(Token {
                        tok: Tok::Float(v),
                        line,
                    });
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| CompileError::new(line, format!("bad int literal {text:?}")))?;
                    // The `L` suffix is accepted for C compatibility; the
                    // type checker promotes by value range either way.
                    let _ = long_suffix;
                    out.push(Token {
                        tok: Tok::Int(v),
                        line,
                    });
                }
            }
            b',' => {
                out.push(Token {
                    tok: Tok::Punct(","),
                    line,
                });
                i += 1;
            }
            _ => {
                let rest = &source[i..];
                if let Some(p) = PUNCTS2.iter().find(|p| rest.starts_with(**p)) {
                    out.push(Token {
                        tok: Tok::Punct(p),
                        line,
                    });
                    i += 2;
                } else if let Some(p) = PUNCTS1.iter().find(|p| rest.starts_with(**p)) {
                    out.push(Token {
                        tok: Tok::Punct(p),
                        line,
                    });
                    i += 1;
                } else {
                    return Err(CompileError::new(
                        line,
                        format!("unexpected character {:?}", rest.chars().next().unwrap()),
                    ));
                }
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn floats_and_exponents() {
        assert_eq!(toks("1.5")[0], Tok::Float(1.5));
        assert_eq!(toks("2e3")[0], Tok::Float(2000.0));
        assert_eq!(toks("1.5e-2")[0], Tok::Float(0.015));
        assert_eq!(toks("3.0f")[0], Tok::Float(3.0));
        assert_eq!(toks(".5")[0], Tok::Float(0.5));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("a <= b && c != d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("&&"),
                Tok::Ident("c".into()),
                Tok::Punct("!="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_lines_counted() {
        let tokens = lex("// line comment\n/* block\ncomment */ x").unwrap();
        assert_eq!(tokens[0].tok, Tok::Ident("x".into()));
        assert_eq!(tokens[0].line, 3);
    }

    #[test]
    fn compound_assignment_ops() {
        assert_eq!(toks("x += 1")[1], Tok::Punct("+="));
        assert_eq!(toks("x %= 2")[1], Tok::Punct("%="));
    }

    #[test]
    fn bad_char_rejected() {
        assert!(lex("int x @ y").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
