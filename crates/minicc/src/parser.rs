//! Recursive-descent parser for the MiniC dialect.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::CompileError;

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: Vec<Token>) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, CompileError>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(CompileError::new(
                self.line(),
                format!("expected {p:?}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CompileError::new(
                self.line(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn peek_type(&self) -> Option<Ty> {
        match self.peek() {
            Tok::Ident(s) => match s.as_str() {
                "int" => Some(Ty::I32),
                "long" => Some(Ty::I64),
                "float" => Some(Ty::F32),
                "double" => Some(Ty::F64),
                _ => None,
            },
            _ => None,
        }
    }

    fn program(&mut self) -> PResult<Program> {
        let mut prog = Program::default();
        while !matches!(self.peek(), Tok::Eof) {
            let line = self.line();
            // `void` or a type keyword begins every top-level item.
            let is_void = matches!(self.peek(), Tok::Ident(s) if s == "void");
            let ty = self.peek_type();
            if !is_void && ty.is_none() {
                return Err(CompileError::new(
                    line,
                    format!("expected type at top level, found {:?}", self.peek()),
                ));
            }
            self.bump(); // type / void
            let name = self.expect_ident()?;
            if self.eat_punct("(") {
                // Function definition.
                let mut params = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        let pty = self.peek_type().ok_or_else(|| {
                            CompileError::new(self.line(), "expected parameter type")
                        })?;
                        self.bump();
                        let pname = self.expect_ident()?;
                        params.push((pname, pty));
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                let body = self.block()?;
                prog.funcs.push(FuncDef {
                    name,
                    params,
                    ret: if is_void { None } else { ty },
                    body,
                    line,
                });
            } else {
                // Global variable (possibly an array).
                if is_void {
                    return Err(CompileError::new(line, "void variable is not allowed"));
                }
                let mut dims = Vec::new();
                while self.eat_punct("[") {
                    match self.bump() {
                        Tok::Int(n) if n > 0 => dims.push(n as u32),
                        other => {
                            return Err(CompileError::new(
                                self.line(),
                                format!("expected positive array dimension, found {other:?}"),
                            ))
                        }
                    }
                    self.expect_punct("]")?;
                }
                self.expect_punct(";")?;
                prog.globals.push(GlobalVar {
                    name,
                    ty: ty.expect("checked above"),
                    dims,
                    line,
                });
            }
        }
        Ok(prog)
    }

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(CompileError::new(self.line(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    /// A statement body that may be a block or a single statement.
    fn stmt_or_block(&mut self) -> PResult<Vec<Stmt>> {
        if matches!(self.peek(), Tok::Punct("{")) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        if let Some(ty) = self.peek_type() {
            // Local declaration.
            self.bump();
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Decl {
                name,
                ty,
                init,
                line,
            });
        }
        if let Tok::Ident(kw) = self.peek() {
            match kw.as_str() {
                "if" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let cond = self.expr()?;
                    self.expect_punct(")")?;
                    let then_body = self.stmt_or_block()?;
                    let else_body = if matches!(self.peek(), Tok::Ident(s) if s == "else") {
                        self.bump();
                        self.stmt_or_block()?
                    } else {
                        Vec::new()
                    };
                    return Ok(Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    });
                }
                "while" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let cond = self.expr()?;
                    self.expect_punct(")")?;
                    let body = self.stmt_or_block()?;
                    return Ok(Stmt::While { cond, body });
                }
                "for" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let init = if self.eat_punct(";") {
                        None
                    } else if self.peek_type().is_some() {
                        Some(Box::new(self.stmt()?)) // decl consumes ';'
                    } else {
                        let s = self.assign_or_expr_stmt()?;
                        self.expect_punct(";")?;
                        Some(Box::new(s))
                    };
                    let cond = if matches!(self.peek(), Tok::Punct(";")) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_punct(";")?;
                    let step = if matches!(self.peek(), Tok::Punct(")")) {
                        None
                    } else {
                        Some(Box::new(self.assign_or_expr_stmt()?))
                    };
                    self.expect_punct(")")?;
                    let body = self.stmt_or_block()?;
                    return Ok(Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                    });
                }
                "return" => {
                    self.bump();
                    let e = if matches!(self.peek(), Tok::Punct(";")) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_punct(";")?;
                    return Ok(Stmt::Return(e, line));
                }
                "break" => {
                    self.bump();
                    self.expect_punct(";")?;
                    return Ok(Stmt::Break(line));
                }
                "continue" => {
                    self.bump();
                    self.expect_punct(";")?;
                    return Ok(Stmt::Continue(line));
                }
                _ => {}
            }
        }
        if matches!(self.peek(), Tok::Punct("{")) {
            return Ok(Stmt::Block(self.block()?));
        }
        let s = self.assign_or_expr_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// Parse `lvalue = expr`, `lvalue op= expr`, or a bare expression, not
    /// consuming the trailing `;`.
    fn assign_or_expr_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        let e = self.expr()?;
        let compound = |p: &str| -> Option<BinOp> {
            match p {
                "+=" => Some(BinOp::Add),
                "-=" => Some(BinOp::Sub),
                "*=" => Some(BinOp::Mul),
                "/=" => Some(BinOp::Div),
                "%=" => Some(BinOp::Rem),
                _ => None,
            }
        };
        let (op, is_assign) = match self.peek() {
            Tok::Punct("=") => (None, true),
            Tok::Punct(p) => match compound(p) {
                Some(op) => (Some(op), true),
                None => (None, false),
            },
            _ => (None, false),
        };
        if is_assign {
            self.bump();
            let target = match e.kind {
                ExprKind::Var(name) => LValue::Var(name),
                ExprKind::Index(name, idx) => LValue::Index(name, idx),
                _ => {
                    return Err(CompileError::new(line, "invalid assignment target"));
                }
            };
            let value = self.expr()?;
            return Ok(Stmt::Assign {
                target,
                op,
                value,
                line,
            });
        }
        Ok(Stmt::ExprStmt(e))
    }

    // -- expression precedence climbing ------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Tok::Punct("||")) {
            let line = self.line();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr {
                kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.equality()?;
        while matches!(self.peek(), Tok::Punct("&&")) {
            let line = self.line();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr {
                kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> PResult<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("==") => BinOp::Eq,
                Tok::Punct("!=") => BinOp::Ne,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> PResult<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("<") => BinOp::Lt,
                Tok::Punct("<=") => BinOp::Le,
                Tok::Punct(">") => BinOp::Gt,
                Tok::Punct(">=") => BinOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Rem,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let line = self.line();
        if self.eat_punct("-") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Neg(Box::new(e)),
                line,
            });
        }
        if self.eat_punct("!") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Not(Box::new(e)),
                line,
            });
        }
        // Cast: '(' type ')' unary
        if matches!(self.peek(), Tok::Punct("(")) {
            if let Tok::Ident(s) = self.peek2() {
                let ty = match s.as_str() {
                    "int" => Some(Ty::I32),
                    "long" => Some(Ty::I64),
                    "float" => Some(Ty::F32),
                    "double" => Some(Ty::F64),
                    _ => None,
                };
                if let Some(ty) = ty {
                    self.bump(); // (
                    self.bump(); // type
                    self.expect_punct(")")?;
                    let e = self.unary()?;
                    return Ok(Expr {
                        kind: ExprKind::Cast(ty, Box::new(e)),
                        line,
                    });
                }
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr {
                kind: ExprKind::IntLit(v),
                line,
            }),
            Tok::Float(v) => Ok(Expr {
                kind: ExprKind::FloatLit(v),
                line,
            }),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        line,
                    });
                }
                if matches!(self.peek(), Tok::Punct("[")) {
                    let mut indices = Vec::new();
                    while self.eat_punct("[") {
                        indices.push(self.expr()?);
                        self.expect_punct("]")?;
                    }
                    return Ok(Expr {
                        kind: ExprKind::Index(name, indices),
                        line,
                    });
                }
                Ok(Expr {
                    kind: ExprKind::Var(name),
                    line,
                })
            }
            other => Err(CompileError::new(
                line,
                format!("unexpected token {other:?} in expression"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parse_global_array() {
        let p = parse_src("double A[4][8];\nint n;\n");
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].dims, vec![4, 8]);
        assert_eq!(p.globals[0].ty, Ty::F64);
        assert!(p.globals[1].dims.is_empty());
    }

    #[test]
    fn parse_function_with_params() {
        let p = parse_src("int add(int a, int b) { return a + b; }");
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(Ty::I32));
        assert!(matches!(f.body[0], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn parse_void_function() {
        let p = parse_src("void f() { return; }");
        assert_eq!(p.funcs[0].ret, None);
    }

    #[test]
    fn parse_for_loop() {
        let p = parse_src(
            "void f() { int s = 0; for (int i = 0; i < 10; i += 1) { s += i; } }",
        );
        match &p.funcs[0].body[1] {
            Stmt::For { init, cond, step, body } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse_src("int f() { return 1 + 2 * 3; }");
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cast_vs_parenthesised_expr() {
        let p = parse_src("double f(int n) { return (double)n + (n * 2); }");
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Binary(BinOp::Add, lhs, _) => {
                    assert!(matches!(lhs.kind, ExprKind::Cast(Ty::F64, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_assignment() {
        let p = parse_src("double A[4]; void f() { A[2] = 1.5; }");
        match &p.funcs[0].body[0] {
            Stmt::Assign { target: LValue::Index(name, idx), op: None, .. } => {
                assert_eq!(name, "A");
                assert_eq!(idx.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse(lex("int f( {").unwrap()).is_err());
        assert!(parse(lex("42;").unwrap()).is_err());
        assert!(parse(lex("int f() { 1 = 2; }").unwrap()).is_err());
    }
}
