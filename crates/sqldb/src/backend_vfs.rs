//! VFS-over-backend adapter: routes the pager's I/O through a WASI
//! [`FsBackend`].
//!
//! This is the layering that puts a tenant database *inside* its session:
//! a service session owns a `twine-pfs` backend (every byte sealed before
//! it leaves the enclave), and the database opened through [`BackendVfs`]
//! stores its pages — and its rollback journal — in that same backend. The
//! session's park/evict/restore and durable-park paths then carry the
//! database automatically, because the database *is* backend state.

use std::sync::{Arc, Mutex};

use twine_wasi::ctx::{FsBackend, WasiFile};
use twine_wasi::errno::Errno;

use crate::vfs::{Vfs, VfsFile};
use crate::{DbError, DbResult};

/// Shared handle to a backend, cloneable so the embedder keeps a handle
/// to the same namespace the database writes into.
pub type SharedBackend = Arc<Mutex<Box<dyn FsBackend>>>;

fn storage_err(op: &str, path: &str, e: Errno) -> DbError {
    DbError::Storage(format!("{op} {path}: {e:?}"))
}

/// A [`Vfs`] serving all file I/O from a WASI [`FsBackend`].
pub struct BackendVfs {
    backend: SharedBackend,
}

impl BackendVfs {
    /// Wrap an owned backend.
    #[must_use]
    pub fn new(backend: Box<dyn FsBackend>) -> Self {
        Self {
            backend: Arc::new(Mutex::new(backend)),
        }
    }

    /// Wrap an already-shared backend.
    #[must_use]
    pub fn from_shared(backend: SharedBackend) -> Self {
        Self { backend }
    }

    /// The shared backend handle (for inspection or reclaiming).
    #[must_use]
    pub fn shared(&self) -> SharedBackend {
        self.backend.clone()
    }
}

impl Vfs for BackendVfs {
    fn open(&mut self, name: &str) -> DbResult<Box<dyn VfsFile>> {
        let inner = self
            .backend
            .lock()
            .unwrap()
            .open(name, true, false)
            .map_err(|e| storage_err("open", name, e))?;
        Ok(Box::new(BackendVfsFile {
            name: name.to_string(),
            inner,
        }))
    }

    fn delete(&mut self, name: &str) -> DbResult<()> {
        self.backend
            .lock()
            .unwrap()
            .unlink(name)
            .map_err(|e| storage_err("unlink", name, e))
    }

    fn exists(&mut self, name: &str) -> bool {
        self.backend.lock().unwrap().exists(name)
    }
}

struct BackendVfsFile {
    name: String,
    inner: Box<dyn WasiFile>,
}

impl VfsFile for BackendVfsFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> DbResult<()> {
        buf.fill(0);
        let size = self.inner.size().map_err(|e| storage_err("size", &self.name, e))?;
        if offset >= size {
            return Ok(());
        }
        self.inner
            .seek(offset)
            .map_err(|e| storage_err("seek", &self.name, e))?;
        let want = buf.len().min((size - offset) as usize);
        let mut done = 0;
        while done < want {
            let n = self
                .inner
                .read(&mut buf[done..want])
                .map_err(|e| storage_err("read", &self.name, e))?;
            if n == 0 {
                break; // remainder stays zero-filled
            }
            done += n;
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> DbResult<()> {
        // Backends reject seeks past EOF; extend first for sparse writes.
        let size = self.inner.size().map_err(|e| storage_err("size", &self.name, e))?;
        if offset > size {
            self.inner
                .set_size(offset)
                .map_err(|e| storage_err("extend", &self.name, e))?;
        }
        self.inner
            .seek(offset)
            .map_err(|e| storage_err("seek", &self.name, e))?;
        let mut done = 0;
        while done < data.len() {
            let n = self
                .inner
                .write(&data[done..])
                .map_err(|e| storage_err("write", &self.name, e))?;
            if n == 0 {
                return Err(DbError::Storage(format!("short write on {}", self.name)));
            }
            done += n;
        }
        Ok(())
    }

    fn truncate(&mut self, size: u64) -> DbResult<()> {
        self.inner
            .set_size(size)
            .map_err(|e| storage_err("truncate", &self.name, e))
    }

    fn sync(&mut self) -> DbResult<()> {
        self.inner
            .sync()
            .map_err(|e| storage_err("sync", &self.name, e))
    }

    fn size(&mut self) -> DbResult<u64> {
        self.inner
            .size()
            .map_err(|e| storage_err("size", &self.name, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Connection;
    use twine_wasi::ctx::MemBackend;

    fn mem_vfs() -> BackendVfs {
        BackendVfs::new(Box::new(MemBackend::default()))
    }

    #[test]
    fn database_over_backend_round_trips() {
        let vfs = mem_vfs();
        let shared = vfs.shared();
        {
            let mut db = Connection::open(Box::new(vfs), "/data/t.db").unwrap();
            db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
            db.execute("INSERT INTO t VALUES(1, 'one')").unwrap();
            db.execute("INSERT INTO t VALUES(2, 'two')").unwrap();
            db.close().unwrap();
        }
        // Reopen over the *same* backend: state must persist.
        let vfs2 = BackendVfs::from_shared(shared);
        let mut db = Connection::open(Box::new(vfs2), "/data/t.db").unwrap();
        let rows = db.query("SELECT b FROM t WHERE a = 2").unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn journal_lives_in_backend_too() {
        let vfs = mem_vfs();
        let shared = vfs.shared();
        let mut db = Connection::open(Box::new(vfs), "/data/j.db").unwrap();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES(1)").unwrap();
        // Mid-transaction the rollback journal exists in the backend.
        assert!(shared.lock().unwrap().exists("/data/j.db-journal"));
        db.execute("COMMIT").unwrap();
        assert!(!shared.lock().unwrap().exists("/data/j.db-journal"));
    }

    #[test]
    fn sparse_write_and_zero_fill() {
        let mut vfs = mem_vfs();
        let mut f = Vfs::open(&mut vfs, "/data/raw").unwrap();
        f.write_at(100, b"xyz").unwrap();
        assert_eq!(f.size().unwrap(), 103);
        let mut buf = [0xFFu8; 8];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        let mut buf = [0u8; 3];
        f.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"xyz");
        let mut buf = [0xAAu8; 4];
        f.read_at(200, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
    }
}
