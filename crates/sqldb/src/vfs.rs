//! The virtual file system seam (SQLite's VFS, §V-C).
//!
//! The engine performs *all* persistent I/O through [`VfsFile`], so the
//! benchmark harness can swap the storage stack per variant: plain host
//! memory (native), WASI-routed (Wasm variants), protected-FS-encrypted
//! (Twine), or a disk-image layer (SGX-LKL baseline).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::{DbError, DbResult};

/// An open random-access file.
///
/// `Send` so a [`crate::Connection`] (and thus a whole tenant database)
/// can live on a service worker thread and move back on close.
pub trait VfsFile: Send {
    /// Read exactly `buf.len()` bytes at `offset`; short reads are zero-
    /// filled (SQLite's convention for reads past EOF).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> DbResult<()>;
    /// Write all of `data` at `offset`, extending as needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> DbResult<()>;
    /// Truncate to `size` bytes.
    fn truncate(&mut self, size: u64) -> DbResult<()>;
    /// Durably persist.
    fn sync(&mut self) -> DbResult<()>;
    /// Current size.
    fn size(&mut self) -> DbResult<u64>;
}

/// A file-system namespace (`Send`, like [`VfsFile`]).
pub trait Vfs: Send {
    /// Open (creating if needed) a file.
    fn open(&mut self, name: &str) -> DbResult<Box<dyn VfsFile>>;
    /// Delete a file (journal removal at commit).
    fn delete(&mut self, name: &str) -> DbResult<()>;
    /// Does the file exist? (Hot-journal detection at open.)
    fn exists(&mut self, name: &str) -> bool;
}

/// Shared handle to one file's bytes (every open handle views the same buffer).
pub type FileBytes = Arc<Mutex<Vec<u8>>>;
/// The shared namespace: path → file bytes.
pub type FileMap = Arc<Mutex<HashMap<String, FileBytes>>>;

/// Plain in-memory VFS (the "native" storage of the benchmarks).
#[derive(Default, Clone)]
pub struct MemVfs {
    files: FileMap,
}

impl MemVfs {
    /// Fresh empty namespace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across files (footprint metric).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.files
            .lock()
            .unwrap()
            .values()
            .map(|f| f.lock().unwrap().len() as u64)
            .sum()
    }
}

struct MemVfsFile {
    data: FileBytes,
}

impl VfsFile for MemVfsFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> DbResult<()> {
        let data = self.data.lock().unwrap();
        let off = offset as usize;
        buf.fill(0);
        if off < data.len() {
            let n = buf.len().min(data.len() - off);
            buf[..n].copy_from_slice(&data[off..off + n]);
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, src: &[u8]) -> DbResult<()> {
        let mut data = self.data.lock().unwrap();
        let end = offset as usize + src.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(src);
        Ok(())
    }

    fn truncate(&mut self, size: u64) -> DbResult<()> {
        self.data.lock().unwrap().truncate(size as usize);
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        Ok(())
    }

    fn size(&mut self) -> DbResult<u64> {
        Ok(self.data.lock().unwrap().len() as u64)
    }
}

impl Vfs for MemVfs {
    fn open(&mut self, name: &str) -> DbResult<Box<dyn VfsFile>> {
        let data = self
            .files
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone();
        Ok(Box::new(MemVfsFile { data }))
    }

    fn delete(&mut self, name: &str) -> DbResult<()> {
        self.files
            .lock()
            .unwrap()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::Storage(format!("delete: no such file {name}")))
    }

    fn exists(&mut self, name: &str) -> bool {
        self.files.lock().unwrap().contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_past_eof_zero_fills() {
        let mut vfs = MemVfs::new();
        let mut f = vfs.open("x").unwrap();
        f.write_at(0, b"abc").unwrap();
        let mut buf = [0xFFu8; 6];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc\0\0\0");
        let mut buf = [0xFFu8; 4];
        f.read_at(100, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn sparse_write_extends() {
        let mut vfs = MemVfs::new();
        let mut f = vfs.open("x").unwrap();
        f.write_at(10, b"z").unwrap();
        assert_eq!(f.size().unwrap(), 11);
        let mut buf = [0xFFu8; 2];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0]);
    }

    #[test]
    fn delete_and_exists() {
        let mut vfs = MemVfs::new();
        assert!(!vfs.exists("j"));
        vfs.open("j").unwrap();
        assert!(vfs.exists("j"));
        vfs.delete("j").unwrap();
        assert!(!vfs.exists("j"));
        assert!(vfs.delete("j").is_err());
    }

    #[test]
    fn handles_share_contents() {
        let mut vfs = MemVfs::new();
        let mut a = vfs.open("x").unwrap();
        let mut b = vfs.open("x").unwrap();
        a.write_at(0, b"shared").unwrap();
        let mut buf = [0u8; 6];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
    }
}
