//! B+trees on pages: table trees (rowid → record) and index trees
//! (serialised key → implicit rowid), with overflow chains for payloads
//! that don't fit a page (the 1 KiB blobs of §V-D fit locally; larger
//! values spill).

use crate::pager::{PageId, Pager};
use crate::record::{read_varint, write_varint};
use crate::{DbError, DbResult, PAGE_SIZE};

const TABLE_LEAF: u8 = 0x0D;
const TABLE_INTERIOR: u8 = 0x05;
const INDEX_LEAF: u8 = 0x0A;
const INDEX_INTERIOR: u8 = 0x02;
const OVERFLOW: u8 = 0x0F;

/// Payload bytes kept in-page before spilling to an overflow chain.
pub const MAX_LOCAL: usize = 2000;
/// Usable bytes per overflow page.
const OVERFLOW_CAP: usize = PAGE_SIZE - 9;

/// A table-leaf cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TableCell {
    /// Row key.
    pub rowid: i64,
    /// Local prefix of the payload.
    pub local: Vec<u8>,
    /// Remaining payload length beyond `local`.
    pub overflow_len: u32,
    /// First overflow page, when `overflow_len > 0`.
    pub overflow: PageId,
}

/// Decoded node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Leaf of a table tree.
    TableLeaf {
        /// Cells sorted by rowid.
        cells: Vec<TableCell>,
    },
    /// Interior of a table tree: `children.len() == keys.len() + 1`;
    /// subtree `i` holds rowids ≤ `keys[i]` (last subtree unbounded).
    TableInterior {
        /// Child pages.
        children: Vec<PageId>,
        /// Separator keys.
        keys: Vec<i64>,
    },
    /// Leaf of an index tree: sorted, unique key blobs.
    IndexLeaf {
        /// Keys.
        keys: Vec<Vec<u8>>,
    },
    /// Interior of an index tree.
    IndexInterior {
        /// Child pages.
        children: Vec<PageId>,
        /// Separator keys (copies of the max key of each left subtree).
        keys: Vec<Vec<u8>>,
    },
}

impl Node {
    fn is_leaf(&self) -> bool {
        matches!(self, Node::TableLeaf { .. } | Node::IndexLeaf { .. })
    }

    /// Serialised size (must fit `PAGE_SIZE`).
    fn encoded_size(&self) -> usize {
        let mut n = 8;
        match self {
            Node::TableLeaf { cells } => {
                for c in cells {
                    n += 10 + 5 + 5 + c.local.len() + 4;
                }
            }
            Node::TableInterior { children, keys } => {
                n += children.len() * 4 + keys.len() * 10;
            }
            Node::IndexLeaf { keys } => {
                for k in keys {
                    n += 5 + k.len();
                }
            }
            Node::IndexInterior { children, keys } => {
                n += children.len() * 4;
                for k in keys {
                    n += 5 + k.len();
                }
            }
        }
        n
    }

    fn encode(&self, out: &mut [u8]) {
        out.fill(0);
        let mut w = Writer { out, pos: 0 };
        match self {
            Node::TableLeaf { cells } => {
                w.u8(TABLE_LEAF);
                w.u16(cells.len() as u16);
                for c in cells {
                    w.varint(c.rowid as u64);
                    w.varint(c.local.len() as u64);
                    w.varint(u64::from(c.overflow_len));
                    if c.overflow_len > 0 {
                        w.u32(c.overflow);
                    }
                    w.bytes(&c.local);
                }
            }
            Node::TableInterior { children, keys } => {
                w.u8(TABLE_INTERIOR);
                w.u16(keys.len() as u16);
                for (i, k) in keys.iter().enumerate() {
                    w.u32(children[i]);
                    w.varint(*k as u64);
                }
                w.u32(*children.last().expect("interior has children"));
            }
            Node::IndexLeaf { keys } => {
                w.u8(INDEX_LEAF);
                w.u16(keys.len() as u16);
                for k in keys {
                    w.varint(k.len() as u64);
                    w.bytes(k);
                }
            }
            Node::IndexInterior { children, keys } => {
                w.u8(INDEX_INTERIOR);
                w.u16(keys.len() as u16);
                for (i, k) in keys.iter().enumerate() {
                    w.u32(children[i]);
                    w.varint(k.len() as u64);
                    w.bytes(k);
                }
                w.u32(*children.last().expect("interior has children"));
            }
        }
    }

    fn decode(data: &[u8]) -> DbResult<Node> {
        let mut r = Reader { data, pos: 0 };
        let ty = r.u8()?;
        let n = r.u16()? as usize;
        Ok(match ty {
            TABLE_LEAF => {
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    let rowid = r.varint()? as i64;
                    let local_len = r.varint()? as usize;
                    let overflow_len = r.varint()? as u32;
                    let overflow = if overflow_len > 0 { r.u32()? } else { 0 };
                    let local = r.take(local_len)?.to_vec();
                    cells.push(TableCell {
                        rowid,
                        local,
                        overflow_len,
                        overflow,
                    });
                }
                Node::TableLeaf { cells }
            }
            TABLE_INTERIOR => {
                let mut children = Vec::with_capacity(n + 1);
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(r.u32()?);
                    keys.push(r.varint()? as i64);
                }
                children.push(r.u32()?);
                Node::TableInterior { children, keys }
            }
            INDEX_LEAF => {
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = r.varint()? as usize;
                    keys.push(r.take(len)?.to_vec());
                }
                Node::IndexLeaf { keys }
            }
            INDEX_INTERIOR => {
                let mut children = Vec::with_capacity(n + 1);
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(r.u32()?);
                    let len = r.varint()? as usize;
                    keys.push(r.take(len)?.to_vec());
                }
                children.push(r.u32()?);
                Node::IndexInterior { children, keys }
            }
            other => return Err(DbError::Storage(format!("bad page type 0x{other:02x}"))),
        })
    }
}

struct Writer<'a> {
    out: &'a mut [u8],
    pos: usize,
}

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.out[self.pos] = v;
        self.pos += 1;
    }
    fn u16(&mut self, v: u16) {
        self.out[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }
    fn u32(&mut self, v: u32) {
        self.out[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }
    fn varint(&mut self, v: u64) {
        let mut tmp = Vec::with_capacity(10);
        write_varint(&mut tmp, v);
        self.bytes(&tmp);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.out[self.pos..self.pos + b.len()].copy_from_slice(b);
        self.pos += b.len();
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> DbResult<u8> {
        let v = *self
            .data
            .get(self.pos)
            .ok_or_else(|| DbError::Storage("page truncated".into()))?;
        self.pos += 1;
        Ok(v)
    }
    fn u16(&mut self) -> DbResult<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes(s.try_into().expect("2")))
    }
    fn u32(&mut self) -> DbResult<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4")))
    }
    fn varint(&mut self) -> DbResult<u64> {
        let (v, n) = read_varint(&self.data[self.pos..])?;
        self.pos += n;
        Ok(v)
    }
    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(DbError::Storage("page truncated".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

fn load(pager: &mut Pager, id: PageId) -> DbResult<Node> {
    Node::decode(pager.get(id)?)
}

fn store(pager: &mut Pager, id: PageId, node: &Node) -> DbResult<()> {
    debug_assert!(node.encoded_size() <= PAGE_SIZE, "node overflows page");
    node.encode(pager.get_mut(id)?);
    Ok(())
}

/// Create an empty table tree; returns its root page.
pub fn create_table_tree(pager: &mut Pager) -> DbResult<PageId> {
    let id = pager.allocate()?;
    store(pager, id, &Node::TableLeaf { cells: Vec::new() })?;
    Ok(id)
}

/// Create an empty index tree; returns its root page.
pub fn create_index_tree(pager: &mut Pager) -> DbResult<PageId> {
    let id = pager.allocate()?;
    store(pager, id, &Node::IndexLeaf { keys: Vec::new() })?;
    Ok(id)
}

// ---------------------------------------------------------------------
// Overflow chains
// ---------------------------------------------------------------------

fn write_overflow(pager: &mut Pager, data: &[u8]) -> DbResult<PageId> {
    let mut chunks: Vec<&[u8]> = data.chunks(OVERFLOW_CAP).collect();
    let mut next: PageId = 0;
    while let Some(chunk) = chunks.pop() {
        let id = pager.allocate()?;
        let page = pager.get_mut(id)?;
        page.fill(0);
        page[0] = OVERFLOW;
        page[1..5].copy_from_slice(&next.to_le_bytes());
        page[5..9].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
        page[9..9 + chunk.len()].copy_from_slice(chunk);
        next = id;
    }
    Ok(next)
}

fn read_overflow(pager: &mut Pager, mut id: PageId, total: u32) -> DbResult<Vec<u8>> {
    let mut out = Vec::with_capacity(total as usize);
    while id != 0 {
        let page = pager.get(id)?;
        if page[0] != OVERFLOW {
            return Err(DbError::Storage("bad overflow page".into()));
        }
        let next = u32::from_le_bytes(page[1..5].try_into().expect("4"));
        let len = u32::from_le_bytes(page[5..9].try_into().expect("4")) as usize;
        out.extend_from_slice(&page[9..9 + len]);
        id = next;
    }
    if out.len() != total as usize {
        return Err(DbError::Storage("overflow chain length mismatch".into()));
    }
    Ok(out)
}

fn free_overflow(pager: &mut Pager, mut id: PageId) -> DbResult<()> {
    while id != 0 {
        let next = {
            let page = pager.get(id)?;
            u32::from_le_bytes(page[1..5].try_into().expect("4"))
        };
        pager.free_page(id)?;
        id = next;
    }
    Ok(())
}

fn make_cell(pager: &mut Pager, rowid: i64, payload: &[u8]) -> DbResult<TableCell> {
    if payload.len() <= MAX_LOCAL {
        Ok(TableCell {
            rowid,
            local: payload.to_vec(),
            overflow_len: 0,
            overflow: 0,
        })
    } else {
        let overflow = write_overflow(pager, &payload[MAX_LOCAL..])?;
        Ok(TableCell {
            rowid,
            local: payload[..MAX_LOCAL].to_vec(),
            overflow_len: (payload.len() - MAX_LOCAL) as u32,
            overflow,
        })
    }
}

/// Read the full payload of a cell.
pub fn cell_payload(pager: &mut Pager, cell: &TableCell) -> DbResult<Vec<u8>> {
    if cell.overflow_len == 0 {
        return Ok(cell.local.clone());
    }
    let mut out = cell.local.clone();
    out.extend(read_overflow(pager, cell.overflow, cell.overflow_len)?);
    Ok(out)
}

// ---------------------------------------------------------------------
// Insert (recursive, with splits)
// ---------------------------------------------------------------------

enum InsertKey {
    Rowid(i64, TableCell),
    Index(Vec<u8>),
}

enum Split {
    None,
    /// (separator, new right sibling) — for table trees the separator is
    /// the max rowid of the left node; for index trees the max key.
    TableAt(i64, PageId),
    IndexAt(Vec<u8>, PageId),
}

/// Insert (or replace) `rowid → payload` in a table tree.
pub fn table_insert(pager: &mut Pager, root: PageId, rowid: i64, payload: &[u8]) -> DbResult<()> {
    let cell = make_cell(pager, rowid, payload)?;
    match insert_rec(pager, root, InsertKey::Rowid(rowid, cell))? {
        Split::None => Ok(()),
        split => split_root(pager, root, split),
    }
}

/// Largest supported index key (a node must hold at least two keys).
pub const MAX_INDEX_KEY: usize = 1500;

/// Insert a key into an index tree. Returns false if the key was already
/// present (duplicate).
pub fn index_insert(pager: &mut Pager, root: PageId, key: Vec<u8>) -> DbResult<bool> {
    if key.len() > MAX_INDEX_KEY {
        return Err(DbError::Unsupported(format!(
            "index key of {} bytes exceeds the {MAX_INDEX_KEY}-byte limit",
            key.len()
        )));
    }
    // Duplicate check first (full key incl. rowid is unique by
    // construction; uniqueness constraints check the prefix upstream).
    match insert_rec(pager, root, InsertKey::Index(key))? {
        Split::None => Ok(true),
        split => {
            split_root(pager, root, split)?;
            Ok(true)
        }
    }
}

/// When the root splits, keep the root page id stable: move the old root's
/// content to a fresh page and make the root an interior node.
fn split_root(pager: &mut Pager, root: PageId, split: Split) -> DbResult<()> {
    let old = load(pager, root)?;
    let left = pager.allocate()?;
    store(pager, left, &old)?;
    let new_root = match split {
        Split::TableAt(sep, right) => Node::TableInterior {
            children: vec![left, right],
            keys: vec![sep],
        },
        Split::IndexAt(sep, right) => Node::IndexInterior {
            children: vec![left, right],
            keys: vec![sep],
        },
        Split::None => unreachable!(),
    };
    store(pager, root, &new_root)
}

#[allow(clippy::too_many_lines)]
fn insert_rec(pager: &mut Pager, page: PageId, key: InsertKey) -> DbResult<Split> {
    let mut node = load(pager, page)?;
    match (&mut node, key) {
        (Node::TableLeaf { cells }, InsertKey::Rowid(rowid, cell)) => {
            match cells.binary_search_by_key(&rowid, |c| c.rowid) {
                Ok(i) => {
                    // Replace: free the old overflow chain first.
                    if cells[i].overflow_len > 0 {
                        let of = cells[i].overflow;
                        free_overflow(pager, of)?;
                    }
                    cells[i] = cell;
                }
                Err(i) => cells.insert(i, cell),
            }
            finish_leaf(pager, page, node)
        }
        (Node::IndexLeaf { keys }, InsertKey::Index(key)) => {
            match keys.binary_search(&key) {
                Ok(_) => return Ok(Split::None), // exact duplicate: no-op
                Err(i) => keys.insert(i, key),
            }
            finish_leaf(pager, page, node)
        }
        (Node::TableInterior { children, keys }, InsertKey::Rowid(rowid, cell)) => {
            let idx = keys.partition_point(|k| *k < rowid);
            let child = children[idx];
            let split = insert_rec(pager, child, InsertKey::Rowid(rowid, cell))?;
            if let Split::TableAt(sep, right) = split {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                return finish_interior(pager, page, node);
            }
            // Maintain separator if we inserted past the subtree max.
            if idx < keys.len() && keys[idx] < rowid {
                keys[idx] = rowid;
                store(pager, page, &node)?;
            }
            Ok(Split::None)
        }
        (Node::IndexInterior { children, keys }, InsertKey::Index(key)) => {
            let idx = keys.partition_point(|k| k.as_slice() < key.as_slice());
            let child = children[idx];
            let need_sep_update = idx < keys.len() && keys[idx] < key;
            let key_clone = key.clone();
            let split = insert_rec(pager, child, InsertKey::Index(key))?;
            if let Split::IndexAt(sep, right) = split {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                return finish_interior(pager, page, node);
            }
            if need_sep_update {
                keys[idx] = key_clone;
                store(pager, page, &node)?;
            }
            Ok(Split::None)
        }
        _ => Err(DbError::Storage("tree type mismatch".into())),
    }
}

fn finish_leaf(pager: &mut Pager, page: PageId, mut node: Node) -> DbResult<Split> {
    if node.encoded_size() <= PAGE_SIZE {
        store(pager, page, &node)?;
        return Ok(Split::None);
    }
    // Split roughly in half by byte size.
    match &mut node {
        Node::TableLeaf { cells } => {
            let cut = split_point(cells.iter().map(|c| 24 + c.local.len()));
            let right_cells = cells.split_off(cut);
            let sep = cells.last().expect("non-empty left").rowid;
            let right = pager.allocate()?;
            store(pager, right, &Node::TableLeaf { cells: right_cells })?;
            store(pager, page, &node)?;
            Ok(Split::TableAt(sep, right))
        }
        Node::IndexLeaf { keys } => {
            let cut = split_point(keys.iter().map(|k| 5 + k.len()));
            let right_keys = keys.split_off(cut);
            let sep = keys.last().expect("non-empty left").clone();
            let right = pager.allocate()?;
            store(pager, right, &Node::IndexLeaf { keys: right_keys })?;
            store(pager, page, &node)?;
            Ok(Split::IndexAt(sep, right))
        }
        _ => unreachable!(),
    }
}

fn finish_interior(pager: &mut Pager, page: PageId, mut node: Node) -> DbResult<Split> {
    if node.encoded_size() <= PAGE_SIZE {
        store(pager, page, &node)?;
        return Ok(Split::None);
    }
    match &mut node {
        Node::TableInterior { children, keys } => {
            let mid = keys.len() / 2;
            let sep = keys[mid];
            let right_keys = keys.split_off(mid + 1);
            keys.pop(); // the separator moves up
            let right_children = children.split_off(mid + 1);
            let right = pager.allocate()?;
            store(
                pager,
                right,
                &Node::TableInterior {
                    children: right_children,
                    keys: right_keys,
                },
            )?;
            store(pager, page, &node)?;
            Ok(Split::TableAt(sep, right))
        }
        Node::IndexInterior { children, keys } => {
            let mid = keys.len() / 2;
            let sep = keys[mid].clone();
            let right_keys = keys.split_off(mid + 1);
            keys.pop();
            let right_children = children.split_off(mid + 1);
            let right = pager.allocate()?;
            store(
                pager,
                right,
                &Node::IndexInterior {
                    children: right_children,
                    keys: right_keys,
                },
            )?;
            store(pager, page, &node)?;
            Ok(Split::IndexAt(sep, right))
        }
        _ => unreachable!(),
    }
}

fn split_point(sizes: impl Iterator<Item = usize>) -> usize {
    let sizes: Vec<usize> = sizes.collect();
    let total: usize = sizes.iter().sum();
    let mut acc = 0;
    for (i, s) in sizes.iter().enumerate() {
        acc += s;
        if acc >= total / 2 {
            return (i + 1).min(sizes.len() - 1).max(1);
        }
    }
    sizes.len() / 2
}

// ---------------------------------------------------------------------
// Lookup / delete
// ---------------------------------------------------------------------

/// Fetch the record for `rowid`, if present.
pub fn table_get(pager: &mut Pager, root: PageId, rowid: i64) -> DbResult<Option<Vec<u8>>> {
    let mut page = root;
    loop {
        let node = load(pager, page)?;
        match node {
            Node::TableLeaf { cells } => {
                return match cells.binary_search_by_key(&rowid, |c| c.rowid) {
                    Ok(i) => Ok(Some(cell_payload(pager, &cells[i])?)),
                    Err(_) => Ok(None),
                };
            }
            Node::TableInterior { children, keys } => {
                let idx = keys.partition_point(|k| *k < rowid);
                page = children[idx];
            }
            _ => return Err(DbError::Storage("not a table tree".into())),
        }
    }
}

/// Delete `rowid`; returns whether it existed. Leaves may underflow (no
/// rebalancing — freed space is reused by later inserts).
pub fn table_delete(pager: &mut Pager, root: PageId, rowid: i64) -> DbResult<bool> {
    let mut page = root;
    loop {
        let mut node = load(pager, page)?;
        match &mut node {
            Node::TableLeaf { cells } => {
                return match cells.binary_search_by_key(&rowid, |c| c.rowid) {
                    Ok(i) => {
                        if cells[i].overflow_len > 0 {
                            let of = cells[i].overflow;
                            free_overflow(pager, of)?;
                        }
                        cells.remove(i);
                        store(pager, page, &node)?;
                        Ok(true)
                    }
                    Err(_) => Ok(false),
                };
            }
            Node::TableInterior { children, keys } => {
                let idx = keys.partition_point(|k| *k < rowid);
                page = children[idx];
            }
            _ => return Err(DbError::Storage("not a table tree".into())),
        }
    }
}

/// Delete an exact key from an index tree; returns whether it existed.
pub fn index_delete(pager: &mut Pager, root: PageId, key: &[u8]) -> DbResult<bool> {
    let mut page = root;
    loop {
        let mut node = load(pager, page)?;
        match &mut node {
            Node::IndexLeaf { keys } => {
                return match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        keys.remove(i);
                        store(pager, page, &node)?;
                        Ok(true)
                    }
                    Err(_) => Ok(false),
                };
            }
            Node::IndexInterior { children, keys } => {
                let idx = keys.partition_point(|k| k.as_slice() < key);
                page = children[idx];
            }
            _ => return Err(DbError::Storage("not an index tree".into())),
        }
    }
}

/// Largest rowid in the table (for auto-increment).
pub fn table_max_rowid(pager: &mut Pager, root: PageId) -> DbResult<Option<i64>> {
    let mut page = root;
    loop {
        let node = load(pager, page)?;
        match node {
            Node::TableLeaf { cells } => return Ok(cells.last().map(|c| c.rowid)),
            Node::TableInterior { children, .. } => {
                page = *children.last().expect("interior has children");
            }
            _ => return Err(DbError::Storage("not a table tree".into())),
        }
    }
}

/// Free every page of a tree (DROP TABLE / DROP INDEX).
pub fn free_tree(pager: &mut Pager, root: PageId) -> DbResult<()> {
    let node = load(pager, root)?;
    match node {
        Node::TableLeaf { cells } => {
            for c in cells {
                if c.overflow_len > 0 {
                    free_overflow(pager, c.overflow)?;
                }
            }
        }
        Node::TableInterior { children, .. } | Node::IndexInterior { children, .. } => {
            for child in children {
                free_tree(pager, child)?;
            }
        }
        Node::IndexLeaf { .. } => {}
    }
    pager.free_page(root)
}

// ---------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------

/// A forward cursor over a tree's leaves.
pub struct Cursor {
    /// Path of (page, child index) from the root (interior levels).
    stack: Vec<(PageId, usize)>,
    /// Current decoded leaf and position.
    leaf: Option<(PageId, Node, usize)>,
}

impl Cursor {
    /// Cursor positioned at the first entry.
    pub fn first(pager: &mut Pager, root: PageId) -> DbResult<Self> {
        let mut c = Self {
            stack: Vec::new(),
            leaf: None,
        };
        c.descend_leftmost(pager, root)?;
        Ok(c)
    }

    /// Cursor positioned at the first table entry with `rowid ≥ target`.
    pub fn seek_rowid(pager: &mut Pager, root: PageId, target: i64) -> DbResult<Self> {
        let mut c = Self {
            stack: Vec::new(),
            leaf: None,
        };
        let mut page = root;
        loop {
            let node = load(pager, page)?;
            match node {
                Node::TableInterior { ref children, ref keys } => {
                    let idx = keys.partition_point(|k| *k < target);
                    c.stack.push((page, idx));
                    page = children[idx];
                }
                Node::TableLeaf { ref cells } => {
                    let idx = cells.partition_point(|cell| cell.rowid < target);
                    let at_end = idx >= cells.len();
                    c.leaf = Some((page, node, idx));
                    if at_end {
                        c.advance_leaf(pager)?;
                    }
                    return Ok(c);
                }
                _ => return Err(DbError::Storage("not a table tree".into())),
            }
        }
    }

    /// Cursor positioned at the first index key ≥ `target`.
    pub fn seek_key(pager: &mut Pager, root: PageId, target: &[u8]) -> DbResult<Self> {
        let mut c = Self {
            stack: Vec::new(),
            leaf: None,
        };
        let mut page = root;
        loop {
            let node = load(pager, page)?;
            match node {
                Node::IndexInterior { ref children, ref keys } => {
                    let idx = keys.partition_point(|k| k.as_slice() < target);
                    c.stack.push((page, idx));
                    page = children[idx];
                }
                Node::IndexLeaf { ref keys } => {
                    let idx = keys.partition_point(|k| k.as_slice() < target);
                    let at_end = idx >= keys.len();
                    c.leaf = Some((page, node, idx));
                    if at_end {
                        c.advance_leaf(pager)?;
                    }
                    return Ok(c);
                }
                _ => return Err(DbError::Storage("not an index tree".into())),
            }
        }
    }

    fn descend_leftmost(&mut self, pager: &mut Pager, mut page: PageId) -> DbResult<()> {
        loop {
            let node = load(pager, page)?;
            if node.is_leaf() {
                self.leaf = Some((page, node, 0));
                // Skip empty leaves.
                if self.current_len() == 0 {
                    self.advance_leaf(pager)?;
                }
                return Ok(());
            }
            let child = match &node {
                Node::TableInterior { children, .. } | Node::IndexInterior { children, .. } => {
                    children[0]
                }
                _ => unreachable!(),
            };
            self.stack.push((page, 0));
            page = child;
        }
    }

    fn current_len(&self) -> usize {
        match &self.leaf {
            Some((_, Node::TableLeaf { cells }, _)) => cells.len(),
            Some((_, Node::IndexLeaf { keys }, _)) => keys.len(),
            _ => 0,
        }
    }

    /// Move to the first entry of the next non-empty leaf.
    fn advance_leaf(&mut self, pager: &mut Pager) -> DbResult<()> {
        self.leaf = None;
        while let Some((page, idx)) = self.stack.pop() {
            let node = load(pager, page)?;
            let children = match &node {
                Node::TableInterior { children, .. } | Node::IndexInterior { children, .. } => {
                    children.clone()
                }
                _ => return Err(DbError::Storage("corrupt cursor stack".into())),
            };
            if idx + 1 < children.len() {
                self.stack.push((page, idx + 1));
                let mut child = children[idx + 1];
                // Descend leftmost from this child.
                loop {
                    let node = load(pager, child)?;
                    if node.is_leaf() {
                        let len = match &node {
                            Node::TableLeaf { cells } => cells.len(),
                            Node::IndexLeaf { keys } => keys.len(),
                            _ => 0,
                        };
                        self.leaf = Some((child, node, 0));
                        if len == 0 {
                            break; // empty leaf: continue the outer search
                        }
                        return Ok(());
                    }
                    let first = match &node {
                        Node::TableInterior { children, .. }
                        | Node::IndexInterior { children, .. } => children[0],
                        _ => unreachable!(),
                    };
                    self.stack.push((child, 0));
                    child = first;
                }
                // Fell through on empty leaf: keep popping.
                self.leaf = None;
            }
        }
        Ok(())
    }

    /// Whether the cursor points at an entry.
    #[must_use]
    pub fn valid(&self) -> bool {
        match &self.leaf {
            Some((_, Node::TableLeaf { cells }, idx)) => *idx < cells.len(),
            Some((_, Node::IndexLeaf { keys }, idx)) => *idx < keys.len(),
            _ => false,
        }
    }

    /// Current table entry `(rowid, payload)`.
    pub fn table_entry(&self, pager: &mut Pager) -> DbResult<(i64, Vec<u8>)> {
        match &self.leaf {
            Some((_, Node::TableLeaf { cells }, idx)) if *idx < cells.len() => {
                let cell = &cells[*idx];
                Ok((cell.rowid, cell_payload(pager, cell)?))
            }
            _ => Err(DbError::Storage("cursor not on a table entry".into())),
        }
    }

    /// Current index key.
    pub fn index_entry(&self) -> DbResult<&[u8]> {
        match &self.leaf {
            Some((_, Node::IndexLeaf { keys }, idx)) if *idx < keys.len() => Ok(&keys[*idx]),
            _ => Err(DbError::Storage("cursor not on an index entry".into())),
        }
    }

    /// Advance; returns whether the cursor is still valid.
    pub fn next(&mut self, pager: &mut Pager) -> DbResult<bool> {
        if let Some((_, node, idx)) = &mut self.leaf {
            *idx += 1;
            let len = match node {
                Node::TableLeaf { cells } => cells.len(),
                Node::IndexLeaf { keys } => keys.len(),
                _ => 0,
            };
            if *idx < len {
                return Ok(true);
            }
            self.advance_leaf(pager)?;
            return Ok(self.valid());
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_pager() -> Pager {
        let mut p = Pager::open_memory();
        p.begin().unwrap();
        p
    }

    #[test]
    fn insert_get_small() {
        let mut p = mem_pager();
        let root = create_table_tree(&mut p).unwrap();
        for i in 0..100i64 {
            table_insert(&mut p, root, i, format!("row-{i}").as_bytes()).unwrap();
        }
        for i in 0..100i64 {
            let v = table_get(&mut p, root, i).unwrap().unwrap();
            assert_eq!(v, format!("row-{i}").as_bytes());
        }
        assert_eq!(table_get(&mut p, root, 100).unwrap(), None);
        assert_eq!(table_max_rowid(&mut p, root).unwrap(), Some(99));
    }

    #[test]
    fn insert_many_splits() {
        let mut p = mem_pager();
        let root = create_table_tree(&mut p).unwrap();
        let n = 5000i64;
        for i in 0..n {
            let payload = vec![(i % 251) as u8; 100];
            table_insert(&mut p, root, i, &payload).unwrap();
        }
        assert!(p.page_count() > 50, "tree must have split many times");
        for i in (0..n).step_by(37) {
            let v = table_get(&mut p, root, i).unwrap().unwrap();
            assert_eq!(v[0], (i % 251) as u8);
            assert_eq!(v.len(), 100);
        }
    }

    #[test]
    fn random_order_inserts() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut p = mem_pager();
        let root = create_table_tree(&mut p).unwrap();
        let mut ids: Vec<i64> = (0..3000).collect();
        ids.shuffle(&mut rng);
        for &i in &ids {
            table_insert(&mut p, root, i, &i.to_le_bytes()).unwrap();
        }
        // Scan must return them sorted.
        let mut c = Cursor::first(&mut p, root).unwrap();
        let mut prev = i64::MIN;
        let mut count = 0;
        while c.valid() {
            let (rowid, payload) = c.table_entry(&mut p).unwrap();
            assert!(rowid > prev);
            assert_eq!(payload, rowid.to_le_bytes());
            prev = rowid;
            count += 1;
            c.next(&mut p).unwrap();
        }
        assert_eq!(count, 3000);
    }

    #[test]
    fn replace_existing() {
        let mut p = mem_pager();
        let root = create_table_tree(&mut p).unwrap();
        table_insert(&mut p, root, 5, b"old").unwrap();
        table_insert(&mut p, root, 5, b"new").unwrap();
        assert_eq!(table_get(&mut p, root, 5).unwrap().unwrap(), b"new");
        let mut c = Cursor::first(&mut p, root).unwrap();
        let mut n = 0;
        while c.valid() {
            n += 1;
            c.next(&mut p).unwrap();
        }
        assert_eq!(n, 1);
    }

    #[test]
    fn delete_and_rescan() {
        let mut p = mem_pager();
        let root = create_table_tree(&mut p).unwrap();
        for i in 0..500i64 {
            table_insert(&mut p, root, i, b"x").unwrap();
        }
        for i in (0..500i64).step_by(2) {
            assert!(table_delete(&mut p, root, i).unwrap());
        }
        assert!(!table_delete(&mut p, root, 0).unwrap());
        let mut c = Cursor::first(&mut p, root).unwrap();
        let mut count = 0;
        while c.valid() {
            let (rowid, _) = c.table_entry(&mut p).unwrap();
            assert_eq!(rowid % 2, 1);
            count += 1;
            c.next(&mut p).unwrap();
        }
        assert_eq!(count, 250);
    }

    #[test]
    fn big_payload_overflow_chain() {
        let mut p = mem_pager();
        let root = create_table_tree(&mut p).unwrap();
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 253) as u8).collect();
        table_insert(&mut p, root, 1, &big).unwrap();
        table_insert(&mut p, root, 2, b"small").unwrap();
        assert_eq!(table_get(&mut p, root, 1).unwrap().unwrap(), big);
        assert_eq!(table_get(&mut p, root, 2).unwrap().unwrap(), b"small");
        // Delete frees the chain (pages go to the freelist for reuse).
        assert!(table_delete(&mut p, root, 1).unwrap());
        assert_eq!(table_get(&mut p, root, 1).unwrap(), None);
    }

    #[test]
    fn seek_rowid_ge() {
        let mut p = mem_pager();
        let root = create_table_tree(&mut p).unwrap();
        for i in (0..1000i64).step_by(10) {
            table_insert(&mut p, root, i, b"v").unwrap();
        }
        let c = Cursor::seek_rowid(&mut p, root, 55).unwrap();
        assert!(c.valid());
        assert_eq!(c.table_entry(&mut p).unwrap().0, 60);
        let c = Cursor::seek_rowid(&mut p, root, 990).unwrap();
        assert_eq!(c.table_entry(&mut p).unwrap().0, 990);
        let c = Cursor::seek_rowid(&mut p, root, 991).unwrap();
        assert!(!c.valid());
    }

    #[test]
    fn index_tree_basics() {
        let mut p = mem_pager();
        let root = create_index_tree(&mut p).unwrap();
        for i in 0..2000u32 {
            let key = format!("key-{i:05}").into_bytes();
            index_insert(&mut p, root, key).unwrap();
        }
        // Seek in sorted order.
        let c = Cursor::seek_key(&mut p, root, b"key-00100").unwrap();
        assert_eq!(c.index_entry().unwrap(), b"key-00100");
        let c = Cursor::seek_key(&mut p, root, b"key-001005").unwrap();
        assert_eq!(c.index_entry().unwrap(), b"key-00101");
        // Delete.
        assert!(index_delete(&mut p, root, b"key-00100").unwrap());
        assert!(!index_delete(&mut p, root, b"key-00100").unwrap());
        let c = Cursor::seek_key(&mut p, root, b"key-00100").unwrap();
        assert_eq!(c.index_entry().unwrap(), b"key-00101");
    }

    #[test]
    fn index_full_scan_sorted() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut p = mem_pager();
        let root = create_index_tree(&mut p).unwrap();
        let mut keys: Vec<Vec<u8>> = (0..1500u32)
            .map(|i| format!("{:06}", i * 7 % 9973).into_bytes())
            .collect();
        keys.shuffle(&mut rng);
        for k in &keys {
            index_insert(&mut p, root, k.clone()).unwrap();
        }
        let mut c = Cursor::first(&mut p, root).unwrap();
        let mut prev: Vec<u8> = Vec::new();
        let mut n = 0;
        while c.valid() {
            let k = c.index_entry().unwrap().to_vec();
            assert!(k > prev, "sorted order");
            prev = k;
            n += 1;
            c.next(&mut p).unwrap();
        }
        keys.sort();
        keys.dedup();
        assert_eq!(n, keys.len());
    }

    #[test]
    fn free_tree_returns_pages() {
        let mut p = mem_pager();
        let root = create_table_tree(&mut p).unwrap();
        for i in 0..2000i64 {
            table_insert(&mut p, root, i, &[0u8; 200]).unwrap();
        }
        let before = p.page_count();
        free_tree(&mut p, root).unwrap();
        // Allocation now reuses freed pages instead of growing the file.
        let again = create_table_tree(&mut p).unwrap();
        assert!(again <= before, "reused a freed page");
        assert_eq!(p.page_count(), before);
    }

    #[test]
    fn persistent_across_commit_and_reopen() {
        let vfs = crate::vfs::MemVfs::new();
        let root;
        {
            let mut p = Pager::open_file(Box::new(vfs.clone()), "t.db").unwrap();
            p.begin().unwrap();
            root = create_table_tree(&mut p).unwrap();
            for i in 0..1000i64 {
                table_insert(&mut p, root, i, format!("v{i}").as_bytes()).unwrap();
            }
            p.commit().unwrap();
        }
        let mut p = Pager::open_file(Box::new(vfs), "t.db").unwrap();
        for i in (0..1000i64).step_by(97) {
            assert_eq!(
                table_get(&mut p, root, i).unwrap().unwrap(),
                format!("v{i}").as_bytes()
            );
        }
    }
}
