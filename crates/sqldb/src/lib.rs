//! # twine-sqldb
//!
//! An embeddable SQL database engine — the reproduction's stand-in for
//! SQLite v3.32.3, which the paper compiles to Wasm and runs inside Twine as
//! its flagship workload (§V-C/D). Architecturally faithful where the
//! evaluation depends on it:
//!
//! * **VFS abstraction** ([`vfs`]) — exactly like SQLite's VFS, this is the
//!   seam the paper exploits (`test_demovfs` → WASI): the engine performs
//!   all file I/O through a small trait that `twine-baselines` implements
//!   over the protected file system, the host FS, or WASI.
//! * **Pager** ([`pager`]) — 4 KiB pages, a 2048-page LRU cache (8 MiB, the
//!   paper's configured SQLite cache), and a delete-mode rollback journal
//!   (the paper's default journal mode).
//! * **B+trees** ([`btree`]) — table trees keyed by rowid with overflow
//!   chains for large payloads (the 1 KiB blobs of §V-D), plus index trees.
//! * **Record format** ([`record`]) — SQLite-style serial-type encoding.
//! * **SQL front-end** ([`sql`], [`expr`], [`exec`]) — tokenizer, parser,
//!   planner (index selection) and executor covering the statement shapes
//!   of the Speedtest1 suite: CREATE TABLE/INDEX, INSERT, SELECT with
//!   WHERE/JOIN/GROUP BY/ORDER BY/DISTINCT/LIMIT, UPDATE, DELETE,
//!   transactions, and ANALYZE (test 990).
//! * **Speedtest1 clone** ([`speedtest`]) — the workload generator used by
//!   the Figure 4/5 harnesses.
//!
//! ```
//! use twine_sqldb::{Connection, SqlValue};
//!
//! let mut db = Connection::open_memory();
//! db.execute("CREATE TABLE kv(k INTEGER PRIMARY KEY, v TEXT)").unwrap();
//! db.execute("INSERT INTO kv VALUES (1,'hello'), (2,'world')").unwrap();
//! let rows = db.query("SELECT v FROM kv WHERE k = 2").unwrap();
//! assert_eq!(rows[0][0], SqlValue::Text("world".into()));
//! ```
//!
//! **Dependency graph**: depends only on `twine-wasi` (for the
//! [`backend_vfs`] adapter that lets a database live inside a session's
//! file-system backend) and `rand`. Consumed by `twine-core`,
//! `twine-baselines` and `twine-bench`. Paper anchor: §V-C/D.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend_vfs;
pub mod btree;
pub mod db;
pub mod exec;
pub mod expr;
pub mod pager;
pub mod record;
pub mod schema;
pub mod speedtest;
pub mod sql;
pub mod value;
pub mod vfs;

pub use backend_vfs::{BackendVfs, SharedBackend};
pub use db::{Connection, StmtCacheStats};
pub use speedtest::SqlExecutor;
pub use value::SqlValue;
pub use vfs::{MemVfs, Vfs, VfsFile};

/// Database errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL syntax error.
    Parse(String),
    /// Schema violation (unknown table/column, duplicate, type misuse).
    Schema(String),
    /// Constraint violation (unique, primary key).
    Constraint(String),
    /// Storage-level failure (I/O, corruption).
    Storage(String),
    /// Unsupported SQL feature.
    Unsupported(String),
}

impl core::fmt::Display for DbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Shorthand result.
pub type DbResult<T> = Result<T, DbError>;

/// Database page size — 4 KiB, matching both SQLite's default and the SGX
/// EPC page granularity (which is what makes Figure 5's interactions
/// interesting).
pub const PAGE_SIZE: usize = 4096;
