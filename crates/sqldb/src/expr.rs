//! Expression evaluation with SQL semantics (NULL propagation, numeric
//! affinity, LIKE patterns, scalar functions).

use rand::Rng;

use crate::sql::{BinaryOp, Expr};
use crate::value::SqlValue;
use crate::{DbError, DbResult};

/// Resolves column references during evaluation.
pub trait ColumnResolver {
    /// Value of a (possibly qualified) column in the current row.
    fn column(&self, table: Option<&str>, name: &str) -> DbResult<SqlValue>;
}

/// A resolver for contexts without rows (INSERT values, LIMIT).
pub struct NoRows;

impl ColumnResolver for NoRows {
    fn column(&self, _table: Option<&str>, name: &str) -> DbResult<SqlValue> {
        Err(DbError::Schema(format!(
            "column {name:?} not allowed in this context"
        )))
    }
}

/// Evaluate an expression. Aggregate functions must have been rewritten
/// away by the executor before this runs.
pub fn eval(expr: &Expr, row: &dyn ColumnResolver) -> DbResult<SqlValue> {
    Ok(match expr {
        Expr::Lit(v) => v.clone(),
        Expr::Column { table, name } => row.column(table.as_deref(), name)?,
        Expr::Neg(e) => match eval(e, row)? {
            SqlValue::Null => SqlValue::Null,
            SqlValue::Int(v) => SqlValue::Int(v.wrapping_neg()),
            SqlValue::Real(v) => SqlValue::Real(-v),
            other => SqlValue::Int(-other.as_i64().unwrap_or(0)),
        },
        Expr::Not(e) => match eval(e, row)? {
            SqlValue::Null => SqlValue::Null,
            v => SqlValue::Int(i64::from(!v.is_truthy())),
        },
        Expr::Binary(op, a, b) => eval_binary(*op, a, b, row)?,
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row)?;
            let p = eval(pattern, row)?;
            match (&v, &p) {
                (SqlValue::Null, _) | (_, SqlValue::Null) => SqlValue::Null,
                _ => {
                    let matched = like_match(&p.to_display(), &v.to_display());
                    SqlValue::Int(i64::from(matched != *negated))
                }
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, row)?;
            let lo = eval(lo, row)?;
            let hi = eval(hi, row)?;
            if matches!(v, SqlValue::Null)
                || matches!(lo, SqlValue::Null)
                || matches!(hi, SqlValue::Null)
            {
                SqlValue::Null
            } else {
                let inside = v.total_cmp(&lo) != std::cmp::Ordering::Less
                    && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
                SqlValue::Int(i64::from(inside != *negated))
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row)?;
            if matches!(v, SqlValue::Null) {
                return Ok(SqlValue::Null);
            }
            let mut found = false;
            for item in list {
                let item_v = eval(item, row)?;
                if v.sql_eq(&item_v) {
                    found = true;
                    break;
                }
            }
            SqlValue::Int(i64::from(found != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row)?;
            let is_null = matches!(v, SqlValue::Null);
            SqlValue::Int(i64::from(is_null != *negated))
        }
        Expr::Func { name, args, star } => eval_scalar_fn(name, args, *star, row)?,
        Expr::Case { arms, otherwise } => {
            for (cond, val) in arms {
                if eval(cond, row)?.is_truthy() {
                    return eval(val, row);
                }
            }
            match otherwise {
                Some(e) => eval(e, row)?,
                None => SqlValue::Null,
            }
        }
    })
}

fn eval_binary(op: BinaryOp, a: &Expr, b: &Expr, row: &dyn ColumnResolver) -> DbResult<SqlValue> {
    use BinaryOp::*;
    // Short-circuit three-valued AND/OR.
    if op == And {
        let l = eval(a, row)?;
        if !matches!(l, SqlValue::Null) && !l.is_truthy() {
            return Ok(SqlValue::Int(0));
        }
        let r = eval(b, row)?;
        return Ok(match (matches!(l, SqlValue::Null), r) {
            (_, SqlValue::Null) => SqlValue::Null,
            (true, rv) => {
                if rv.is_truthy() {
                    SqlValue::Null
                } else {
                    SqlValue::Int(0)
                }
            }
            (false, rv) => SqlValue::Int(i64::from(rv.is_truthy())),
        });
    }
    if op == Or {
        let l = eval(a, row)?;
        if !matches!(l, SqlValue::Null) && l.is_truthy() {
            return Ok(SqlValue::Int(1));
        }
        let r = eval(b, row)?;
        return Ok(match (matches!(l, SqlValue::Null), r) {
            (_, SqlValue::Null) => SqlValue::Null,
            (true, rv) => {
                if rv.is_truthy() {
                    SqlValue::Int(1)
                } else {
                    SqlValue::Null
                }
            }
            (false, rv) => SqlValue::Int(i64::from(rv.is_truthy())),
        });
    }

    let l = eval(a, row)?;
    let r = eval(b, row)?;
    if matches!(l, SqlValue::Null) || matches!(r, SqlValue::Null) {
        return Ok(SqlValue::Null);
    }
    Ok(match op {
        Add | Sub | Mul | Div | Rem => arith(op, &l, &r)?,
        Concat => SqlValue::Text(format!("{}{}", l.to_display(), r.to_display())),
        Eq => SqlValue::Int(i64::from(l.sql_eq(&r))),
        Ne => SqlValue::Int(i64::from(!l.sql_eq(&r))),
        Lt => SqlValue::Int(i64::from(l.total_cmp(&r) == std::cmp::Ordering::Less)),
        Le => SqlValue::Int(i64::from(l.total_cmp(&r) != std::cmp::Ordering::Greater)),
        Gt => SqlValue::Int(i64::from(l.total_cmp(&r) == std::cmp::Ordering::Greater)),
        Ge => SqlValue::Int(i64::from(l.total_cmp(&r) != std::cmp::Ordering::Less)),
        And | Or => unreachable!("handled above"),
    })
}

fn arith(op: BinaryOp, l: &SqlValue, r: &SqlValue) -> DbResult<SqlValue> {
    use BinaryOp::*;
    // Integer arithmetic stays integral (like SQLite).
    if let (SqlValue::Int(a), SqlValue::Int(b)) = (l, r) {
        return Ok(match op {
            Add => SqlValue::Int(a.wrapping_add(*b)),
            Sub => SqlValue::Int(a.wrapping_sub(*b)),
            Mul => SqlValue::Int(a.wrapping_mul(*b)),
            Div => {
                if *b == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Int(a.wrapping_div(*b))
                }
            }
            Rem => {
                if *b == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Int(a.wrapping_rem(*b))
                }
            }
            _ => unreachable!(),
        });
    }
    let (af, bf) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(SqlValue::Null),
    };
    Ok(match op {
        Add => SqlValue::Real(af + bf),
        Sub => SqlValue::Real(af - bf),
        Mul => SqlValue::Real(af * bf),
        Div => {
            if bf == 0.0 {
                SqlValue::Null
            } else {
                SqlValue::Real(af / bf)
            }
        }
        Rem => {
            if bf == 0.0 {
                SqlValue::Null
            } else {
                SqlValue::Real(af % bf)
            }
        }
        _ => unreachable!(),
    })
}

/// SQL LIKE with `%` and `_` (case-insensitive for ASCII, like SQLite).
#[must_use]
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            b'%' => {
                // Try all suffixes.
                for skip in 0..=t.len() {
                    if inner(&p[1..], &t[skip..]) {
                        return true;
                    }
                }
                false
            }
            b'_' => !t.is_empty() && inner(&p[1..], &t[1..]),
            c => {
                !t.is_empty()
                    && t[0].eq_ignore_ascii_case(&c)
                    && inner(&p[1..], &t[1..])
            }
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

/// Names treated as aggregates by the executor.
#[must_use]
pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max" | "total")
}

fn eval_scalar_fn(
    name: &str,
    args: &[Expr],
    star: bool,
    row: &dyn ColumnResolver,
) -> DbResult<SqlValue> {
    if is_aggregate(name) && (star || args.len() <= 1) {
        // min/max with ≥2 args is the scalar form; otherwise aggregates
        // must be handled by the executor.
        if !(matches!(name, "min" | "max") && args.len() >= 2) {
            return Err(DbError::Schema(format!(
                "aggregate {name}() used outside aggregation"
            )));
        }
    }
    let vals: Vec<SqlValue> = args
        .iter()
        .map(|a| eval(a, row))
        .collect::<DbResult<Vec<_>>>()?;
    Ok(match (name, vals.as_slice()) {
        ("length", [SqlValue::Null]) => SqlValue::Null,
        ("length", [SqlValue::Text(t)]) => SqlValue::Int(t.chars().count() as i64),
        ("length", [SqlValue::Blob(b)]) => SqlValue::Int(b.len() as i64),
        ("length", [v]) => SqlValue::Int(v.to_display().len() as i64),
        ("abs", [SqlValue::Null]) => SqlValue::Null,
        ("abs", [SqlValue::Int(v)]) => SqlValue::Int(v.wrapping_abs()),
        ("abs", [v]) => SqlValue::Real(v.as_f64().unwrap_or(0.0).abs()),
        ("upper", [v]) => SqlValue::Text(v.to_display().to_uppercase()),
        ("lower", [v]) => SqlValue::Text(v.to_display().to_lowercase()),
        ("typeof", [v]) => SqlValue::Text(
            match v {
                SqlValue::Null => "null",
                SqlValue::Int(_) => "integer",
                SqlValue::Real(_) => "real",
                SqlValue::Text(_) => "text",
                SqlValue::Blob(_) => "blob",
            }
            .into(),
        ),
        ("coalesce", vs) => vs
            .iter()
            .find(|v| !matches!(v, SqlValue::Null))
            .cloned()
            .unwrap_or(SqlValue::Null),
        ("min", vs) if vs.len() >= 2 => vs
            .iter()
            .filter(|v| !matches!(v, SqlValue::Null))
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(SqlValue::Null),
        ("max", vs) if vs.len() >= 2 => vs
            .iter()
            .filter(|v| !matches!(v, SqlValue::Null))
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(SqlValue::Null),
        ("substr", [v, start]) => {
            let s = v.to_display();
            let st = (start.as_i64().unwrap_or(1).max(1) - 1) as usize;
            SqlValue::Text(s.chars().skip(st).collect())
        }
        ("substr", [v, start, len]) => {
            let s = v.to_display();
            let st = (start.as_i64().unwrap_or(1).max(1) - 1) as usize;
            let n = len.as_i64().unwrap_or(0).max(0) as usize;
            SqlValue::Text(s.chars().skip(st).take(n).collect())
        }
        ("random", []) => SqlValue::Int(rand::thread_rng().gen()),
        ("randomblob", [n]) => {
            let len = n.as_i64().unwrap_or(0).max(0) as usize;
            let mut b = vec![0u8; len];
            rand::thread_rng().fill(&mut b[..]);
            SqlValue::Blob(b)
        }
        ("zeroblob", [n]) => SqlValue::Blob(vec![0u8; n.as_i64().unwrap_or(0).max(0) as usize]),
        ("hex", [SqlValue::Blob(b)]) => {
            SqlValue::Text(b.iter().map(|x| format!("{x:02X}")).collect())
        }
        ("round", [v]) => SqlValue::Real(v.as_f64().unwrap_or(0.0).round()),
        ("round", [v, d]) => {
            let p = 10f64.powi(d.as_i64().unwrap_or(0) as i32);
            SqlValue::Real((v.as_f64().unwrap_or(0.0) * p).round() / p)
        }
        _ => {
            return Err(DbError::Schema(format!(
                "no such function: {name}/{}",
                vals.len()
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use crate::sql::Stmt;

    fn eval_const(sql_expr: &str) -> SqlValue {
        let stmt = parse(&format!("SELECT {sql_expr}")).unwrap();
        match stmt {
            Stmt::Select(sel) => match &sel.columns[0] {
                crate::sql::SelectCol::Expr(e, _) => eval(e, &NoRows).unwrap(),
                crate::sql::SelectCol::Star => panic!("star"),
            },
            _ => panic!("not select"),
        }
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_const("1 + 2 * 3"), SqlValue::Int(7));
        assert_eq!(eval_const("7 / 2"), SqlValue::Int(3));
        assert_eq!(eval_const("7.0 / 2"), SqlValue::Real(3.5));
        assert_eq!(eval_const("7 % 3"), SqlValue::Int(1));
        assert_eq!(eval_const("1 / 0"), SqlValue::Null);
        assert_eq!(eval_const("-(5)"), SqlValue::Int(-5));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval_const("NULL + 1"), SqlValue::Null);
        assert_eq!(eval_const("NULL = NULL"), SqlValue::Null);
        assert_eq!(eval_const("NULL AND 1"), SqlValue::Null);
        assert_eq!(eval_const("NULL AND 0"), SqlValue::Int(0));
        assert_eq!(eval_const("NULL OR 1"), SqlValue::Int(1));
        assert_eq!(eval_const("NULL OR 0"), SqlValue::Null);
        assert_eq!(eval_const("NOT NULL"), SqlValue::Null);
        assert_eq!(eval_const("NULL IS NULL"), SqlValue::Int(1));
        assert_eq!(eval_const("1 IS NOT NULL"), SqlValue::Int(1));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_const("1 < 2"), SqlValue::Int(1));
        assert_eq!(eval_const("2 <= 2"), SqlValue::Int(1));
        assert_eq!(eval_const("'abc' = 'abc'"), SqlValue::Int(1));
        assert_eq!(eval_const("'abc' < 'abd'"), SqlValue::Int(1));
        assert_eq!(eval_const("1 = 1.0"), SqlValue::Int(1));
        assert_eq!(eval_const("3 BETWEEN 1 AND 5"), SqlValue::Int(1));
        assert_eq!(eval_const("3 NOT BETWEEN 1 AND 5"), SqlValue::Int(0));
        assert_eq!(eval_const("2 IN (1,2,3)"), SqlValue::Int(1));
        assert_eq!(eval_const("9 NOT IN (1,2,3)"), SqlValue::Int(1));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("%", ""));
        assert!(like_match("abc", "ABC"));
        assert!(like_match("a%c", "abbbc"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%middle%", "in the MIDDLE of it"));
        assert!(!like_match("nope%", "yes"));
        assert_eq!(eval_const("'hello' LIKE 'h%o'"), SqlValue::Int(1));
        assert_eq!(eval_const("'hello' NOT LIKE '%z%'"), SqlValue::Int(1));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_const("length('abcd')"), SqlValue::Int(4));
        assert_eq!(eval_const("abs(-5)"), SqlValue::Int(5));
        assert_eq!(eval_const("upper('ab')"), SqlValue::Text("AB".into()));
        assert_eq!(eval_const("coalesce(NULL, NULL, 3)"), SqlValue::Int(3));
        assert_eq!(eval_const("min(3, 1, 2)"), SqlValue::Int(1));
        assert_eq!(eval_const("max(3, 1, 2)"), SqlValue::Int(3));
        assert_eq!(eval_const("substr('hello', 2, 3)"), SqlValue::Text("ell".into()));
        assert_eq!(eval_const("typeof(1.5)"), SqlValue::Text("real".into()));
        assert_eq!(eval_const("length(zeroblob(10))"), SqlValue::Int(10));
        assert_eq!(eval_const("round(2.567, 2)"), SqlValue::Real(2.57));
        assert_eq!(eval_const("'a' || 'b' || 'c'"), SqlValue::Text("abc".into()));
    }

    #[test]
    fn case_expression() {
        assert_eq!(
            eval_const("CASE WHEN 1 THEN 'a' ELSE 'b' END"),
            SqlValue::Text("a".into())
        );
        assert_eq!(
            eval_const("CASE WHEN 0 THEN 'a' WHEN 1 THEN 'b' END"),
            SqlValue::Text("b".into())
        );
        assert_eq!(eval_const("CASE WHEN 0 THEN 'a' END"), SqlValue::Null);
    }

    #[test]
    fn aggregates_rejected_without_group() {
        let stmt = parse("SELECT count(*)").unwrap();
        if let Stmt::Select(sel) = stmt {
            if let crate::sql::SelectCol::Expr(e, _) = &sel.columns[0] {
                assert!(eval(e, &NoRows).is_err());
            }
        }
    }

    #[test]
    fn randomness() {
        let a = eval_const("random()");
        let b = eval_const("random()");
        assert_ne!(a, b, "overwhelmingly likely distinct");
        match eval_const("randomblob(16)") {
            SqlValue::Blob(b) => assert_eq!(b.len(), 16),
            other => panic!("{other:?}"),
        }
    }
}
