//! The connection: statement dispatch, autocommit, plan caching, and
//! configuration.

use std::collections::HashMap;
use std::sync::Arc;

use crate::exec::{execute, ExecResult};
use crate::pager::{PageHook, Pager, PagerStats};
use crate::schema::{self, Schema};
use crate::sql::{parse, Stmt};
use crate::value::Row;
use crate::vfs::Vfs;
use crate::{DbError, DbResult};

/// Default bound on cached prepared statements per connection.
pub const DEFAULT_PLAN_CACHE: usize = 64;

/// Plan-cache counters (the warm-path replanning gauge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmtCacheStats {
    /// Executions served from the plan cache (no parser work).
    pub hits: u64,
    /// Executions whose SQL text was not cached.
    pub misses: u64,
    /// Actual parser invocations — tests pin "zero parser work on warm
    /// statements" on this counter.
    pub parses: u64,
    /// Cached plans dropped by the capacity bound.
    pub evictions: u64,
}

/// A database connection (single-threaded, like an SQLite handle).
pub struct Connection {
    pager: Pager,
    schema: Schema,
    explicit_txn: bool,
    /// Prepared-statement cache: SQL text → (plan, last-use tick). Plans
    /// are schema-independent ASTs (name binding happens at execution),
    /// so no invalidation is needed on DDL.
    plans: HashMap<String, (Arc<Stmt>, u64)>,
    plan_tick: u64,
    plan_cache_cap: usize,
    stmt_stats: StmtCacheStats,
}

impl Connection {
    /// Open an in-memory database.
    #[must_use]
    pub fn open_memory() -> Self {
        let mut pager = Pager::open_memory();
        pager.begin().expect("fresh txn");
        schema::init_catalog(&mut pager).expect("catalog init");
        pager.commit().expect("catalog commit");
        Self {
            pager,
            schema: Schema::default(),
            explicit_txn: false,
            plans: HashMap::new(),
            plan_tick: 0,
            plan_cache_cap: DEFAULT_PLAN_CACHE,
            stmt_stats: StmtCacheStats::default(),
        }
    }

    /// Open (or create) a file-backed database through a VFS.
    pub fn open(vfs: Box<dyn Vfs>, name: &str) -> DbResult<Self> {
        let mut pager = Pager::open_file(vfs, name)?;
        if pager.page_count() < 2 {
            pager.begin()?;
            schema::init_catalog(&mut pager)?;
            pager.commit()?;
        }
        let schema = schema::load_schema(&mut pager)?;
        Ok(Self {
            pager,
            schema,
            explicit_txn: false,
            plans: HashMap::new(),
            plan_tick: 0,
            plan_cache_cap: DEFAULT_PLAN_CACHE,
            stmt_stats: StmtCacheStats::default(),
        })
    }

    /// Configure the page-cache size in pages (PRAGMA cache_size analogue).
    pub fn set_cache_pages(&mut self, pages: usize) {
        self.pager.set_cache_pages(pages);
    }

    /// Install a page-access hook (EPC modelling / I/O tracing).
    pub fn set_page_hook(&mut self, hook: Option<PageHook>) {
        self.pager.set_hook(hook);
    }

    /// Pager I/O statistics.
    #[must_use]
    pub fn stats(&self) -> PagerStats {
        self.pager.stats
    }

    /// Total pages in the database file.
    #[must_use]
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// The current schema (read-only view).
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Plan-cache counters.
    #[must_use]
    pub fn stmt_cache_stats(&self) -> StmtCacheStats {
        self.stmt_stats
    }

    /// Number of plans currently cached.
    #[must_use]
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Bound the plan cache (0 disables caching entirely).
    pub fn set_plan_cache_capacity(&mut self, cap: usize) {
        self.plan_cache_cap = cap;
        while self.plans.len() > cap {
            if let Some(victim) = self
                .plans
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
            {
                self.plans.remove(&victim);
                self.stmt_stats.evictions += 1;
            }
        }
    }

    /// Prepare one statement, fetching from the plan cache when the SQL
    /// text was seen before — warm executions skip the lexer and parser
    /// entirely.
    pub fn prepare(&mut self, sql: &str) -> DbResult<Arc<Stmt>> {
        self.plan_tick += 1;
        let tick = self.plan_tick;
        if let Some((stmt, last)) = self.plans.get_mut(sql) {
            *last = tick;
            self.stmt_stats.hits += 1;
            return Ok(stmt.clone());
        }
        self.stmt_stats.misses += 1;
        self.stmt_stats.parses += 1;
        let stmt = Arc::new(parse(sql)?);
        if self.plan_cache_cap > 0 {
            if self.plans.len() >= self.plan_cache_cap {
                if let Some(victim) = self
                    .plans
                    .iter()
                    .min_by_key(|(_, (_, t))| *t)
                    .map(|(k, _)| k.clone())
                {
                    self.plans.remove(&victim);
                    self.stmt_stats.evictions += 1;
                }
            }
            self.plans.insert(sql.to_string(), (stmt.clone(), tick));
        }
        Ok(stmt)
    }

    /// Execute one statement, returning the full result.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecResult> {
        let stmt = self.prepare(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Execute a prepared statement (see [`Connection::prepare`]).
    pub fn execute_stmt(&mut self, stmt: &Stmt) -> DbResult<ExecResult> {
        match stmt {
            Stmt::Begin => {
                if self.explicit_txn {
                    return Err(DbError::Unsupported("nested BEGIN".into()));
                }
                self.pager.begin()?;
                self.explicit_txn = true;
                Ok(ExecResult::default())
            }
            Stmt::Commit => {
                if !self.explicit_txn {
                    return Err(DbError::Unsupported("COMMIT outside transaction".into()));
                }
                self.pager.commit()?;
                self.explicit_txn = false;
                Ok(ExecResult::default())
            }
            Stmt::Rollback => {
                if !self.explicit_txn {
                    return Err(DbError::Unsupported("ROLLBACK outside transaction".into()));
                }
                self.pager.rollback()?;
                self.explicit_txn = false;
                // The rolled-back transaction may have changed the schema.
                self.schema = schema::load_schema(&mut self.pager)?;
                Ok(ExecResult::default())
            }
            Stmt::Pragma { name, value } => {
                if name.eq_ignore_ascii_case("cache_size") {
                    if let Some(v) = value.as_ref().and_then(|v| v.parse::<i64>().ok()) {
                        self.set_cache_pages(v.unsigned_abs() as usize);
                    }
                } else if name.eq_ignore_ascii_case("plan_cache_size") {
                    if let Some(v) = value.as_ref().and_then(|v| v.parse::<i64>().ok()) {
                        self.set_plan_cache_capacity(v.unsigned_abs() as usize);
                    }
                }
                Ok(ExecResult::default())
            }
            other => self.run_dml(other),
        }
    }

    fn run_dml(&mut self, stmt: &Stmt) -> DbResult<ExecResult> {
        if self.explicit_txn {
            return execute(&mut self.pager, &mut self.schema, stmt);
        }
        // Autocommit: wrap the statement in its own transaction.
        self.pager.begin()?;
        match execute(&mut self.pager, &mut self.schema, stmt) {
            Ok(r) => {
                self.pager.commit()?;
                Ok(r)
            }
            Err(e) => {
                self.pager.rollback()?;
                // Roll back any in-memory schema changes too.
                self.schema = schema::load_schema(&mut self.pager)?;
                Err(e)
            }
        }
    }

    /// Execute and return just the rows.
    pub fn query(&mut self, sql: &str) -> DbResult<Vec<Row>> {
        Ok(self.execute(sql)?.rows)
    }

    /// Execute and return the single scalar result.
    pub fn query_scalar(&mut self, sql: &str) -> DbResult<crate::value::SqlValue> {
        let rows = self.query(sql)?;
        rows.first()
            .and_then(|r| r.first())
            .cloned()
            .ok_or_else(|| DbError::Schema("query returned no rows".into()))
    }

    /// Flush everything to storage (close).
    pub fn close(mut self) -> DbResult<()> {
        if self.explicit_txn {
            self.pager.commit()?;
        }
        self.pager.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SqlValue;

    #[test]
    fn warm_execution_skips_parser() {
        let mut db = Connection::open_memory();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        let before = db.stmt_cache_stats().parses;
        db.execute("INSERT INTO t VALUES(1)").unwrap();
        assert_eq!(db.stmt_cache_stats().parses, before + 1);
        db.execute("INSERT INTO t VALUES(1)").unwrap();
        assert_eq!(
            db.stmt_cache_stats().parses,
            before + 1,
            "second execution of identical SQL must do zero parser work"
        );
        assert!(db.stmt_cache_stats().hits >= 1);
    }

    #[test]
    fn plan_cache_is_bounded() {
        let mut db = Connection::open_memory();
        db.set_plan_cache_capacity(4);
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..40 {
            db.execute(&format!("INSERT INTO t VALUES({i})")).unwrap();
        }
        assert!(db.cached_plans() <= 4);
        assert!(db.stmt_cache_stats().evictions > 0);
    }

    #[test]
    fn prepared_statement_reuse() {
        let mut db = Connection::open_memory();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        let ins = db.prepare("INSERT INTO t VALUES(7)").unwrap();
        for _ in 0..3 {
            db.execute_stmt(&ins).unwrap();
        }
        assert_eq!(
            db.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
            SqlValue::Int(3)
        );
    }
}
