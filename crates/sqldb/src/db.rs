//! The connection: statement dispatch, autocommit, and configuration.

use crate::exec::{execute, ExecResult};
use crate::pager::{PageHook, Pager, PagerStats};
use crate::schema::{self, Schema};
use crate::sql::{parse, Stmt};
use crate::value::Row;
use crate::vfs::Vfs;
use crate::{DbError, DbResult};

/// A database connection (single-threaded, like an SQLite handle).
pub struct Connection {
    pager: Pager,
    schema: Schema,
    explicit_txn: bool,
}

impl Connection {
    /// Open an in-memory database.
    #[must_use]
    pub fn open_memory() -> Self {
        let mut pager = Pager::open_memory();
        pager.begin().expect("fresh txn");
        schema::init_catalog(&mut pager).expect("catalog init");
        pager.commit().expect("catalog commit");
        Self {
            pager,
            schema: Schema::default(),
            explicit_txn: false,
        }
    }

    /// Open (or create) a file-backed database through a VFS.
    pub fn open(vfs: Box<dyn Vfs>, name: &str) -> DbResult<Self> {
        let mut pager = Pager::open_file(vfs, name)?;
        if pager.page_count() < 2 {
            pager.begin()?;
            schema::init_catalog(&mut pager)?;
            pager.commit()?;
        }
        let schema = schema::load_schema(&mut pager)?;
        Ok(Self {
            pager,
            schema,
            explicit_txn: false,
        })
    }

    /// Configure the page-cache size in pages (PRAGMA cache_size analogue).
    pub fn set_cache_pages(&mut self, pages: usize) {
        self.pager.set_cache_pages(pages);
    }

    /// Install a page-access hook (EPC modelling / I/O tracing).
    pub fn set_page_hook(&mut self, hook: Option<PageHook>) {
        self.pager.set_hook(hook);
    }

    /// Pager I/O statistics.
    #[must_use]
    pub fn stats(&self) -> PagerStats {
        self.pager.stats
    }

    /// Total pages in the database file.
    #[must_use]
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// The current schema (read-only view).
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Execute one statement, returning the full result.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecResult> {
        let stmt = parse(sql)?;
        match stmt {
            Stmt::Begin => {
                if self.explicit_txn {
                    return Err(DbError::Unsupported("nested BEGIN".into()));
                }
                self.pager.begin()?;
                self.explicit_txn = true;
                Ok(ExecResult::default())
            }
            Stmt::Commit => {
                if !self.explicit_txn {
                    return Err(DbError::Unsupported("COMMIT outside transaction".into()));
                }
                self.pager.commit()?;
                self.explicit_txn = false;
                Ok(ExecResult::default())
            }
            Stmt::Rollback => {
                if !self.explicit_txn {
                    return Err(DbError::Unsupported("ROLLBACK outside transaction".into()));
                }
                self.pager.rollback()?;
                self.explicit_txn = false;
                // The rolled-back transaction may have changed the schema.
                self.schema = schema::load_schema(&mut self.pager)?;
                Ok(ExecResult::default())
            }
            Stmt::Pragma { ref name, ref value } => {
                if name.eq_ignore_ascii_case("cache_size") {
                    if let Some(v) = value.as_ref().and_then(|v| v.parse::<i64>().ok()) {
                        self.set_cache_pages(v.unsigned_abs() as usize);
                    }
                }
                Ok(ExecResult::default())
            }
            other => self.run_dml(&other),
        }
    }

    fn run_dml(&mut self, stmt: &Stmt) -> DbResult<ExecResult> {
        if self.explicit_txn {
            return execute(&mut self.pager, &mut self.schema, stmt);
        }
        // Autocommit: wrap the statement in its own transaction.
        self.pager.begin()?;
        match execute(&mut self.pager, &mut self.schema, stmt) {
            Ok(r) => {
                self.pager.commit()?;
                Ok(r)
            }
            Err(e) => {
                self.pager.rollback()?;
                // Roll back any in-memory schema changes too.
                self.schema = schema::load_schema(&mut self.pager)?;
                Err(e)
            }
        }
    }

    /// Execute and return just the rows.
    pub fn query(&mut self, sql: &str) -> DbResult<Vec<Row>> {
        Ok(self.execute(sql)?.rows)
    }

    /// Execute and return the single scalar result.
    pub fn query_scalar(&mut self, sql: &str) -> DbResult<crate::value::SqlValue> {
        let rows = self.query(sql)?;
        rows.first()
            .and_then(|r| r.first())
            .cloned()
            .ok_or_else(|| DbError::Schema("query returned no rows".into()))
    }

    /// Flush everything to storage (close).
    pub fn close(mut self) -> DbResult<()> {
        if self.explicit_txn {
            self.pager.commit()?;
        }
        self.pager.flush()
    }
}
