//! The schema catalog (the `sqlite_master` analogue).
//!
//! Catalog rows live in a table tree rooted at page 2, created when the
//! database is initialised. Each row is a record
//! `[kind, name, table, root_page, spec]` where `spec` serialises the
//! column definitions (tables) or indexed columns (indexes).

use std::collections::HashMap;

use crate::btree::{self, Cursor};
use crate::pager::{PageId, Pager};
use crate::record::{decode_record, encode_record};
use crate::sql::{Affinity, ColumnDef};
use crate::value::SqlValue;
use crate::{DbError, DbResult};

/// The fixed root page of the catalog tree.
pub const CATALOG_ROOT: PageId = 2;

/// A table column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Name (stored lowercase; lookups are case-insensitive).
    pub name: String,
    /// Declared affinity.
    pub affinity: Affinity,
}

/// A table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Name.
    pub name: String,
    /// Root page of the data tree.
    pub root: PageId,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Index of the INTEGER PRIMARY KEY column (rowid alias), if any.
    pub rowid_alias: Option<usize>,
}

impl Table {
    /// Position of a column by (case-insensitive) name.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }
}

/// A secondary index.
#[derive(Debug, Clone, PartialEq)]
pub struct Index {
    /// Name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column positions.
    pub columns: Vec<usize>,
    /// UNIQUE constraint.
    pub unique: bool,
    /// Root page of the index tree.
    pub root: PageId,
}

/// The in-memory schema cache.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    /// Tables by lowercase name.
    pub tables: HashMap<String, Table>,
    /// Indexes by lowercase name.
    pub indexes: HashMap<String, Index>,
}

impl Schema {
    /// Look up a table.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::Schema(format!("no such table: {name}")))
    }

    /// All indexes on a table.
    #[must_use]
    pub fn indexes_of(&self, table: &str) -> Vec<&Index> {
        let lower = table.to_ascii_lowercase();
        let mut v: Vec<&Index> = self.indexes.values().filter(|i| i.table == lower).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

fn affinity_code(a: Affinity) -> i64 {
    match a {
        Affinity::Integer => 0,
        Affinity::Real => 1,
        Affinity::Text => 2,
        Affinity::Blob => 3,
    }
}

fn affinity_from(code: i64) -> Affinity {
    match code {
        0 => Affinity::Integer,
        1 => Affinity::Real,
        2 => Affinity::Text,
        _ => Affinity::Blob,
    }
}

/// Initialise the catalog tree in a fresh database. Must allocate page 2.
pub fn init_catalog(pager: &mut Pager) -> DbResult<()> {
    let root = btree::create_table_tree(pager)?;
    if root != CATALOG_ROOT {
        return Err(DbError::Storage(format!(
            "catalog root landed on page {root}, expected {CATALOG_ROOT}"
        )));
    }
    Ok(())
}

/// Serialise a table's column spec.
fn table_spec(columns: &[ColumnDef]) -> String {
    columns
        .iter()
        .map(|c| {
            format!(
                "{}:{}:{}",
                c.name.to_ascii_lowercase(),
                affinity_code(c.affinity),
                u8::from(c.primary_key)
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_table_spec(spec: &str) -> DbResult<(Vec<Column>, Option<usize>)> {
    let mut columns = Vec::new();
    let mut rowid_alias = None;
    if spec.is_empty() {
        return Ok((columns, rowid_alias));
    }
    for (i, part) in spec.split(',').enumerate() {
        let mut fields = part.split(':');
        let name = fields
            .next()
            .ok_or_else(|| DbError::Storage("bad table spec".into()))?
            .to_string();
        let aff: i64 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| DbError::Storage("bad table spec affinity".into()))?;
        let pk: u8 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| DbError::Storage("bad table spec pk".into()))?;
        if pk == 1 && affinity_from(aff) == Affinity::Integer && rowid_alias.is_none() {
            rowid_alias = Some(i);
        }
        columns.push(Column {
            name,
            affinity: affinity_from(aff),
        });
    }
    Ok((columns, rowid_alias))
}

fn index_spec(columns: &[usize]) -> String {
    columns
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_index_spec(spec: &str) -> DbResult<Vec<usize>> {
    if spec.is_empty() {
        return Ok(Vec::new());
    }
    spec.split(',')
        .map(|s| {
            s.parse()
                .map_err(|_| DbError::Storage("bad index spec".into()))
        })
        .collect()
}

fn next_catalog_rowid(pager: &mut Pager) -> DbResult<i64> {
    Ok(btree::table_max_rowid(pager, CATALOG_ROOT)?.unwrap_or(0) + 1)
}

/// Persist a new table in the catalog.
pub fn persist_table(pager: &mut Pager, table: &Table, columns: &[ColumnDef]) -> DbResult<()> {
    let rec = encode_record(&[
        SqlValue::Text("table".into()),
        SqlValue::Text(table.name.clone()),
        SqlValue::Text(table.name.clone()),
        SqlValue::Int(i64::from(table.root)),
        SqlValue::Text(table_spec(columns)),
    ]);
    let rowid = next_catalog_rowid(pager)?;
    btree::table_insert(pager, CATALOG_ROOT, rowid, &rec)
}

/// Persist a new index in the catalog.
pub fn persist_index(pager: &mut Pager, index: &Index) -> DbResult<()> {
    let rec = encode_record(&[
        SqlValue::Text(format!("index:{}", u8::from(index.unique))),
        SqlValue::Text(index.name.clone()),
        SqlValue::Text(index.table.clone()),
        SqlValue::Int(i64::from(index.root)),
        SqlValue::Text(index_spec(&index.columns)),
    ]);
    let rowid = next_catalog_rowid(pager)?;
    btree::table_insert(pager, CATALOG_ROOT, rowid, &rec)
}

/// Remove a catalog entry by object name.
pub fn unpersist(pager: &mut Pager, name: &str) -> DbResult<()> {
    let mut cursor = Cursor::first(pager, CATALOG_ROOT)?;
    let mut target = None;
    while cursor.valid() {
        let (rowid, rec) = cursor.table_entry(pager)?;
        let vals = decode_record(&rec)?;
        if let Some(SqlValue::Text(n)) = vals.get(1) {
            if n.eq_ignore_ascii_case(name) {
                target = Some(rowid);
                break;
            }
        }
        cursor.next(pager)?;
    }
    match target {
        Some(rowid) => {
            btree::table_delete(pager, CATALOG_ROOT, rowid)?;
            Ok(())
        }
        None => Err(DbError::Schema(format!("no such object: {name}"))),
    }
}

/// Load the whole schema from the catalog.
pub fn load_schema(pager: &mut Pager) -> DbResult<Schema> {
    let mut schema = Schema::default();
    let mut cursor = Cursor::first(pager, CATALOG_ROOT)?;
    while cursor.valid() {
        let (_, rec) = cursor.table_entry(pager)?;
        let vals = decode_record(&rec)?;
        let kind = match vals.first() {
            Some(SqlValue::Text(k)) => k.clone(),
            _ => return Err(DbError::Storage("corrupt catalog row".into())),
        };
        let name = match vals.get(1) {
            Some(SqlValue::Text(n)) => n.to_ascii_lowercase(),
            _ => return Err(DbError::Storage("corrupt catalog name".into())),
        };
        let tbl = match vals.get(2) {
            Some(SqlValue::Text(t)) => t.to_ascii_lowercase(),
            _ => return Err(DbError::Storage("corrupt catalog table".into())),
        };
        let root = match vals.get(3) {
            Some(SqlValue::Int(r)) => *r as PageId,
            _ => return Err(DbError::Storage("corrupt catalog root".into())),
        };
        let spec = match vals.get(4) {
            Some(SqlValue::Text(s)) => s.clone(),
            _ => return Err(DbError::Storage("corrupt catalog spec".into())),
        };
        if kind == "table" {
            let (columns, rowid_alias) = parse_table_spec(&spec)?;
            schema.tables.insert(
                name.clone(),
                Table {
                    name,
                    root,
                    columns,
                    rowid_alias,
                },
            );
        } else if let Some(uniq) = kind.strip_prefix("index:") {
            schema.indexes.insert(
                name.clone(),
                Index {
                    name,
                    table: tbl,
                    columns: parse_index_spec(&spec)?,
                    unique: uniq == "1",
                    root,
                },
            );
        } else {
            return Err(DbError::Storage(format!("unknown catalog kind {kind:?}")));
        }
        cursor.next(pager)?;
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs() -> Vec<ColumnDef> {
        vec![
            ColumnDef {
                name: "id".into(),
                affinity: Affinity::Integer,
                primary_key: true,
            },
            ColumnDef {
                name: "Payload".into(),
                affinity: Affinity::Blob,
                primary_key: false,
            },
        ]
    }

    #[test]
    fn persist_and_load_roundtrip() {
        let mut p = Pager::open_memory();
        p.begin().unwrap();
        init_catalog(&mut p).unwrap();
        let data_root = btree::create_table_tree(&mut p).unwrap();
        let t = Table {
            name: "items".into(),
            root: data_root,
            columns: vec![
                Column {
                    name: "id".into(),
                    affinity: Affinity::Integer,
                },
                Column {
                    name: "payload".into(),
                    affinity: Affinity::Blob,
                },
            ],
            rowid_alias: Some(0),
        };
        persist_table(&mut p, &t, &defs()).unwrap();
        let idx_root = btree::create_index_tree(&mut p).unwrap();
        let idx = Index {
            name: "items_by_payload".into(),
            table: "items".into(),
            columns: vec![1],
            unique: false,
            root: idx_root,
        };
        persist_index(&mut p, &idx).unwrap();
        p.commit().unwrap();

        let schema = load_schema(&mut p).unwrap();
        assert_eq!(schema.tables.len(), 1);
        let lt = schema.table("ITEMS").unwrap();
        assert_eq!(lt.root, data_root);
        assert_eq!(lt.rowid_alias, Some(0));
        assert_eq!(lt.column_index("PAYLOAD"), Some(1));
        assert_eq!(schema.indexes.len(), 1);
        let li = &schema.indexes["items_by_payload"];
        assert_eq!(li.columns, vec![1]);
        assert!(!li.unique);
        assert_eq!(schema.indexes_of("items").len(), 1);
    }

    #[test]
    fn unpersist_removes() {
        let mut p = Pager::open_memory();
        p.begin().unwrap();
        init_catalog(&mut p).unwrap();
        let data_root = btree::create_table_tree(&mut p).unwrap();
        let t = Table {
            name: "t".into(),
            root: data_root,
            columns: vec![],
            rowid_alias: None,
        };
        persist_table(&mut p, &t, &[]).unwrap();
        unpersist(&mut p, "t").unwrap();
        assert!(unpersist(&mut p, "t").is_err());
        let schema = load_schema(&mut p).unwrap();
        assert!(schema.tables.is_empty());
        p.commit().unwrap();
    }
}
