//! The pager: page cache, transactions, and the delete-mode rollback
//! journal (SQLite's default journal mode, used by the paper's benchmarks).
//!
//! The cache holds 2048 4-KiB pages by default — the 8 MiB SQLite page
//! cache the paper configures (§V-C). Figure 5b's "sharp increase up to
//! twice the cache size" behaviour comes from exactly this structure.

use std::collections::{HashMap, HashSet};

use crate::vfs::{Vfs, VfsFile};
use crate::{DbError, DbResult, PAGE_SIZE};

/// 1-based page identifier; page 1 is the database header.
pub type PageId = u32;

/// Default page-cache capacity (2048 pages = 8 MiB).
pub const DEFAULT_CACHE_PAGES: usize = 2048;

const HEADER_MAGIC: &[u8; 16] = b"twine-sqldb v1\0\0";
const JOURNAL_MAGIC: &[u8; 8] = b"twjrnl1\0";

/// Maximum freelist entries storable in the header page.
const MAX_FREELIST: usize = (PAGE_SIZE - 64) / 4;

/// Magic tag of a freelist trunk page (overflow freelist storage).
const TRUNK_MAGIC: &[u8; 4] = b"FLT1";

/// Freelist ids per trunk page: 4-byte magic + 4-byte next pointer +
/// 4-byte count, then packed ids.
const TRUNK_CAP: usize = (PAGE_SIZE - 12) / 4;

type PageBuf = Box<[u8; PAGE_SIZE]>;

fn new_page() -> PageBuf {
    vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().expect("size")
}

/// Observation hook: `(page_id, is_write)` for every cache miss/flush —
/// the seam the EPC simulator and I/O accounting attach to. `Send` so a
/// connection (hook included) can live on a service worker thread.
pub type PageHook = Box<dyn FnMut(PageId, bool) + Send>;

struct CacheSlot {
    id: PageId,
    buf: PageBuf,
    dirty: bool,
    referenced: bool,
    occupied: bool,
}

/// I/O statistics (drives the harness' virtual-time I/O model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages read from the VFS.
    pub page_reads: u64,
    /// Pages written to the VFS.
    pub page_writes: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// fsync calls.
    pub syncs: u64,
    /// Journal page writes.
    pub journal_writes: u64,
    /// Page ids dropped from freelist tracking. The overflow trunk chain
    /// makes the freelist unbounded, so this must stay 0 — it exists as a
    /// regression gauge for the historical `MAX_FREELIST` drop bug.
    pub leaked_pages: u64,
}

/// The pager.
pub struct Pager {
    /// `None` for a pure in-memory database.
    file: Option<Box<dyn VfsFile>>,
    vfs: Option<Box<dyn Vfs>>,
    journal_name: String,
    journal: Option<Box<dyn VfsFile>>,
    journal_count: u32,
    /// Clock-hand page cache (file-backed mode).
    slots: Vec<CacheSlot>,
    map: HashMap<PageId, usize>,
    hand: usize,
    cache_limit: usize,
    /// In-memory mode backing store.
    mem_pages: Vec<Option<PageBuf>>,
    /// Rollback copies for in-memory transactions.
    mem_undo: HashMap<PageId, Option<PageBuf>>,
    n_pages: u32,
    freelist: Vec<PageId>,
    /// Pages currently holding overflow freelist storage (the on-disk
    /// trunk chain); disjoint from `freelist` and never handed out by
    /// `allocate` until `plan_spill` returns them.
    freelist_trunks: Vec<PageId>,
    in_txn: bool,
    journaled: HashSet<PageId>,
    txn_start_n_pages: u32,
    txn_start_freelist: Vec<PageId>,
    /// Statistics.
    pub stats: PagerStats,
    hook: Option<PageHook>,
}

impl Pager {
    /// Pure in-memory database.
    #[must_use]
    pub fn open_memory() -> Self {
        let mut p = Self::base(None, None, String::new());
        p.init_fresh();
        p
    }

    /// File-backed database named `name` on `vfs` (journal: `{name}-journal`).
    pub fn open_file(mut vfs: Box<dyn Vfs>, name: &str) -> DbResult<Self> {
        let journal_name = format!("{name}-journal");
        let hot_journal = vfs.exists(&journal_name);
        let file = vfs.open(name)?;
        let mut p = Self::base(Some(file), Some(vfs), journal_name);
        if hot_journal {
            p.recover_hot_journal()?;
        }
        let size = p.file.as_mut().expect("file").size()?;
        if size == 0 {
            p.init_fresh();
            p.write_header()?;
            let file = p.file.as_mut().expect("file");
            file.sync()?;
        } else {
            p.read_header()?;
        }
        Ok(p)
    }

    fn base(file: Option<Box<dyn VfsFile>>, vfs: Option<Box<dyn Vfs>>, journal_name: String) -> Self {
        Self {
            file,
            vfs,
            journal_name,
            journal: None,
            journal_count: 0,
            slots: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            cache_limit: DEFAULT_CACHE_PAGES,
            mem_pages: vec![None],
            mem_undo: HashMap::new(),
            n_pages: 0,
            freelist: Vec::new(),
            freelist_trunks: Vec::new(),
            in_txn: false,
            journaled: HashSet::new(),
            txn_start_n_pages: 0,
            txn_start_freelist: Vec::new(),
            stats: PagerStats::default(),
            hook: None,
        }
    }

    fn init_fresh(&mut self) {
        self.n_pages = 1; // header page
        self.freelist.clear();
        self.freelist_trunks.clear();
    }

    /// Whether this is an in-memory database.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        self.file.is_none()
    }

    /// Set the page-cache capacity (in pages).
    pub fn set_cache_pages(&mut self, pages: usize) {
        self.cache_limit = pages.max(16);
    }

    /// Install a page-access hook.
    pub fn set_hook(&mut self, hook: Option<PageHook>) {
        self.hook = hook;
    }

    /// Total pages in the database.
    #[must_use]
    pub fn page_count(&self) -> u32 {
        self.n_pages
    }

    fn touch_hook(&mut self, id: PageId, write: bool) {
        if let Some(h) = self.hook.as_mut() {
            h(id, write);
        }
    }

    // ------------------------------------------------------------------
    // Header
    // ------------------------------------------------------------------

    /// Rebalance the freelist between header storage and overflow trunk
    /// pages so no id is ever dropped. Trunk pages are drawn from (and
    /// returned to) the freelist itself, so the file never grows just to
    /// record free pages. Idempotent: re-running on a balanced state is a
    /// no-op, which keeps the post-commit in-memory state bit-identical
    /// to what `read_header` reconstructs after a reopen.
    fn plan_spill(&mut self) {
        if self.is_memory() {
            return;
        }
        while self.freelist.len() > MAX_FREELIST + self.freelist_trunks.len() * TRUNK_CAP {
            let t = self.freelist.pop().expect("overflowing freelist is non-empty");
            self.freelist_trunks.push(t);
        }
        while let Some(&last) = self.freelist_trunks.last() {
            if self.freelist.len() < MAX_FREELIST + (self.freelist_trunks.len() - 1) * TRUNK_CAP {
                self.freelist_trunks.pop();
                self.freelist.push(last);
            } else {
                break;
            }
        }
    }

    fn write_header(&mut self) -> DbResult<()> {
        self.plan_spill();
        let mut buf = new_page();
        buf[..16].copy_from_slice(HEADER_MAGIC);
        buf[16..20].copy_from_slice(&self.n_pages.to_le_bytes());
        let in_header = self.freelist.len().min(MAX_FREELIST);
        buf[20..24].copy_from_slice(&(in_header as u32).to_le_bytes());
        let trunk_head = self.freelist_trunks.first().copied().unwrap_or(0);
        buf[24..28].copy_from_slice(&trunk_head.to_le_bytes());
        for (i, id) in self.freelist.iter().take(in_header).enumerate() {
            buf[64 + i * 4..64 + i * 4 + 4].copy_from_slice(&id.to_le_bytes());
        }
        if self.file.is_none() {
            self.mem_pages[0] = Some(buf);
            return Ok(());
        }
        // Spill freelist[MAX_FREELIST..] across the trunk chain, in order,
        // so reopen reconstructs the exact allocation order.
        let trunks = self.freelist_trunks.clone();
        for (i, &t) in trunks.iter().enumerate() {
            let lo = (MAX_FREELIST + i * TRUNK_CAP).min(self.freelist.len());
            let hi = (MAX_FREELIST + (i + 1) * TRUNK_CAP).min(self.freelist.len());
            let mut tb = new_page();
            tb[..4].copy_from_slice(TRUNK_MAGIC);
            let next = trunks.get(i + 1).copied().unwrap_or(0);
            tb[4..8].copy_from_slice(&next.to_le_bytes());
            tb[8..12].copy_from_slice(&((hi - lo) as u32).to_le_bytes());
            for (k, id) in self.freelist[lo..hi].iter().enumerate() {
                tb[12 + k * 4..12 + k * 4 + 4].copy_from_slice(&id.to_le_bytes());
            }
            // A stale cached copy of this page must not shadow the write.
            if let Some(slot) = self.map.remove(&t) {
                self.slots[slot].occupied = false;
                self.slots[slot].dirty = false;
            }
            let f = self.file.as_mut().expect("file");
            f.write_at(u64::from(t - 1) * PAGE_SIZE as u64, &tb[..])?;
            self.stats.page_writes += 1;
        }
        let f = self.file.as_mut().expect("file");
        f.write_at(0, &buf[..])?;
        self.stats.page_writes += 1;
        Ok(())
    }

    fn read_header(&mut self) -> DbResult<()> {
        let mut buf = new_page();
        let f = self.file.as_mut().expect("file-backed");
        f.read_at(0, &mut buf[..])?;
        self.stats.page_reads += 1;
        if &buf[..16] != HEADER_MAGIC {
            return Err(DbError::Storage("bad database header".into()));
        }
        self.n_pages = u32::from_le_bytes(buf[16..20].try_into().expect("4"));
        let n_free = u32::from_le_bytes(buf[20..24].try_into().expect("4")) as usize;
        if n_free > MAX_FREELIST {
            return Err(DbError::Storage("corrupt freelist".into()));
        }
        self.freelist = (0..n_free)
            .map(|i| u32::from_le_bytes(buf[64 + i * 4..64 + i * 4 + 4].try_into().expect("4")))
            .collect();
        // Walk the overflow trunk chain. A zero head pointer means no
        // overflow — also the value found in pre-chain files, which keeps
        // them readable.
        self.freelist_trunks.clear();
        let mut t = u32::from_le_bytes(buf[24..28].try_into().expect("4"));
        let mut tb = new_page();
        while t != 0 {
            if t > self.n_pages || self.freelist_trunks.len() as u32 >= self.n_pages {
                return Err(DbError::Storage("corrupt freelist trunk chain".into()));
            }
            let f = self.file.as_mut().expect("file-backed");
            f.read_at(u64::from(t - 1) * PAGE_SIZE as u64, &mut tb[..])?;
            self.stats.page_reads += 1;
            if &tb[..4] != TRUNK_MAGIC {
                return Err(DbError::Storage("corrupt freelist trunk page".into()));
            }
            let next = u32::from_le_bytes(tb[4..8].try_into().expect("4"));
            let count = u32::from_le_bytes(tb[8..12].try_into().expect("4")) as usize;
            if count > TRUNK_CAP {
                return Err(DbError::Storage("corrupt freelist trunk count".into()));
            }
            for k in 0..count {
                let id = u32::from_le_bytes(tb[12 + k * 4..12 + k * 4 + 4].try_into().expect("4"));
                self.freelist.push(id);
            }
            self.freelist_trunks.push(t);
            t = next;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Page access
    // ------------------------------------------------------------------

    /// Read-only page view.
    pub fn get(&mut self, id: PageId) -> DbResult<&[u8]> {
        self.load(id, false)?;
        Ok(self.page_ref(id))
    }

    /// Writable page view (journals the original on first touch).
    pub fn get_mut(&mut self, id: PageId) -> DbResult<&mut [u8]> {
        if !self.in_txn {
            return Err(DbError::Storage("write outside transaction".into()));
        }
        self.load(id, true)?;
        self.journal_page(id)?;
        if self.is_memory() {
            let buf = self.mem_pages[id as usize - 1].as_deref_mut().expect("loaded");
            Ok(&mut buf[..])
        } else {
            let slot = self.map[&id];
            self.slots[slot].dirty = true;
            self.slots[slot].referenced = true;
            Ok(&mut self.slots[slot].buf[..])
        }
    }

    fn page_ref(&self, id: PageId) -> &[u8] {
        if self.is_memory() {
            self.mem_pages[id as usize - 1].as_deref().expect("loaded")
        } else {
            &self.slots[self.map[&id]].buf[..]
        }
    }

    fn load(&mut self, id: PageId, for_write: bool) -> DbResult<()> {
        if id == 0 || id > self.n_pages {
            return Err(DbError::Storage(format!("page {id} out of range")));
        }
        self.touch_hook(id, for_write);
        if self.is_memory() {
            let idx = id as usize - 1;
            if self.mem_pages.len() <= idx {
                self.mem_pages.resize_with(idx + 1, || None);
            }
            if self.mem_pages[idx].is_none() {
                self.mem_pages[idx] = Some(new_page());
            }
            return Ok(());
        }
        if let Some(&slot) = self.map.get(&id) {
            self.slots[slot].referenced = true;
            self.stats.cache_hits += 1;
            return Ok(());
        }
        // Miss: read from file into a (possibly evicted) slot.
        let mut buf = self.take_slot_buf()?;
        let f = self.file.as_mut().expect("file-backed");
        f.read_at(u64::from(id - 1) * PAGE_SIZE as u64, &mut buf[..])?;
        self.stats.page_reads += 1;
        self.insert_slot(id, buf, false);
        Ok(())
    }

    /// Obtain a free buffer, evicting if the cache is full.
    fn take_slot_buf(&mut self) -> DbResult<PageBuf> {
        if self.map.len() < self.cache_limit {
            return Ok(new_page());
        }
        // Clock (second chance) eviction.
        loop {
            if self.slots.is_empty() {
                return Ok(new_page());
            }
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = &mut self.slots[self.hand];
            if !slot.occupied {
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            // Victim found.
            let id = slot.id;
            let dirty = slot.dirty;
            let buf = std::mem::replace(&mut slot.buf, new_page());
            slot.occupied = false;
            self.map.remove(&id);
            if dirty {
                // Spill: legal mid-transaction because the original page is
                // already in the journal.
                let f = self.file.as_mut().expect("file-backed");
                f.write_at(u64::from(id - 1) * PAGE_SIZE as u64, &buf[..])?;
                self.stats.page_writes += 1;
            }
            return Ok(buf);
        }
    }

    fn insert_slot(&mut self, id: PageId, buf: PageBuf, dirty: bool) {
        // Reuse an unoccupied slot if available.
        for (i, s) in self.slots.iter_mut().enumerate() {
            if !s.occupied {
                *s = CacheSlot {
                    id,
                    buf,
                    dirty,
                    referenced: true,
                    occupied: true,
                };
                self.map.insert(id, i);
                return;
            }
        }
        self.slots.push(CacheSlot {
            id,
            buf,
            dirty,
            referenced: true,
            occupied: true,
        });
        self.map.insert(id, self.slots.len() - 1);
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocate a page (zeroed) within the current transaction.
    pub fn allocate(&mut self) -> DbResult<PageId> {
        if !self.in_txn {
            return Err(DbError::Storage("allocate outside transaction".into()));
        }
        let id = if let Some(id) = self.freelist.pop() {
            id
        } else {
            self.n_pages += 1;
            self.n_pages
        };
        if self.is_memory() {
            let idx = id as usize - 1;
            if self.mem_pages.len() <= idx {
                self.mem_pages.resize_with(idx + 1, || None);
            }
            self.mem_undo.entry(id).or_insert(None);
            self.mem_pages[idx] = Some(new_page());
        } else {
            self.ensure_journal()?; // growth must be recoverable
            self.journaled.insert(id); // fresh page: no prior image needed
            self.insert_or_reset_slot(id)?;
        }
        Ok(id)
    }

    fn insert_or_reset_slot(&mut self, id: PageId) -> DbResult<()> {
        if let Some(&slot) = self.map.get(&id) {
            self.slots[slot].buf.fill(0);
            self.slots[slot].dirty = true;
            self.slots[slot].referenced = true;
            return Ok(());
        }
        let buf = self.take_slot_buf().map(|mut b| {
            b.fill(0);
            b
        })?;
        self.insert_slot(id, buf, true);
        Ok(())
    }

    /// Return a page to the freelist. Never drops an id: past
    /// `MAX_FREELIST` entries the surplus spills to chained trunk pages
    /// at commit.
    pub fn free_page(&mut self, id: PageId) -> DbResult<()> {
        if !self.in_txn {
            return Err(DbError::Storage("free outside transaction".into()));
        }
        if id == 0 || id > self.n_pages {
            return Err(DbError::Storage(format!("free of page {id} out of range")));
        }
        if !self.is_memory() {
            // The freelist change must reach the header at commit even if
            // no page content was modified this transaction.
            self.ensure_journal()?;
        }
        self.freelist.push(id);
        Ok(())
    }

    /// Free pages currently tracked (header + overflow chain).
    #[must_use]
    pub fn freelist_len(&self) -> usize {
        self.freelist.len()
    }

    /// Pages currently serving as overflow freelist trunk storage.
    #[must_use]
    pub fn freelist_trunk_pages(&self) -> usize {
        self.freelist_trunks.len()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Whether a transaction is active.
    #[must_use]
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Begin a transaction. The rollback journal is created lazily on the
    /// first page modification, so read-only transactions (plain SELECTs in
    /// autocommit) cost no journal I/O — matching SQLite's behaviour.
    pub fn begin(&mut self) -> DbResult<()> {
        if self.in_txn {
            return Err(DbError::Storage("nested transaction".into()));
        }
        self.in_txn = true;
        self.txn_start_n_pages = self.n_pages;
        self.txn_start_freelist = self.freelist.clone();
        self.journaled.clear();
        self.mem_undo.clear();
        Ok(())
    }

    /// Open the journal file (first write of the transaction).
    fn ensure_journal(&mut self) -> DbResult<()> {
        if self.is_memory() || self.journal.is_some() {
            return Ok(());
        }
        let vfs = self.vfs.as_mut().expect("vfs");
        let mut j = vfs.open(&self.journal_name)?;
        let mut head = Vec::with_capacity(16);
        head.extend_from_slice(JOURNAL_MAGIC);
        head.extend_from_slice(&self.txn_start_n_pages.to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes()); // entry count, patched
        j.write_at(0, &head)?;
        self.journal = Some(j);
        self.journal_count = 0;
        Ok(())
    }

    /// Whether the current transaction has modified anything.
    fn txn_dirty(&self) -> bool {
        if self.is_memory() {
            !self.mem_undo.is_empty() || self.n_pages != self.txn_start_n_pages
        } else {
            self.journal.is_some()
        }
    }

    /// Write the pre-image of `id` to the journal (first touch only).
    fn journal_page(&mut self, id: PageId) -> DbResult<()> {
        if self.journaled.contains(&id) || (self.is_memory() && self.mem_undo.contains_key(&id)) {
            return Ok(());
        }
        if self.is_memory() {
            let pre = self.mem_pages[id as usize - 1].clone();
            self.mem_undo.insert(id, pre);
            return Ok(());
        }
        self.ensure_journal()?;
        // Copy the current (pre-modification) content.
        let pre: PageBuf = {
            let slot = self.map.get(&id).copied().expect("loaded before journal");
            let mut b = new_page();
            b.copy_from_slice(&self.slots[slot].buf[..]);
            b
        };
        let j = self.journal.as_mut().expect("journal open in txn");
        let off = 16 + u64::from(self.journal_count) * (4 + PAGE_SIZE as u64);
        j.write_at(off, &id.to_le_bytes())?;
        j.write_at(off + 4, &pre[..])?;
        self.journal_count += 1;
        self.stats.journal_writes += 1;
        self.journaled.insert(id);
        Ok(())
    }

    /// Journal the on-disk pre-image of `id` straight from the file (used
    /// for pages the commit itself overwrites: the header and freelist
    /// trunks). Pages the transaction already journaled — or allocated
    /// fresh — are skipped, since their file content is not the
    /// pre-transaction image.
    fn journal_raw_preimage(&mut self, id: PageId) -> DbResult<()> {
        if self.is_memory() || self.journaled.contains(&id) {
            return Ok(());
        }
        self.ensure_journal()?;
        let mut pre = new_page();
        let f = self.file.as_mut().expect("file-backed");
        f.read_at(u64::from(id - 1) * PAGE_SIZE as u64, &mut pre[..])?;
        self.stats.page_reads += 1;
        let j = self.journal.as_mut().expect("journal open in txn");
        let off = 16 + u64::from(self.journal_count) * (4 + PAGE_SIZE as u64);
        j.write_at(off, &id.to_le_bytes())?;
        j.write_at(off + 4, &pre[..])?;
        self.journal_count += 1;
        self.stats.journal_writes += 1;
        self.journaled.insert(id);
        Ok(())
    }

    /// Commit: flush dirty pages, sync, drop the journal. Read-only
    /// transactions commit for free.
    pub fn commit(&mut self) -> DbResult<()> {
        if !self.in_txn {
            return Err(DbError::Storage("commit outside transaction".into()));
        }
        if !self.txn_dirty() {
            self.in_txn = false;
            self.journaled.clear();
            self.mem_undo.clear();
            self.txn_start_freelist.clear();
            return Ok(());
        }
        if self.is_memory() {
            self.write_header()?;
            self.in_txn = false;
            self.journaled.clear();
            self.mem_undo.clear();
            self.txn_start_freelist.clear();
            return Ok(());
        }
        // The commit overwrites pages outside the cache's journal
        // protection: the header and any freelist trunk pages. Fix the
        // trunk layout now and journal their pre-images so an interrupted
        // commit (hot-journal replay) or a rollback restores the previous
        // header chain intact.
        self.plan_spill();
        self.journal_raw_preimage(1)?;
        let trunks = self.freelist_trunks.clone();
        for t in trunks {
            self.journal_raw_preimage(t)?;
        }
        // Commit point: persist the journal entry count, then sync it.
        let count = self.journal_count;
        if let Some(j) = self.journal.as_mut() {
            j.write_at(12, &count.to_le_bytes())?;
            j.sync()?;
        }
        self.stats.syncs += 1;
        // Only now mutate the main file: header + trunks, then dirty pages.
        self.write_header()?;
        for slot in &mut self.slots {
            if slot.occupied && slot.dirty {
                let f = self.file.as_mut().expect("file");
                f.write_at(u64::from(slot.id - 1) * PAGE_SIZE as u64, &slot.buf[..])?;
                self.stats.page_writes += 1;
                slot.dirty = false;
            }
        }
        let f = self.file.as_mut().expect("file");
        f.sync()?;
        self.stats.syncs += 1;
        self.journal = None;
        let vfs = self.vfs.as_mut().expect("vfs");
        if vfs.exists(&self.journal_name) {
            vfs.delete(&self.journal_name)?;
        }
        self.in_txn = false;
        self.journaled.clear();
        self.mem_undo.clear();
        self.txn_start_freelist.clear();
        Ok(())
    }

    /// Roll back the current transaction.
    pub fn rollback(&mut self) -> DbResult<()> {
        if !self.in_txn {
            return Err(DbError::Storage("rollback outside transaction".into()));
        }
        let start_freelist = std::mem::take(&mut self.txn_start_freelist);
        if !self.txn_dirty() {
            // Even a "clean" transaction may have freed pages (memory
            // mode): restore the freelist it started with.
            self.freelist = start_freelist;
            self.in_txn = false;
            self.journaled.clear();
            self.mem_undo.clear();
            return Ok(());
        }
        if self.is_memory() {
            let undo = std::mem::take(&mut self.mem_undo);
            for (id, pre) in undo {
                self.mem_pages[id as usize - 1] = pre;
            }
            self.freelist = start_freelist;
        } else {
            // Restore pre-images from the journal into cache + file.
            self.replay_journal_into_file()?;
            // Drop all cached state (simplest correct invalidation).
            self.slots.clear();
            self.map.clear();
            self.hand = 0;
            self.journal = None;
            let vfs = self.vfs.as_mut().expect("vfs");
            if vfs.exists(&self.journal_name) {
                vfs.delete(&self.journal_name)?;
            }
            self.read_header()?;
        }
        self.n_pages = self.txn_start_n_pages;
        self.in_txn = false;
        self.journaled.clear();
        Ok(())
    }

    fn replay_journal_into_file(&mut self) -> DbResult<()> {
        let Some(j) = self.journal.as_mut() else {
            return Ok(());
        };
        let mut head = [0u8; 16];
        j.read_at(0, &mut head)?;
        if &head[..8] != JOURNAL_MAGIC {
            return Err(DbError::Storage("bad journal header".into()));
        }
        let n_pages = u32::from_le_bytes(head[8..12].try_into().expect("4"));
        let count = u32::from_le_bytes(head[12..16].try_into().expect("4"));
        let mut buf = new_page();
        for i in 0..count {
            let off = 16 + u64::from(i) * (4 + PAGE_SIZE as u64);
            let mut idb = [0u8; 4];
            j.read_at(off, &mut idb)?;
            j.read_at(off + 4, &mut buf[..])?;
            let id = u32::from_le_bytes(idb);
            let f = self.file.as_mut().expect("file");
            f.write_at(u64::from(id - 1) * PAGE_SIZE as u64, &buf[..])?;
            self.stats.page_writes += 1;
        }
        let f = self.file.as_mut().expect("file");
        f.truncate(u64::from(n_pages) * PAGE_SIZE as u64)?;
        f.sync()?;
        Ok(())
    }

    /// Crash recovery: a journal file exists from an interrupted
    /// transaction — roll the database back before use.
    fn recover_hot_journal(&mut self) -> DbResult<()> {
        let vfs = self.vfs.as_mut().expect("vfs");
        let j = vfs.open(&self.journal_name)?;
        self.journal = Some(j);
        // Only replay if the journal header is complete (a torn journal
        // header means the transaction never reached its commit point and
        // the main file was not yet touched).
        let ok = {
            let j = self.journal.as_mut().expect("journal");
            let mut head = [0u8; 16];
            j.read_at(0, &mut head).is_ok() && &head[..8] == JOURNAL_MAGIC
        };
        if ok {
            self.replay_journal_into_file()?;
        }
        self.journal = None;
        let vfs = self.vfs.as_mut().expect("vfs");
        vfs.delete(&self.journal_name)?;
        Ok(())
    }

    /// Flush everything (used at clean close).
    pub fn flush(&mut self) -> DbResult<()> {
        if self.in_txn {
            self.commit()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn file_pager() -> (Pager, MemVfs) {
        let vfs = MemVfs::new();
        let p = Pager::open_file(Box::new(vfs.clone()), "test.db").unwrap();
        (p, vfs)
    }

    #[test]
    fn memory_alloc_write_read() {
        let mut p = Pager::open_memory();
        p.begin().unwrap();
        let id = p.allocate().unwrap();
        p.get_mut(id).unwrap()[0] = 0xAB;
        p.commit().unwrap();
        assert_eq!(p.get(id).unwrap()[0], 0xAB);
    }

    #[test]
    fn file_persistence_across_reopen() {
        let vfs = MemVfs::new();
        {
            let mut p = Pager::open_file(Box::new(vfs.clone()), "x.db").unwrap();
            p.begin().unwrap();
            let id = p.allocate().unwrap();
            assert_eq!(id, 2);
            p.get_mut(id).unwrap()[100] = 42;
            p.commit().unwrap();
        }
        let mut p = Pager::open_file(Box::new(vfs), "x.db").unwrap();
        assert_eq!(p.page_count(), 2);
        assert_eq!(p.get(2).unwrap()[100], 42);
    }

    #[test]
    fn rollback_restores_content_memory() {
        let mut p = Pager::open_memory();
        p.begin().unwrap();
        let id = p.allocate().unwrap();
        p.get_mut(id).unwrap()[0] = 1;
        p.commit().unwrap();
        p.begin().unwrap();
        p.get_mut(id).unwrap()[0] = 99;
        p.rollback().unwrap();
        assert_eq!(p.get(id).unwrap()[0], 1);
    }

    #[test]
    fn rollback_restores_content_file() {
        let (mut p, _vfs) = file_pager();
        p.begin().unwrap();
        let id = p.allocate().unwrap();
        p.get_mut(id).unwrap()[7] = 7;
        p.commit().unwrap();
        p.begin().unwrap();
        p.get_mut(id).unwrap()[7] = 70;
        assert_eq!(p.get(id).unwrap()[7], 70);
        p.rollback().unwrap();
        assert_eq!(p.get(id).unwrap()[7], 7);
    }

    #[test]
    fn rollback_undoes_allocation() {
        let (mut p, _) = file_pager();
        p.begin().unwrap();
        p.allocate().unwrap();
        p.commit().unwrap();
        let before = p.page_count();
        p.begin().unwrap();
        p.allocate().unwrap();
        p.allocate().unwrap();
        p.rollback().unwrap();
        assert_eq!(p.page_count(), before);
    }

    #[test]
    fn hot_journal_recovery() {
        // Simulate a crash: journal written, data file modified, but the
        // journal never deleted (no commit).
        let vfs = MemVfs::new();
        {
            let mut p = Pager::open_file(Box::new(vfs.clone()), "c.db").unwrap();
            p.begin().unwrap();
            let id = p.allocate().unwrap();
            p.get_mut(id).unwrap()[0] = 5;
            p.commit().unwrap();
            // Start a second txn, modify, and *simulate crash* by dropping
            // the pager after forcing the dirty page to disk via spill.
            p.begin().unwrap();
            p.get_mut(id).unwrap()[0] = 99;
            // Manually persist the journal count and dirty page, as if the
            // crash happened mid-commit (after data write, before journal
            // deletion).
            let count = p.journal_count;
            if let Some(j) = p.journal.as_mut() {
                j.write_at(12, &count.to_le_bytes()).unwrap();
            }
            for slot in &p.slots {
                if slot.occupied && slot.dirty {
                    let off = u64::from(slot.id - 1) * PAGE_SIZE as u64;
                    p.file.as_mut().unwrap().write_at(off, &slot.buf[..]).unwrap();
                }
            }
            // ... crash: no commit, journal remains.
        }
        let mut p = Pager::open_file(Box::new(vfs), "c.db").unwrap();
        assert_eq!(p.get(2).unwrap()[0], 5, "hot journal rolled back");
    }

    #[test]
    fn freelist_reuse() {
        let (mut p, _) = file_pager();
        p.begin().unwrap();
        let a = p.allocate().unwrap();
        let _b = p.allocate().unwrap();
        p.free_page(a).unwrap();
        let c = p.allocate().unwrap();
        assert_eq!(c, a, "freed page is reused");
        p.commit().unwrap();
    }

    #[test]
    fn cache_eviction_under_pressure() {
        let (mut p, _) = file_pager();
        p.set_cache_pages(16);
        p.begin().unwrap();
        let ids: Vec<PageId> = (0..100).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.get_mut(id).unwrap()[0] = i as u8;
        }
        p.commit().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.get(id).unwrap()[0], i as u8);
        }
        assert!(p.stats.page_reads > 0, "misses under pressure");
    }

    #[test]
    fn write_outside_txn_rejected() {
        let mut p = Pager::open_memory();
        p.begin().unwrap();
        let id = p.allocate().unwrap();
        p.commit().unwrap();
        assert!(p.get_mut(id).is_err());
        assert!(p.allocate().is_err());
    }

    #[test]
    fn hook_observes_touches() {
        use std::sync::{Arc, Mutex};
        let touches = Arc::new(Mutex::new(Vec::new()));
        let t2 = touches.clone();
        let mut p = Pager::open_memory();
        p.set_hook(Some(Box::new(move |id, w| t2.lock().unwrap().push((id, w)))));
        p.begin().unwrap();
        let id = p.allocate().unwrap();
        p.get_mut(id).unwrap()[0] = 1;
        let _ = p.get(id).unwrap();
        p.commit().unwrap();
        let t = touches.lock().unwrap();
        assert!(t.contains(&(id, true)));
        assert!(t.contains(&(id, false)));
    }

    #[test]
    fn freelist_survives_overflow_and_reopen() {
        // Free far more pages than the header can hold; every id must
        // come back after a reopen (the pre-fix pager silently dropped
        // the tail past MAX_FREELIST).
        let vfs = MemVfs::new();
        let n = MAX_FREELIST + 2 * TRUNK_CAP + 37;
        let before;
        {
            let mut p = Pager::open_file(Box::new(vfs.clone()), "big.db").unwrap();
            p.begin().unwrap();
            let ids: Vec<PageId> = (0..n).map(|_| p.allocate().unwrap()).collect();
            for &id in &ids {
                p.free_page(id).unwrap();
            }
            p.commit().unwrap();
            assert_eq!(p.stats.leaked_pages, 0);
            assert_eq!(p.freelist_len() + p.freelist_trunk_pages(), n);
            before = p.page_count();
        }
        let mut p = Pager::open_file(Box::new(vfs), "big.db").unwrap();
        assert_eq!(p.stats.leaked_pages, 0);
        assert_eq!(p.freelist_len() + p.freelist_trunk_pages(), n);
        // Reuse must drain the freelist before growing the file.
        let reusable = p.freelist_len();
        assert!(reusable > MAX_FREELIST, "overflow ids recovered");
        p.begin().unwrap();
        for _ in 0..reusable {
            let id = p.allocate().unwrap();
            assert!(id <= before, "allocation reuses freed pages");
        }
        p.commit().unwrap();
        assert_eq!(p.page_count(), before);
    }

    #[test]
    fn churn_does_not_leak_pages() {
        // Alloc/free churn across reopen cycles: the file stabilises at
        // its working set (pre-fix it grew by the dropped tail per round).
        let vfs = MemVfs::new();
        let mut high_water = 0;
        for round in 0..6u32 {
            let mut p = Pager::open_file(Box::new(vfs.clone()), "churn.db").unwrap();
            p.begin().unwrap();
            let ids: Vec<PageId> = (0..MAX_FREELIST + 200).map(|_| p.allocate().unwrap()).collect();
            for &id in &ids {
                p.get_mut(id).unwrap()[0] = round as u8;
            }
            for &id in &ids {
                p.free_page(id).unwrap();
            }
            p.commit().unwrap();
            assert_eq!(p.stats.leaked_pages, 0);
            if round == 0 {
                high_water = p.page_count();
            } else {
                // Trunk storage itself costs at most a couple of pages.
                assert!(
                    p.page_count() <= high_water + 2,
                    "round {round}: {} pages vs high water {high_water}",
                    p.page_count()
                );
            }
        }
    }

    #[test]
    fn reopen_preserves_allocation_order() {
        // Allocation order after close/reopen must match a never-closed
        // pager bit for bit — park/restore replay determinism depends on
        // it.
        let n = MAX_FREELIST + TRUNK_CAP + 5;
        fn churn(vfs: MemVfs, n: usize) -> Pager {
            let mut p = Pager::open_file(Box::new(vfs), "ord.db").unwrap();
            p.begin().unwrap();
            let ids: Vec<PageId> = (0..n).map(|_| p.allocate().unwrap()).collect();
            for &id in &ids {
                p.free_page(id).unwrap();
            }
            p.commit().unwrap();
            p
        }
        fn take(p: &mut Pager, k: usize) -> Vec<PageId> {
            p.begin().unwrap();
            let v = (0..k).map(|_| p.allocate().unwrap()).collect();
            p.commit().unwrap();
            v
        }
        let mut continuous = churn(MemVfs::new(), n);
        let order_a = take(&mut continuous, 64);
        let vfs = MemVfs::new();
        drop(churn(vfs.clone(), n));
        let mut reopened = Pager::open_file(Box::new(vfs), "ord.db").unwrap();
        let order_b = take(&mut reopened, 64);
        assert_eq!(order_a, order_b);
    }

    #[test]
    fn rollback_restores_freelist_file() {
        let (mut p, _) = file_pager();
        p.begin().unwrap();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.get_mut(a).unwrap()[0] = 1;
        p.get_mut(b).unwrap()[0] = 2;
        p.free_page(a).unwrap();
        p.commit().unwrap();
        let free_before = p.freelist_len();
        p.begin().unwrap();
        let re = p.allocate().unwrap();
        assert_eq!(re, a);
        p.get_mut(re).unwrap()[0] = 9;
        p.rollback().unwrap();
        assert_eq!(p.freelist_len(), free_before, "freed page back on the freelist");
        p.begin().unwrap();
        assert_eq!(p.allocate().unwrap(), a, "same page allocated after rollback");
        p.commit().unwrap();
    }

    #[test]
    fn rollback_restores_freelist_memory() {
        let mut p = Pager::open_memory();
        p.begin().unwrap();
        let a = p.allocate().unwrap();
        p.free_page(a).unwrap();
        p.commit().unwrap();
        p.begin().unwrap();
        assert_eq!(p.allocate().unwrap(), a);
        p.rollback().unwrap();
        p.begin().unwrap();
        assert_eq!(p.allocate().unwrap(), a, "rollback returned the page to the freelist");
        p.commit().unwrap();
    }
}
