//! SQL values and their comparison semantics.

use std::cmp::Ordering;

/// A dynamically-typed SQL value (SQLite's five storage classes).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
    /// Binary blob.
    Blob(Vec<u8>),
}

impl SqlValue {
    /// SQL truthiness: NULL is false-y; numbers by non-zero; text false.
    #[must_use]
    pub fn is_truthy(&self) -> bool {
        match self {
            SqlValue::Null => false,
            SqlValue::Int(v) => *v != 0,
            SqlValue::Real(v) => *v != 0.0,
            SqlValue::Text(_) | SqlValue::Blob(_) => false,
        }
    }

    /// Storage-class rank for cross-type comparison:
    /// NULL < numeric < text < blob (SQLite's ordering).
    #[must_use]
    pub fn type_rank(&self) -> u8 {
        match self {
            SqlValue::Null => 0,
            SqlValue::Int(_) | SqlValue::Real(_) => 1,
            SqlValue::Text(_) => 2,
            SqlValue::Blob(_) => 3,
        }
    }

    /// Total ordering used for ORDER BY and index keys (NULLs first; numeric
    /// affinity across Int/Real; NaN sorts below all numbers).
    #[must_use]
    pub fn total_cmp(&self, other: &SqlValue) -> Ordering {
        use SqlValue::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.total_cmp(b),
            (Int(a), Real(b)) => (*a as f64).total_cmp(b),
            (Real(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// SQL equality for WHERE (`=`): NULL = anything → not equal here; the
    /// executor handles three-valued logic separately.
    #[must_use]
    pub fn sql_eq(&self, other: &SqlValue) -> bool {
        !matches!(self, SqlValue::Null)
            && !matches!(other, SqlValue::Null)
            && self.total_cmp(other) == Ordering::Equal
    }

    /// Numeric view (for arithmetic); NULL propagates as None.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SqlValue::Int(v) => Some(*v as f64),
            SqlValue::Real(v) => Some(*v),
            SqlValue::Text(t) => t.trim().parse().ok(),
            _ => None,
        }
    }

    /// Integer view.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SqlValue::Int(v) => Some(*v),
            SqlValue::Real(v) => Some(*v as i64),
            SqlValue::Text(t) => t.trim().parse().ok(),
            _ => None,
        }
    }

    /// Render like SQLite's text conversion.
    #[must_use]
    pub fn to_display(&self) -> String {
        match self {
            SqlValue::Null => String::new(),
            SqlValue::Int(v) => v.to_string(),
            SqlValue::Real(v) => format!("{v}"),
            SqlValue::Text(t) => t.clone(),
            SqlValue::Blob(b) => format!("x'{}'", b.iter().map(|x| format!("{x:02x}")).collect::<String>()),
        }
    }
}

impl From<i64> for SqlValue {
    fn from(v: i64) -> Self {
        SqlValue::Int(v)
    }
}
impl From<f64> for SqlValue {
    fn from(v: f64) -> Self {
        SqlValue::Real(v)
    }
}
impl From<&str> for SqlValue {
    fn from(v: &str) -> Self {
        SqlValue::Text(v.to_string())
    }
}
impl From<Vec<u8>> for SqlValue {
    fn from(v: Vec<u8>) -> Self {
        SqlValue::Blob(v)
    }
}

/// A result row.
pub type Row = Vec<SqlValue>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_across_types() {
        let vals = [
            SqlValue::Null,
            SqlValue::Int(-5),
            SqlValue::Real(2.5),
            SqlValue::Int(3),
            SqlValue::Text("a".into()),
            SqlValue::Blob(vec![0]),
        ];
        for w in vals.windows(2) {
            assert_ne!(w[0].total_cmp(&w[1]), Ordering::Greater, "{w:?}");
        }
    }

    #[test]
    fn numeric_affinity() {
        assert_eq!(SqlValue::Int(2).total_cmp(&SqlValue::Real(2.0)), Ordering::Equal);
        assert_eq!(SqlValue::Real(1.5).total_cmp(&SqlValue::Int(2)), Ordering::Less);
    }

    #[test]
    fn null_never_sql_equal() {
        assert!(!SqlValue::Null.sql_eq(&SqlValue::Null));
        assert!(!SqlValue::Null.sql_eq(&SqlValue::Int(0)));
        assert!(SqlValue::Int(1).sql_eq(&SqlValue::Int(1)));
    }

    #[test]
    fn truthiness() {
        assert!(SqlValue::Int(1).is_truthy());
        assert!(!SqlValue::Int(0).is_truthy());
        assert!(!SqlValue::Null.is_truthy());
        assert!(!SqlValue::Text("x".into()).is_truthy());
    }
}
