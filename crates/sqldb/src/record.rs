//! Row serialisation: SQLite-style serial types with varint framing.
//!
//! A record is `[header_len varint][serial_type varint ...][body bytes]`.
//! Serial types: 0 = NULL, 1 = 8-byte big-endian int, 7 = 8-byte float,
//! `2n+12` = blob of n bytes, `2n+13` = text of n bytes.

use crate::value::SqlValue;
use crate::{DbError, DbResult};

/// Append a varint (SQLite's 1–9 byte big-endian-ish encoding is replaced
/// by standard LEB128 for simplicity; the framing property is identical).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Read a varint; returns (value, bytes consumed).
pub fn read_varint(data: &[u8]) -> DbResult<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0;
    for (i, &b) in data.iter().enumerate() {
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
        if shift >= 64 {
            break;
        }
    }
    Err(DbError::Storage("truncated varint".into()))
}

/// Serialise a row of values.
#[must_use]
pub fn encode_record(values: &[SqlValue]) -> Vec<u8> {
    let mut types = Vec::with_capacity(values.len() * 2);
    let mut body = Vec::new();
    for v in values {
        match v {
            SqlValue::Null => write_varint(&mut types, 0),
            SqlValue::Int(x) => {
                write_varint(&mut types, 1);
                body.extend_from_slice(&x.to_be_bytes());
            }
            SqlValue::Real(x) => {
                write_varint(&mut types, 7);
                body.extend_from_slice(&x.to_be_bytes());
            }
            SqlValue::Blob(b) => {
                write_varint(&mut types, 12 + 2 * b.len() as u64);
                body.extend_from_slice(b);
            }
            SqlValue::Text(t) => {
                write_varint(&mut types, 13 + 2 * t.len() as u64);
                body.extend_from_slice(t.as_bytes());
            }
        }
    }
    let mut out = Vec::with_capacity(types.len() + body.len() + 4);
    write_varint(&mut out, types.len() as u64);
    out.extend_from_slice(&types);
    out.extend_from_slice(&body);
    out
}

/// Deserialise a record.
pub fn decode_record(data: &[u8]) -> DbResult<Vec<SqlValue>> {
    let (types_len, mut pos) = read_varint(data)?;
    let types_end = pos + types_len as usize;
    if types_end > data.len() {
        return Err(DbError::Storage("record header overruns".into()));
    }
    let mut serials = Vec::new();
    while pos < types_end {
        let (t, n) = read_varint(&data[pos..])?;
        serials.push(t);
        pos += n;
    }
    let mut body = types_end;
    let mut out = Vec::with_capacity(serials.len());
    for t in serials {
        let v = match t {
            0 => SqlValue::Null,
            1 => {
                let end = body + 8;
                if end > data.len() {
                    return Err(DbError::Storage("record int overruns".into()));
                }
                let x = i64::from_be_bytes(data[body..end].try_into().expect("8"));
                body = end;
                SqlValue::Int(x)
            }
            7 => {
                let end = body + 8;
                if end > data.len() {
                    return Err(DbError::Storage("record real overruns".into()));
                }
                let x = f64::from_be_bytes(data[body..end].try_into().expect("8"));
                body = end;
                SqlValue::Real(x)
            }
            t if t >= 12 && t % 2 == 0 => {
                let len = ((t - 12) / 2) as usize;
                let end = body + len;
                if end > data.len() {
                    return Err(DbError::Storage("record blob overruns".into()));
                }
                let b = data[body..end].to_vec();
                body = end;
                SqlValue::Blob(b)
            }
            t if t >= 13 => {
                let len = ((t - 13) / 2) as usize;
                let end = body + len;
                if end > data.len() {
                    return Err(DbError::Storage("record text overruns".into()));
                }
                let s = String::from_utf8(data[body..end].to_vec())
                    .map_err(|_| DbError::Storage("record text not UTF-8".into()))?;
                body = end;
                SqlValue::Text(s)
            }
            other => return Err(DbError::Storage(format!("bad serial type {other}"))),
        };
        out.push(v);
    }
    Ok(out)
}

/// Encode an index key: the indexed values followed by the rowid, in a
/// byte encoding whose lexicographic order equals value order.
#[must_use]
pub fn encode_index_key(values: &[SqlValue], rowid: i64) -> Vec<u8> {
    let mut out = Vec::new();
    for v in values {
        match v {
            SqlValue::Null => out.push(0x00),
            SqlValue::Int(x) => {
                out.push(0x01);
                // Order-preserving: flip the sign bit.
                out.extend_from_slice(&(*x as u64 ^ (1 << 63)).to_be_bytes());
            }
            SqlValue::Real(x) => {
                out.push(0x01); // numeric class shares a tag for affinity
                let bits = x.to_bits();
                let ordered = if *x >= 0.0 {
                    bits ^ (1 << 63)
                } else {
                    !bits
                };
                // Compare against integers by mapping ints to the same
                // space: we instead store both as f64-ordered when mixed.
                // For index purposes ints are stored exactly; the planner
                // only uses indexes for same-class comparisons.
                out.extend_from_slice(&ordered.to_be_bytes());
            }
            SqlValue::Text(t) => {
                out.push(0x02);
                out.extend_from_slice(t.as_bytes());
                out.push(0x00); // terminator (text never contains NUL here)
            }
            SqlValue::Blob(b) => {
                out.push(0x03);
                write_varint(&mut out, b.len() as u64);
                out.extend_from_slice(b);
            }
        }
    }
    out.push(0xFF); // rowid separator keeps prefix-order
    out.extend_from_slice(&(rowid as u64 ^ (1 << 63)).to_be_bytes());
    out
}

/// Extract the rowid back out of an index key.
pub fn index_key_rowid(key: &[u8]) -> DbResult<i64> {
    if key.len() < 9 {
        return Err(DbError::Storage("index key too short".into()));
    }
    let raw = u64::from_be_bytes(key[key.len() - 8..].try_into().expect("8"));
    Ok((raw ^ (1 << 63)) as i64)
}

/// The value-prefix part of an index key (everything before the rowid).
#[must_use]
pub fn index_key_prefix(key: &[u8]) -> &[u8] {
    &key[..key.len().saturating_sub(9)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(vals: Vec<SqlValue>) {
        let enc = encode_record(&vals);
        let dec = decode_record(&enc).unwrap();
        assert_eq!(dec.len(), vals.len());
        for (a, b) in vals.iter().zip(dec.iter()) {
            match (a, b) {
                (SqlValue::Real(x), SqlValue::Real(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn record_roundtrips() {
        roundtrip(vec![]);
        roundtrip(vec![SqlValue::Null]);
        roundtrip(vec![
            SqlValue::Int(0),
            SqlValue::Int(i64::MIN),
            SqlValue::Int(i64::MAX),
            SqlValue::Real(-1.5e300),
            SqlValue::Text(String::new()),
            SqlValue::Text("héllo".into()),
            SqlValue::Blob(vec![0, 1, 2, 255]),
            SqlValue::Null,
        ]);
        roundtrip(vec![SqlValue::Blob(vec![7u8; 5000])]);
    }

    #[test]
    fn corrupt_record_rejected() {
        let enc = encode_record(&[SqlValue::Int(5), SqlValue::Text("abc".into())]);
        for cut in 1..enc.len() {
            // Truncations must error, never panic.
            let _ = decode_record(&enc[..cut]);
        }
        assert!(decode_record(&[0x05]).is_err());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, n) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn index_key_order_matches_value_order_ints() {
        let mut keys: Vec<(i64, Vec<u8>)> = [-100i64, -1, 0, 1, 99, 1_000_000]
            .iter()
            .map(|&v| (v, encode_index_key(&[SqlValue::Int(v)], 1)))
            .collect();
        let sorted_by_key = {
            let mut k = keys.clone();
            k.sort_by(|a, b| a.1.cmp(&b.1));
            k
        };
        keys.sort_by_key(|(v, _)| *v);
        assert_eq!(keys, sorted_by_key);
    }

    #[test]
    fn index_key_order_matches_value_order_text() {
        let words = ["", "a", "ab", "b", "ba"];
        let keys: Vec<Vec<u8>> = words
            .iter()
            .map(|w| encode_index_key(&[SqlValue::Text((*w).into())], 1))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn rowid_recoverable() {
        for rowid in [i64::MIN, -1, 0, 1, i64::MAX] {
            let k = encode_index_key(&[SqlValue::Text("x".into())], rowid);
            assert_eq!(index_key_rowid(&k).unwrap(), rowid);
        }
    }

    #[test]
    fn same_value_different_rowid_ordered() {
        let k1 = encode_index_key(&[SqlValue::Int(5)], 10);
        let k2 = encode_index_key(&[SqlValue::Int(5)], 20);
        assert!(k1 < k2);
        assert_eq!(index_key_prefix(&k1), index_key_prefix(&k2));
    }
}
