//! SQL tokenizer, AST and recursive-descent parser.
//!
//! Covers the statement shapes exercised by the paper's evaluation
//! workloads (Speedtest1 and the §V-D micro-benchmarks).

use crate::value::SqlValue;
use crate::{DbError, DbResult};

// ---------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Keyword(String),
    Int(i64),
    Real(f64),
    Str(String),
    Blob(Vec<u8>),
    Punct(&'static str),
    Eof,
}

const KEYWORDS: &[&str] = &[
    "select", "from", "where", "insert", "into", "values", "update", "set", "delete", "create",
    "table", "index", "unique", "drop", "begin", "commit", "rollback", "and", "or", "not", "null",
    "like", "between", "in", "is", "order", "by", "group", "asc", "desc", "limit", "offset",
    "distinct", "join", "inner", "on", "as", "primary", "key", "integer", "int", "text", "real",
    "blob", "numeric", "if", "exists", "analyze", "pragma", "transaction", "varchar", "double",
    "float", "bigint", "char", "default", "case", "when", "then", "else", "end",
];

fn lex(sql: &str) -> DbResult<Vec<Tok>> {
    let b = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(DbError::Parse("unterminated string".into()));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(b[i] as char);
                    i += 1;
                }
                out.push(Tok::Str(s));
            }
            b'"' => {
                let mut s = String::new();
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    s.push(b[i] as char);
                    i += 1;
                }
                if i >= b.len() {
                    return Err(DbError::Parse("unterminated quoted identifier".into()));
                }
                i += 1;
                out.push(Tok::Ident(s));
            }
            b'x' | b'X' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                // Blob literal x'AB01'.
                i += 2;
                let start = i;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(DbError::Parse("unterminated blob literal".into()));
                }
                let hexs = &sql[start..i];
                i += 1;
                if !hexs.len().is_multiple_of(2) {
                    return Err(DbError::Parse("odd-length blob literal".into()));
                }
                let bytes = (0..hexs.len())
                    .step_by(2)
                    .map(|k| u8::from_str_radix(&hexs[k..k + 2], 16))
                    .collect::<Result<Vec<u8>, _>>()
                    .map_err(|_| DbError::Parse("bad blob literal".into()))?;
                out.push(Tok::Blob(bytes));
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_real = false;
                while i < b.len() {
                    match b[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !is_real => {
                            is_real = true;
                            i += 1;
                        }
                        b'e' | b'E' if i > start => {
                            is_real = true;
                            i += 1;
                            if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &sql[start..i];
                if is_real {
                    out.push(Tok::Real(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad number {text:?}"))
                    })?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad number {text:?}"))
                    })?));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &sql[start..i];
                let lower = word.to_ascii_lowercase();
                if KEYWORDS.contains(&lower.as_str()) {
                    out.push(Tok::Keyword(lower));
                } else {
                    out.push(Tok::Ident(word.to_string()));
                }
            }
            _ => {
                let rest = &sql[i..];
                const P2: [&str; 5] = ["<=", ">=", "<>", "!=", "||"];
                const P1: [&str; 13] =
                    ["(", ")", ",", ";", "=", "<", ">", "+", "-", "*", "/", "%", "."];
                if let Some(p) = P2.iter().find(|p| rest.starts_with(**p)) {
                    out.push(Tok::Punct(p));
                    i += 2;
                } else if let Some(p) = P1.iter().find(|p| rest.starts_with(**p)) {
                    out.push(Tok::Punct(p));
                    i += 1;
                } else {
                    return Err(DbError::Parse(format!(
                        "unexpected character {:?}",
                        rest.chars().next().unwrap()
                    )));
                }
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

/// Column type affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affinity {
    /// INTEGER affinity.
    Integer,
    /// REAL affinity.
    Real,
    /// TEXT affinity.
    Text,
    /// BLOB / none.
    Blob,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Name.
    pub name: String,
    /// Affinity from the declared type.
    pub affinity: Affinity,
    /// Declared `PRIMARY KEY` on an INTEGER column (rowid alias).
    pub primary_key: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(SqlValue),
    /// Column reference, optionally qualified.
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name (or `rowid`).
        name: String,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `expr LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%`/`_`.
        pattern: Box<Expr>,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// `expr IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidates.
        list: Vec<Expr>,
        /// NOT IN.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL.
        negated: bool,
    },
    /// Function call (scalar or aggregate).
    Func {
        /// Lowercase function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `count(*)`.
        star: bool,
    },
    /// `CASE WHEN cond THEN val ... [ELSE e] END`.
    Case {
        /// (condition, result) arms.
        arms: Vec<(Expr, Expr)>,
        /// ELSE result.
        otherwise: Option<Box<Expr>>,
    },
}

/// One selected column.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectCol {
    /// `*`
    Star,
    /// Expression with optional alias.
    Expr(Expr, Option<String>),
}

/// FROM item: table with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct FromTable {
    /// Table name.
    pub name: String,
    /// Alias.
    pub alias: Option<String>,
    /// ON condition joining to earlier tables (None for the first table).
    pub on: Option<Expr>,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Projection.
    pub columns: Vec<SelectCol>,
    /// FROM tables (left-deep joins).
    pub from: Vec<FromTable>,
    /// WHERE filter.
    pub where_: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY (expr, descending).
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT.
    pub limit: Option<Expr>,
    /// OFFSET.
    pub offset: Option<Expr>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<ColumnDef>,
        /// IF NOT EXISTS.
        if_not_exists: bool,
    },
    /// CREATE \[UNIQUE\] INDEX.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column names.
        columns: Vec<String>,
        /// UNIQUE.
        unique: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Name.
        name: String,
    },
    /// DROP INDEX.
    DropIndex {
        /// Name.
        name: String,
    },
    /// INSERT.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list.
        columns: Option<Vec<String>>,
        /// VALUES rows.
        rows: Vec<Vec<Expr>>,
    },
    /// SELECT.
    Select(SelectStmt),
    /// UPDATE.
    Update {
        /// Target table.
        table: String,
        /// SET assignments.
        sets: Vec<(String, Expr)>,
        /// WHERE filter.
        where_: Option<Expr>,
    },
    /// DELETE.
    Delete {
        /// Target table.
        table: String,
        /// WHERE filter.
        where_: Option<Expr>,
    },
    /// BEGIN \[TRANSACTION\].
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
    /// ANALYZE (statistics gathering, Speedtest1 test 990).
    Analyze,
    /// PRAGMA name [= value] (accepted, applied where meaningful).
    Pragma {
        /// Pragma name.
        name: String,
        /// Optional value.
        value: Option<String>,
    },
}

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> DbResult<Stmt> {
    let toks = lex(sql)?;
    let mut p = P { toks, pos: 0 };
    let stmt = p.stmt()?;
    p.eat_punct(";");
    if !matches!(p.peek(), Tok::Eof) {
        return Err(DbError::Parse(format!(
            "trailing input after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {kw:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> DbResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {p:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Identifier (non-reserved keywords also accepted as names).
    fn ident(&mut self) -> DbResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            Tok::Keyword(k) => Ok(k),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn stmt(&mut self) -> DbResult<Stmt> {
        if self.eat_kw("create") {
            let unique = self.eat_kw("unique");
            if self.eat_kw("table") {
                if unique {
                    return Err(DbError::Parse("UNIQUE TABLE is not a thing".into()));
                }
                return self.create_table();
            }
            if self.eat_kw("index") {
                return self.create_index(unique);
            }
            return Err(DbError::Parse("expected TABLE or INDEX after CREATE".into()));
        }
        if self.eat_kw("drop") {
            if self.eat_kw("table") {
                return Ok(Stmt::DropTable { name: self.ident()? });
            }
            if self.eat_kw("index") {
                return Ok(Stmt::DropIndex { name: self.ident()? });
            }
            return Err(DbError::Parse("expected TABLE or INDEX after DROP".into()));
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("select") {
            return Ok(Stmt::Select(self.select()?));
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let where_ = self.opt_where()?;
            return Ok(Stmt::Delete { table, where_ });
        }
        if self.eat_kw("begin") {
            self.eat_kw("transaction");
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("commit") {
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("rollback") {
            return Ok(Stmt::Rollback);
        }
        if self.eat_kw("analyze") {
            return Ok(Stmt::Analyze);
        }
        if self.eat_kw("pragma") {
            let name = self.ident()?;
            let value = if self.eat_punct("=") {
                Some(match self.bump() {
                    Tok::Ident(s) | Tok::Str(s) => s,
                    Tok::Keyword(s) => s,
                    Tok::Int(v) => v.to_string(),
                    other => return Err(DbError::Parse(format!("bad pragma value {other:?}"))),
                })
            } else {
                None
            };
            return Ok(Stmt::Pragma { name, value });
        }
        Err(DbError::Parse(format!("unexpected token {:?}", self.peek())))
    }

    fn create_table(&mut self) -> DbResult<Stmt> {
        let if_not_exists = if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let mut type_words = Vec::new();
            while let Tok::Keyword(k) = self.peek() {
                match k.as_str() {
                    "integer" | "int" | "bigint" | "text" | "real" | "double" | "float"
                    | "blob" | "numeric" | "varchar" | "char" => {
                        type_words.push(k.clone());
                        self.bump();
                        if self.eat_punct("(") {
                            while !self.eat_punct(")") {
                                self.bump();
                            }
                        }
                    }
                    _ => break,
                }
            }
            let affinity = affinity_of(&type_words);
            let mut primary_key = false;
            loop {
                if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    primary_key = true;
                } else if self.eat_kw("not") {
                    self.expect_kw("null")?; // accepted, not enforced
                } else if self.eat_kw("unique") {
                    // accepted; enforced only via explicit unique indexes
                } else if self.eat_kw("default") {
                    let _ = self.expr()?; // accepted, ignored
                } else {
                    break;
                }
            }
            columns.push(ColumnDef {
                name: col_name,
                affinity,
                primary_key,
            });
            if self.eat_punct(")") {
                break;
            }
            self.expect_punct(",")?;
        }
        Ok(Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn create_index(&mut self, unique: bool) -> DbResult<Stmt> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            self.eat_kw("asc");
            self.eat_kw("desc"); // accepted; order ignored
            if self.eat_punct(")") {
                break;
            }
            self.expect_punct(",")?;
        }
        Ok(Stmt::CreateIndex {
            name,
            table,
            columns,
            unique,
        })
    }

    fn insert(&mut self) -> DbResult<Stmt> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.eat_punct("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
            rows.push(row);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> DbResult<SelectStmt> {
        let distinct = self.eat_kw("distinct");
        let mut columns = Vec::new();
        loop {
            if self.eat_punct("*") {
                columns.push(SelectCol::Star);
            } else {
                let e = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else if let Tok::Ident(_) = self.peek() {
                    Some(self.ident()?)
                } else {
                    None
                };
                columns.push(SelectCol::Expr(e, alias));
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                let name = self.ident()?;
                let alias = match self.peek() {
                    Tok::Ident(_) => Some(self.ident()?),
                    _ => None,
                };
                from.push(FromTable {
                    name,
                    alias,
                    on: None,
                });
                if self.eat_punct(",") {
                    continue; // comma join: condition lives in WHERE
                }
                let joined = if self.eat_kw("inner") {
                    self.expect_kw("join")?;
                    true
                } else {
                    self.eat_kw("join")
                };
                if !joined {
                    break;
                }
                let name = self.ident()?;
                let alias = match self.peek() {
                    Tok::Ident(_) => Some(self.ident()?),
                    _ => None,
                };
                self.expect_kw("on")?;
                let on = self.expr()?;
                from.push(FromTable {
                    name,
                    alias,
                    on: Some(on),
                });
                if !self.eat_punct(",") {
                    // allow chained JOIN via loop continuation below
                }
                if !matches!(self.peek(), Tok::Keyword(k) if k == "join" || k == "inner") {
                    break;
                }
            }
        }
        let where_ = self.opt_where()?;
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("limit") {
            limit = Some(self.expr()?);
            if self.eat_kw("offset") {
                offset = Some(self.expr()?);
            }
        }
        Ok(SelectStmt {
            distinct,
            columns,
            from,
            where_,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn update(&mut self) -> DbResult<Stmt> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_punct("=")?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat_punct(",") {
                break;
            }
        }
        let where_ = self.opt_where()?;
        Ok(Stmt::Update {
            table,
            sets,
            where_,
        })
    }

    fn opt_where(&mut self) -> DbResult<Option<Expr>> {
        if self.eat_kw("where") {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("not") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.predicate()
    }

    /// Comparison-level: handles =, <, LIKE, BETWEEN, IN, IS NULL.
    fn predicate(&mut self) -> DbResult<Expr> {
        let lhs = self.additive()?;
        let negated = if matches!(self.peek(), Tok::Keyword(k) if k == "not") {
            let next = self.toks.get(self.pos + 1);
            if matches!(next, Some(Tok::Keyword(k)) if k == "like" || k == "between" || k == "in")
            {
                self.bump();
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_punct("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Tok::Punct("=") => Some(BinaryOp::Eq),
            Tok::Punct("<>") | Tok::Punct("!=") => Some(BinaryOp::Ne),
            Tok::Punct("<") => Some(BinaryOp::Lt),
            Tok::Punct("<=") => Some(BinaryOp::Le),
            Tok::Punct(">") => Some(BinaryOp::Gt),
            Tok::Punct(">=") => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> DbResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinaryOp::Add,
                Tok::Punct("-") => BinaryOp::Sub,
                Tok::Punct("||") => BinaryOp::Concat,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> DbResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinaryOp::Mul,
                Tok::Punct("/") => BinaryOp::Div,
                Tok::Punct("%") => BinaryOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        self.primary()
    }

    #[allow(clippy::too_many_lines)]
    fn primary(&mut self) -> DbResult<Expr> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Lit(SqlValue::Int(v))),
            Tok::Real(v) => Ok(Expr::Lit(SqlValue::Real(v))),
            Tok::Str(s) => Ok(Expr::Lit(SqlValue::Text(s))),
            Tok::Blob(b) => Ok(Expr::Lit(SqlValue::Blob(b))),
            Tok::Keyword(k) if k == "null" => Ok(Expr::Lit(SqlValue::Null)),
            Tok::Keyword(k) if k == "case" => {
                let mut arms = Vec::new();
                while self.eat_kw("when") {
                    let cond = self.expr()?;
                    self.expect_kw("then")?;
                    let val = self.expr()?;
                    arms.push((cond, val));
                }
                let otherwise = if self.eat_kw("else") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_kw("end")?;
                Ok(Expr::Case { arms, otherwise })
            }
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    if self.eat_punct("*") {
                        self.expect_punct(")")?;
                        return Ok(Expr::Func {
                            name: name.to_ascii_lowercase(),
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr::Func {
                        name: name.to_ascii_lowercase(),
                        args,
                        star: false,
                    });
                }
                if self.eat_punct(".") {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(DbError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

fn affinity_of(type_words: &[String]) -> Affinity {
    let joined = type_words.join(" ");
    if joined.contains("int") {
        Affinity::Integer
    } else if joined.contains("char") || joined.contains("text") || joined.contains("varchar") {
        Affinity::Text
    } else if joined.contains("real") || joined.contains("double") || joined.contains("float") {
        Affinity::Real
    } else if joined.contains("blob") || joined.is_empty() {
        Affinity::Blob
    } else {
        Affinity::Real
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let s = parse(
            "CREATE TABLE t1(a INTEGER PRIMARY KEY, b INT NOT NULL, c VARCHAR(100), d DOUBLE)",
        )
        .unwrap();
        match s {
            Stmt::CreateTable { name, columns, .. } => {
                assert_eq!(name, "t1");
                assert_eq!(columns.len(), 4);
                assert!(columns[0].primary_key);
                assert_eq!(columns[0].affinity, Affinity::Integer);
                assert_eq!(columns[2].affinity, Affinity::Text);
                assert_eq!(columns[3].affinity, Affinity::Real);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_insert_multi_row() {
        let s = parse("INSERT INTO t(a,b) VALUES (1,'x'), (2,'y''z')").unwrap();
        match s {
            Stmt::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::Lit(SqlValue::Text("y'z".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_select_full() {
        let s = parse(
            "SELECT DISTINCT a, count(*) AS n FROM t WHERE b BETWEEN 1 AND 10 \
             GROUP BY a ORDER BY n DESC, a LIMIT 5 OFFSET 2",
        )
        .unwrap();
        match s {
            Stmt::Select(sel) => {
                assert!(sel.distinct);
                assert_eq!(sel.columns.len(), 2);
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by.len(), 2);
                assert!(sel.order_by[0].1);
                assert!(sel.limit.is_some());
                assert!(sel.offset.is_some());
                assert!(matches!(sel.where_, Some(Expr::Between { .. })));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_join() {
        let s =
            parse("SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.id = t2.ref WHERE t2.b > 5").unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.from.len(), 2);
                assert!(sel.from[0].on.is_none());
                assert!(sel.from[1].on.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_update_delete() {
        assert!(matches!(
            parse("UPDATE t SET a = a + 1, b = 'x' WHERE rowid = 5").unwrap(),
            Stmt::Update { .. }
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE a IN (1,2,3)").unwrap(),
            Stmt::Delete { .. }
        ));
    }

    #[test]
    fn parse_expression_precedence() {
        let s = parse("SELECT 1 + 2 * 3").unwrap();
        match s {
            Stmt::Select(sel) => match &sel.columns[0] {
                SelectCol::Expr(Expr::Binary(BinaryOp::Add, _, rhs), _) => {
                    assert!(matches!(**rhs, Expr::Binary(BinaryOp::Mul, _, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_not_like_and_is_null() {
        assert!(matches!(
            parse("SELECT * FROM t WHERE a NOT LIKE '%x%'").unwrap(),
            Stmt::Select(_)
        ));
        assert!(matches!(
            parse("SELECT * FROM t WHERE a IS NOT NULL AND b IS NULL").unwrap(),
            Stmt::Select(_)
        ));
    }

    #[test]
    fn parse_txn_and_misc() {
        assert_eq!(parse("BEGIN").unwrap(), Stmt::Begin);
        assert_eq!(parse("BEGIN TRANSACTION;").unwrap(), Stmt::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Stmt::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Stmt::Rollback);
        assert_eq!(parse("ANALYZE").unwrap(), Stmt::Analyze);
        assert!(matches!(
            parse("PRAGMA cache_size = 2048").unwrap(),
            Stmt::Pragma { .. }
        ));
    }

    #[test]
    fn parse_blob_literal() {
        let s = parse("INSERT INTO t VALUES (x'DEADBEEF')").unwrap();
        match s {
            Stmt::Insert { rows, .. } => {
                assert_eq!(
                    rows[0][0],
                    Expr::Lit(SqlValue::Blob(vec![0xDE, 0xAD, 0xBE, 0xEF]))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_case_expression() {
        assert!(matches!(
            parse("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t").unwrap(),
            Stmt::Select(_)
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELEC 1").is_err());
        assert!(parse("SELECT 'unterminated").is_err());
        assert!(parse("INSERT INTO").is_err());
        assert!(parse("SELECT 1 SELECT 2").is_err());
        assert!(parse("CREATE UNIQUE TABLE t(a)").is_err());
    }
}
