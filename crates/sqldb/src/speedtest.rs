//! A clone of SQLite's `Speedtest1` workload generator (§V-C) and the
//! §V-D micro-benchmark workloads.
//!
//! SQLite's Speedtest1 is a sequence of numbered tests, each stressing one
//! aspect of the engine. The paper runs 29 of them (Figure 4's x-axis).
//! This module reproduces the same test numbers with workloads of the same
//! *shape* (same statement mix, same access patterns); row counts scale
//! with a size parameter so laptop runs stay tractable.
//!
//! Deviations from the original (documented per test):
//! * test 210 (ALTER TABLE) is emulated by copy-into-new-table + drop,
//!   which touches every record just like the original schema change;
//! * tests that need `HAVING` use an equivalent GROUP BY + WHERE shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::db::Connection;
use crate::value::{Row, SqlValue};
use crate::{DbError, DbResult};

/// Anything that can execute SQL: a local [`Connection`], or a proxy to a
/// tenant database session living on the serving plane. [`Speedtest`] is
/// generic over this so one workload battery drives both the standalone
/// Figure 4 variants and the `--serve` axis.
pub trait SqlExecutor {
    /// Execute one statement (DDL/DML or BEGIN/COMMIT/ROLLBACK),
    /// discarding any rows.
    fn execute(&mut self, sql: &str) -> DbResult<()>;
    /// Execute and return the rows.
    fn query(&mut self, sql: &str) -> DbResult<Vec<Row>>;
    /// Names of the tables currently in the schema (integrity check).
    fn table_names(&mut self) -> DbResult<Vec<String>>;

    /// Execute and return the single scalar result.
    fn query_scalar(&mut self, sql: &str) -> DbResult<SqlValue> {
        let rows = self.query(sql)?;
        rows.first()
            .and_then(|r| r.first())
            .cloned()
            .ok_or_else(|| DbError::Schema("query returned no rows".into()))
    }
}

impl SqlExecutor for Connection {
    fn execute(&mut self, sql: &str) -> DbResult<()> {
        Connection::execute(self, sql).map(|_| ())
    }

    fn query(&mut self, sql: &str) -> DbResult<Vec<Row>> {
        Connection::query(self, sql)
    }

    fn table_names(&mut self) -> DbResult<Vec<String>> {
        Ok(self.schema().tables.keys().cloned().collect())
    }
}

/// The Speedtest1 test numbers the paper reports (Figure 4).
pub const TEST_IDS: [u32; 29] = [
    100, 110, 120, 130, 140, 142, 145, 160, 161, 170, 180, 190, 210, 230, 240, 250, 260, 270,
    280, 290, 300, 320, 400, 410, 500, 510, 520, 980, 990,
];

/// Short description of a test (mirrors speedtest1's banner lines).
#[must_use]
pub fn test_name(id: u32) -> &'static str {
    match id {
        100 => "INSERTs into unindexed table",
        110 => "INSERTs into table with INTEGER PRIMARY KEY",
        120 => "INSERTs into indexed table",
        130 => "SELECT range sums on unindexed column",
        140 => "SELECTs with LIKE pattern scan",
        142 => "SELECT with ORDER BY, non-indexed",
        145 => "SELECT with ORDER BY and LIMIT",
        160 => "point SELECTs by rowid",
        161 => "point SELECTs by rowid (misses)",
        170 => "UPDATEs over rowid range",
        180 => "UPDATEs on unindexed column scan",
        190 => "DELETE and re-INSERT",
        210 => "schema change touching every record",
        230 => "UPDATEs with index maintenance",
        240 => "SELECTs with IN list",
        250 => "UPDATE of every record",
        260 => "wide-range SUM",
        270 => "join by rowid",
        280 => "join through index",
        290 => "GROUP BY aggregation",
        300 => "SELECT with compound WHERE",
        320 => "GROUP BY over join",
        400 => "full-table sequential scan",
        410 => "random point reads (cache-busting)",
        500 => "CREATE INDEX on populated table",
        510 => "random reads through the index",
        520 => "SELECT DISTINCT",
        980 => "integrity check (full-scan verification)",
        990 => "ANALYZE",
        _ => "unknown",
    }
}

/// Speedtest driver: owns the connection-independent workload state.
pub struct Speedtest {
    /// Base row count (speedtest1's --size; the paper uses the default).
    pub size: u32,
    rng: StdRng,
}

impl Speedtest {
    /// Create a driver; `size` scales all row counts.
    #[must_use]
    pub fn new(size: u32, seed: u64) -> Self {
        Self {
            size: size.max(10),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn n(&self, scale: f64) -> u32 {
        ((f64::from(self.size) * scale) as u32).max(2)
    }

    fn rand_text(&mut self, len: usize) -> String {
        const WORDS: [&str; 16] = [
            "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
            "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
        ];
        let mut s = String::new();
        while s.len() < len {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
        }
        s.truncate(len);
        s
    }

    /// Run one numbered test against `db`. Tests must run in ascending
    /// order (later tests use tables created by earlier ones).
    #[allow(clippy::too_many_lines)]
    pub fn run_test<E: SqlExecutor + ?Sized>(&mut self, db: &mut E, id: u32) -> DbResult<()> {
        match id {
            100 => {
                let n = self.n(1.0);
                db.execute("CREATE TABLE t1(a INTEGER, b INTEGER, c TEXT)")?;
                db.execute("BEGIN")?;
                for i in 0..n {
                    let b: u32 = self.rng.gen_range(0..1_000_000);
                    let c = self.rand_text(40);
                    db.execute(&format!("INSERT INTO t1 VALUES({i}, {b}, '{c}')"))?;
                }
                db.execute("COMMIT")?;
            }
            110 => {
                let n = self.n(1.0);
                db.execute("CREATE TABLE t2(a INTEGER PRIMARY KEY, b INTEGER, c TEXT)")?;
                db.execute("BEGIN")?;
                for i in 0..n {
                    let b: u32 = self.rng.gen_range(0..1_000_000);
                    let c = self.rand_text(40);
                    db.execute(&format!("INSERT INTO t2 VALUES({i}, {b}, '{c}')"))?;
                }
                db.execute("COMMIT")?;
            }
            120 => {
                let n = self.n(1.0);
                db.execute("CREATE TABLE t3(a INTEGER PRIMARY KEY, b INTEGER, c TEXT)")?;
                db.execute("CREATE INDEX t3b ON t3(b)")?;
                db.execute("BEGIN")?;
                for i in 0..n {
                    let b: u32 = self.rng.gen_range(0..1_000_000);
                    let c = self.rand_text(40);
                    db.execute(&format!("INSERT INTO t3 VALUES({i}, {b}, '{c}')"))?;
                }
                db.execute("COMMIT")?;
            }
            130 => {
                for _ in 0..10 {
                    let lo: u32 = self.rng.gen_range(0..900_000);
                    db.query(&format!(
                        "SELECT count(*), avg(b) FROM t1 WHERE b BETWEEN {lo} AND {}",
                        lo + 100_000
                    ))?;
                }
            }
            140 => {
                for pat in ["%alpha%", "%kilo%", "%zulu%"] {
                    db.query(&format!(
                        "SELECT count(*) FROM t1 WHERE c LIKE '{pat}'"
                    ))?;
                }
            }
            142 => {
                db.query("SELECT a, b FROM t1 ORDER BY b LIMIT 100")?;
                db.query("SELECT b, c FROM t1 ORDER BY c LIMIT 100")?;
            }
            145 => {
                db.query("SELECT a FROM t1 ORDER BY b DESC LIMIT 10")?;
            }
            160 => {
                let n = self.n(0.5);
                let max = self.n(1.0);
                for _ in 0..n {
                    let k = self.rng.gen_range(0..max);
                    db.query(&format!("SELECT c FROM t2 WHERE a = {k}"))?;
                }
            }
            161 => {
                let n = self.n(0.25);
                let max = self.n(1.0);
                for _ in 0..n {
                    let k = max + self.rng.gen_range(0..max);
                    db.query(&format!("SELECT c FROM t2 WHERE a = {k}"))?;
                }
            }
            170 => {
                let max = self.n(1.0);
                db.execute("BEGIN")?;
                for _ in 0..10 {
                    let lo = self.rng.gen_range(0..max / 2);
                    db.execute(&format!(
                        "UPDATE t2 SET b = b + 1 WHERE a BETWEEN {lo} AND {}",
                        lo + max / 10
                    ))?;
                }
                db.execute("COMMIT")?;
            }
            180 => {
                db.execute("UPDATE t1 SET b = b + 1 WHERE b % 10 = 0")?;
            }
            190 => {
                let max = self.n(1.0);
                db.execute("BEGIN")?;
                db.execute(&format!("DELETE FROM t2 WHERE a > {}", max / 2))?;
                for i in max / 2 + 1..max {
                    let b: u32 = self.rng.gen_range(0..1_000_000);
                    db.execute(&format!("INSERT INTO t2 VALUES({i}, {b}, 'reinserted')"))?;
                }
                db.execute("COMMIT")?;
            }
            210 => {
                // ALTER TABLE emulation: rebuild t1 with an extra column.
                db.execute("BEGIN")?;
                db.execute("CREATE TABLE t1_new(a INTEGER, b INTEGER, c TEXT, d INTEGER)")?;
                let rows = db.query("SELECT a, b, c FROM t1")?;
                for r in rows {
                    let (a, b, c) = (
                        r[0].as_i64().unwrap_or(0),
                        r[1].as_i64().unwrap_or(0),
                        r[2].to_display().replace('\'', "''"),
                    );
                    db.execute(&format!("INSERT INTO t1_new VALUES({a}, {b}, '{c}', 0)"))?;
                }
                db.execute("DROP TABLE t1")?;
                // Keep the name t1 for subsequent tests.
                db.execute("CREATE TABLE t1(a INTEGER, b INTEGER, c TEXT, d INTEGER)")?;
                let rows = db.query("SELECT a, b, c, d FROM t1_new")?;
                for r in rows {
                    let (a, b, c, d) = (
                        r[0].as_i64().unwrap_or(0),
                        r[1].as_i64().unwrap_or(0),
                        r[2].to_display().replace('\'', "''"),
                        r[3].as_i64().unwrap_or(0),
                    );
                    db.execute(&format!("INSERT INTO t1 VALUES({a}, {b}, '{c}', {d})"))?;
                }
                db.execute("DROP TABLE t1_new")?;
                db.execute("COMMIT")?;
            }
            230 => {
                let max = self.n(1.0);
                db.execute("BEGIN")?;
                for _ in 0..10 {
                    let lo = self.rng.gen_range(0..max / 2);
                    db.execute(&format!(
                        "UPDATE t3 SET b = b + 100 WHERE a BETWEEN {lo} AND {}",
                        lo + max / 20
                    ))?;
                }
                db.execute("COMMIT")?;
            }
            240 => {
                let max = self.n(1.0);
                for _ in 0..5 {
                    let ks: Vec<String> = (0..10)
                        .map(|_| self.rng.gen_range(0..max).to_string())
                        .collect();
                    db.query(&format!(
                        "SELECT count(*) FROM t2 WHERE a IN ({})",
                        ks.join(",")
                    ))?;
                }
            }
            250 => {
                db.execute("UPDATE t2 SET b = b + 1")?;
            }
            260 => {
                db.query("SELECT sum(b) FROM t2 WHERE a BETWEEN 0 AND 1000000000")?;
            }
            270 => {
                db.query(
                    "SELECT t2.c FROM t2 JOIN t3 ON t2.a = t3.a WHERE t2.b < 100000 LIMIT 100",
                )?;
            }
            280 => {
                db.query(
                    "SELECT count(*) FROM t2 JOIN t3 ON t2.b = t3.b WHERE t2.a < 100",
                )?;
            }
            290 => {
                db.query("SELECT b % 100, count(*), avg(a) FROM t2 GROUP BY b % 100")?;
            }
            300 => {
                db.query(
                    "SELECT count(*) FROM t1 WHERE b > 100 AND b < 500000 AND c LIKE 'a%'",
                )?;
            }
            320 => {
                db.query(
                    "SELECT t3.b % 10, count(*) FROM t2 JOIN t3 ON t2.a = t3.a \
                     GROUP BY t3.b % 10 ORDER BY 1",
                )?;
            }
            400 => {
                db.query("SELECT sum(b), sum(length(c)) FROM t2")?;
            }
            410 => {
                let n = self.n(0.5);
                let max = self.n(1.0);
                for _ in 0..n {
                    let k = self.rng.gen_range(0..max);
                    db.query(&format!("SELECT b, c FROM t2 WHERE a = {k}"))?;
                }
            }
            500 => {
                db.execute("CREATE INDEX t2b ON t2(b)")?;
            }
            510 => {
                let n = self.n(0.25);
                for _ in 0..n {
                    let b = self.rng.gen_range(0..1_000_000);
                    db.query(&format!("SELECT count(*) FROM t2 WHERE b = {b}"))?;
                }
            }
            520 => {
                db.query("SELECT DISTINCT b % 1000 FROM t2")?;
            }
            980 => {
                integrity_check(db)?;
            }
            990 => {
                db.execute("ANALYZE")?;
            }
            other => {
                return Err(DbError::Unsupported(format!("unknown speedtest {other}")));
            }
        }
        Ok(())
    }
}

/// Full-scan verification of every table (PRAGMA integrity_check analogue).
pub fn integrity_check<E: SqlExecutor + ?Sized>(db: &mut E) -> DbResult<u64> {
    let tables: Vec<String> = db.table_names()?;
    let mut total = 0u64;
    for t in tables {
        let n = db.query_scalar(&format!("SELECT count(*) FROM {t}"))?;
        if let SqlValue::Int(n) = n {
            total += n as u64;
        }
    }
    Ok(total)
}

// ---------------------------------------------------------------------
// §V-D micro-benchmark workloads
// ---------------------------------------------------------------------

/// Create the micro-benchmark table: auto-increment key + 1 KiB blob
/// (exactly the §V-D schema).
pub fn micro_setup(db: &mut Connection) -> DbResult<()> {
    db.execute("CREATE TABLE kv(a INTEGER PRIMARY KEY, b BLOB)")?;
    Ok(())
}

/// Insert `count` records of `blob_len` pseudo-random bytes (PRNG, like
/// Speedtest1), in one transaction.
pub fn micro_insert(db: &mut Connection, count: u32, blob_len: u32) -> DbResult<()> {
    db.execute("BEGIN")?;
    for _ in 0..count {
        db.execute(&format!(
            "INSERT INTO kv(b) VALUES (randomblob({blob_len}))"
        ))?;
    }
    db.execute("COMMIT")?;
    Ok(())
}

/// Read every record in rowid order (WHERE clause over the full range).
pub fn micro_sequential_read(db: &mut Connection) -> DbResult<u64> {
    let r = db.query_scalar("SELECT sum(length(b)) FROM kv WHERE a >= 0")?;
    Ok(r.as_i64().unwrap_or(0) as u64)
}

/// Read `count` random records by primary key.
pub fn micro_random_read(db: &mut Connection, count: u32, rng: &mut StdRng) -> DbResult<u64> {
    let max = db
        .query_scalar("SELECT max(a) FROM kv")?
        .as_i64()
        .unwrap_or(0);
    let mut bytes = 0u64;
    for _ in 0..count {
        let k = rng.gen_range(1..=max.max(1));
        let rows = db.query(&format!("SELECT length(b) FROM kv WHERE a = {k}"))?;
        if let Some(row) = rows.first() {
            bytes += row[0].as_i64().unwrap_or(0) as u64;
        }
    }
    Ok(bytes)
}
