//! Statement execution: access-path planning, scans, joins, aggregation,
//! and DML with index maintenance.

use std::collections::HashMap;

use crate::btree::{self, Cursor};
use crate::expr::{eval, is_aggregate, ColumnResolver, NoRows};
use crate::pager::Pager;
use crate::record::{
    decode_record, encode_index_key, encode_record, index_key_prefix, index_key_rowid,
};
use crate::schema::{self, Column, Index, Schema, Table};
use crate::sql::{Affinity, BinaryOp, ColumnDef, Expr, FromTable, SelectCol, SelectStmt, Stmt};
use crate::value::{Row, SqlValue};
use crate::{DbError, DbResult};

/// Result of a statement.
#[derive(Debug, Default)]
pub struct ExecResult {
    /// Column labels (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Row>,
    /// Rows affected (DML).
    pub affected: u64,
}

/// Execute one parsed statement. Transaction control (`Begin`/`Commit`/
/// `Rollback`) is handled by the connection, not here.
pub fn execute(pager: &mut Pager, schema: &mut Schema, stmt: &Stmt) -> DbResult<ExecResult> {
    match stmt {
        Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        } => create_table(pager, schema, name, columns, *if_not_exists),
        Stmt::CreateIndex {
            name,
            table,
            columns,
            unique,
        } => create_index(pager, schema, name, table, columns, *unique),
        Stmt::DropTable { name } => drop_table(pager, schema, name),
        Stmt::DropIndex { name } => drop_index(pager, schema, name),
        Stmt::Insert {
            table,
            columns,
            rows,
        } => insert(pager, schema, table, columns.as_deref(), rows),
        Stmt::Select(sel) => select(pager, schema, sel),
        Stmt::Update {
            table,
            sets,
            where_,
        } => update(pager, schema, table, sets, where_.as_ref()),
        Stmt::Delete { table, where_ } => delete(pager, schema, table, where_.as_ref()),
        Stmt::Analyze => analyze(pager, schema),
        Stmt::Pragma { .. } => Ok(ExecResult::default()),
        Stmt::Begin | Stmt::Commit | Stmt::Rollback => {
            Err(DbError::Unsupported("transaction control handled by connection".into()))
        }
    }
}

// ---------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------

fn create_table(
    pager: &mut Pager,
    schema: &mut Schema,
    name: &str,
    columns: &[ColumnDef],
    if_not_exists: bool,
) -> DbResult<ExecResult> {
    let lower = name.to_ascii_lowercase();
    if schema.tables.contains_key(&lower) {
        if if_not_exists {
            return Ok(ExecResult::default());
        }
        return Err(DbError::Schema(format!("table {name} already exists")));
    }
    let root = btree::create_table_tree(pager)?;
    let rowid_alias = columns
        .iter()
        .position(|c| c.primary_key && c.affinity == Affinity::Integer);
    let table = Table {
        name: lower.clone(),
        root,
        columns: columns
            .iter()
            .map(|c| Column {
                name: c.name.to_ascii_lowercase(),
                affinity: c.affinity,
            })
            .collect(),
        rowid_alias,
    };
    schema::persist_table(pager, &table, columns)?;
    schema.tables.insert(lower, table);
    Ok(ExecResult::default())
}

fn create_index(
    pager: &mut Pager,
    schema: &mut Schema,
    name: &str,
    table: &str,
    columns: &[String],
    unique: bool,
) -> DbResult<ExecResult> {
    let lower = name.to_ascii_lowercase();
    if schema.indexes.contains_key(&lower) {
        return Err(DbError::Schema(format!("index {name} already exists")));
    }
    let t = schema.table(table)?.clone();
    let col_ids: Vec<usize> = columns
        .iter()
        .map(|c| {
            t.column_index(c)
                .ok_or_else(|| DbError::Schema(format!("no such column: {c}")))
        })
        .collect::<DbResult<_>>()?;
    let root = btree::create_index_tree(pager)?;
    let index = Index {
        name: lower.clone(),
        table: t.name.clone(),
        columns: col_ids,
        unique,
        root,
    };
    // Populate from existing rows.
    let mut cursor = Cursor::first(pager, t.root)?;
    while cursor.valid() {
        let (rowid, rec) = cursor.table_entry(pager)?;
        let vals = materialize(&t, rowid, decode_record(&rec)?);
        let key_vals: Vec<SqlValue> = index.columns.iter().map(|&i| vals[i].clone()).collect();
        if index.unique {
            check_unique(pager, &index, &key_vals, None)?;
        }
        btree::index_insert(pager, index.root, encode_index_key(&key_vals, rowid))?;
        cursor.next(pager)?;
    }
    schema::persist_index(pager, &index)?;
    schema.indexes.insert(lower, index);
    Ok(ExecResult::default())
}

fn drop_table(pager: &mut Pager, schema: &mut Schema, name: &str) -> DbResult<ExecResult> {
    let t = schema.table(name)?.clone();
    // Drop dependent indexes first.
    let dependent: Vec<String> = schema
        .indexes_of(&t.name)
        .into_iter()
        .map(|i| i.name.clone())
        .collect();
    for idx in dependent {
        drop_index(pager, schema, &idx)?;
    }
    btree::free_tree(pager, t.root)?;
    schema::unpersist(pager, &t.name)?;
    schema.tables.remove(&t.name);
    Ok(ExecResult::default())
}

fn drop_index(pager: &mut Pager, schema: &mut Schema, name: &str) -> DbResult<ExecResult> {
    let lower = name.to_ascii_lowercase();
    let idx = schema
        .indexes
        .get(&lower)
        .ok_or_else(|| DbError::Schema(format!("no such index: {name}")))?
        .clone();
    btree::free_tree(pager, idx.root)?;
    schema::unpersist(pager, &lower)?;
    schema.indexes.remove(&lower);
    Ok(ExecResult::default())
}

// ---------------------------------------------------------------------
// Row materialisation & bindings
// ---------------------------------------------------------------------

/// Substitute the rowid for the INTEGER PRIMARY KEY alias column and pad
/// short records (columns added by older writers default to NULL).
fn materialize(table: &Table, rowid: i64, mut vals: Vec<SqlValue>) -> Vec<SqlValue> {
    vals.resize(table.columns.len(), SqlValue::Null);
    if let Some(i) = table.rowid_alias {
        vals[i] = SqlValue::Int(rowid);
    }
    vals
}

struct Binding {
    alias: String,
    table: Table,
}

/// Evaluation context: one bound row per FROM table.
struct RowCtx<'a> {
    bindings: &'a [Binding],
    /// (rowid, materialised values) per binding; None while unbound.
    rows: Vec<Option<(i64, Vec<SqlValue>)>>,
    /// Aggregate outputs (aggregation phase only), addressed as `#agg.N`.
    agg_values: Vec<SqlValue>,
}

impl ColumnResolver for RowCtx<'_> {
    fn column(&self, table: Option<&str>, name: &str) -> DbResult<SqlValue> {
        if table == Some("#agg") {
            let i: usize = name
                .parse()
                .map_err(|_| DbError::Schema("bad agg ref".into()))?;
            return Ok(self.agg_values[i].clone());
        }
        let lname = name.to_ascii_lowercase();
        for (b, row) in self.bindings.iter().zip(self.rows.iter()) {
            if let Some(t) = table {
                if !t.eq_ignore_ascii_case(&b.alias) && !t.eq_ignore_ascii_case(&b.table.name) {
                    continue;
                }
            }
            let Some((rowid, vals)) = row else { continue };
            if lname == "rowid" {
                return Ok(SqlValue::Int(*rowid));
            }
            if let Some(i) = b.table.column_index(&lname) {
                return Ok(vals[i].clone());
            }
            if table.is_some() {
                return Err(DbError::Schema(format!("no such column: {name}")));
            }
        }
        Err(DbError::Schema(format!("no such column: {name}")))
    }
}

// ---------------------------------------------------------------------
// Access-path planning
// ---------------------------------------------------------------------

enum Plan {
    FullScan,
    RowidEq(SqlValue),
    RowidRange {
        lo: Option<i64>,
        hi: Option<i64>,
    },
    IndexEq {
        index: Index,
        value: SqlValue,
    },
    IndexRange {
        index: Index,
        lo: Option<SqlValue>,
        hi: Option<SqlValue>,
    },
}

/// Split a WHERE tree into AND-ed conjuncts.
fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary(BinaryOp::And, a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other],
    }
}

/// Is `e` a reference to `col` of the table bound as `alias`?
fn is_col_ref(e: &Expr, alias: &str, table: &Table, col_name: &str) -> bool {
    match e {
        Expr::Column { table: t, name } => {
            let t_ok = match t {
                None => true,
                Some(t) => t.eq_ignore_ascii_case(alias) || t.eq_ignore_ascii_case(&table.name),
            };
            t_ok && name.eq_ignore_ascii_case(col_name)
        }
        _ => false,
    }
}

/// Does this column name denote the rowid for the table?
fn rowid_col_names(table: &Table) -> Vec<String> {
    let mut v = vec!["rowid".to_string()];
    if let Some(i) = table.rowid_alias {
        v.push(table.columns[i].name.clone());
    }
    v
}

/// Evaluate an expression that must not reference the target table (it may
/// reference already-bound outer tables via `ctx`).
fn eval_outer(e: &Expr, ctx: &RowCtx<'_>) -> Option<SqlValue> {
    eval(e, ctx).ok()
}

/// Choose an access path for `binding` given the applicable conjuncts.
fn plan_table(
    binding: &Binding,
    schema: &Schema,
    where_conjuncts: &[&Expr],
    ctx: &RowCtx<'_>,
) -> Plan {
    let table = &binding.table;
    let rowid_names = rowid_col_names(table);
    // 1. rowid equality.
    for c in where_conjuncts {
        if let Expr::Binary(BinaryOp::Eq, a, b) = c {
            for (l, r) in [(a, b), (b, a)] {
                for rn in &rowid_names {
                    if is_col_ref(l, &binding.alias, table, rn) {
                        if let Some(v) = eval_outer(r, ctx) {
                            return Plan::RowidEq(v);
                        }
                    }
                }
            }
        }
    }
    // 2. rowid range (BETWEEN or inequalities).
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for c in where_conjuncts {
        match c {
            Expr::Between {
                expr,
                lo: l,
                hi: h,
                negated: false,
            } => {
                for rn in &rowid_names {
                    if is_col_ref(expr, &binding.alias, table, rn) {
                        if let (Some(lv), Some(hv)) = (eval_outer(l, ctx), eval_outer(h, ctx)) {
                            lo = lv.as_i64().map(|v| lo.map_or(v, |x: i64| x.max(v)));
                            hi = hv.as_i64().map(|v| hi.map_or(v, |x: i64| x.min(v)));
                        }
                    }
                }
            }
            Expr::Binary(op @ (BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge), a, b) => {
                for rn in &rowid_names {
                    if is_col_ref(a, &binding.alias, table, rn) {
                        if let Some(v) = eval_outer(b, ctx).and_then(|v| v.as_i64()) {
                            match op {
                                BinaryOp::Lt => hi = Some(hi.map_or(v - 1, |x| x.min(v - 1))),
                                BinaryOp::Le => hi = Some(hi.map_or(v, |x| x.min(v))),
                                BinaryOp::Gt => lo = Some(lo.map_or(v + 1, |x| x.max(v + 1))),
                                BinaryOp::Ge => lo = Some(lo.map_or(v, |x| x.max(v))),
                                _ => {}
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if lo.is_some() || hi.is_some() {
        return Plan::RowidRange { lo, hi };
    }
    // 3. index equality / range on the first indexed column.
    for index in schema.indexes_of(&table.name) {
        let Some(&first_col) = index.columns.first() else {
            continue;
        };
        let col_name = &table.columns[first_col].name;
        for c in where_conjuncts {
            if let Expr::Binary(BinaryOp::Eq, a, b) = c {
                for (l, r) in [(a, b), (b, a)] {
                    if is_col_ref(l, &binding.alias, table, col_name) {
                        if let Some(v) = eval_outer(r, ctx) {
                            if !matches!(v, SqlValue::Real(_)) {
                                return Plan::IndexEq {
                                    index: index.clone(),
                                    value: v,
                                };
                            }
                        }
                    }
                }
            }
            if let Expr::Between {
                expr,
                lo,
                hi,
                negated: false,
            } = c
            {
                if is_col_ref(expr, &binding.alias, table, col_name) {
                    if let (Some(lv), Some(hv)) = (eval_outer(lo, ctx), eval_outer(hi, ctx)) {
                        if !matches!(lv, SqlValue::Real(_)) && !matches!(hv, SqlValue::Real(_)) {
                            return Plan::IndexRange {
                                index: index.clone(),
                                lo: Some(lv),
                                hi: Some(hv),
                            };
                        }
                    }
                }
            }
        }
    }
    Plan::FullScan
}

/// Collect the rowids selected by a plan (filters still applied later).
fn plan_rowids(pager: &mut Pager, table: &Table, plan: &Plan) -> DbResult<Vec<i64>> {
    let mut out = Vec::new();
    match plan {
        Plan::FullScan => {
            let mut c = Cursor::first(pager, table.root)?;
            while c.valid() {
                out.push(c.table_entry(pager)?.0);
                c.next(pager)?;
            }
        }
        Plan::RowidEq(v) => {
            if let Some(rowid) = v.as_i64() {
                if btree::table_get(pager, table.root, rowid)?.is_some() {
                    out.push(rowid);
                }
            }
        }
        Plan::RowidRange { lo, hi } => {
            let mut c = Cursor::seek_rowid(pager, table.root, lo.unwrap_or(i64::MIN))?;
            while c.valid() {
                let (rowid, _) = c.table_entry(pager)?;
                if let Some(h) = hi {
                    if rowid > *h {
                        break;
                    }
                }
                out.push(rowid);
                c.next(pager)?;
            }
        }
        Plan::IndexEq { index, value } => {
            let start = encode_index_key(std::slice::from_ref(value), i64::MIN);
            let end = encode_index_key(std::slice::from_ref(value), i64::MAX);
            let mut c = Cursor::seek_key(pager, index.root, &start)?;
            while c.valid() {
                let key = c.index_entry()?;
                if key > end.as_slice() {
                    break;
                }
                out.push(index_key_rowid(key)?);
                c.next(pager)?;
            }
        }
        Plan::IndexRange { index, lo, hi } => {
            let start = match lo {
                Some(v) => encode_index_key(std::slice::from_ref(v), i64::MIN),
                None => Vec::new(),
            };
            let end = hi
                .as_ref()
                .map(|v| encode_index_key(std::slice::from_ref(v), i64::MAX));
            let mut c = Cursor::seek_key(pager, index.root, &start)?;
            while c.valid() {
                let key = c.index_entry()?;
                if let Some(e) = &end {
                    // Compare only the first encoded value; multi-column
                    // keys extend beyond it but sort within the bound.
                    if index_key_prefix(key) > index_key_prefix(e)
                        || (!e.is_empty() && key > e.as_slice() && !key.starts_with(index_key_prefix(e)))
                    {
                        break;
                    }
                }
                out.push(index_key_rowid(key)?);
                c.next(pager)?;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// INSERT
// ---------------------------------------------------------------------

fn coerce(affinity: Affinity, v: SqlValue) -> SqlValue {
    match (affinity, v) {
        (Affinity::Integer, SqlValue::Real(f)) if f.fract() == 0.0 && f.abs() < 9e18 => {
            SqlValue::Int(f as i64)
        }
        (Affinity::Integer | Affinity::Real, SqlValue::Text(t)) => {
            if let Ok(i) = t.trim().parse::<i64>() {
                if affinity == Affinity::Integer {
                    SqlValue::Int(i)
                } else {
                    SqlValue::Real(i as f64)
                }
            } else if let Ok(f) = t.trim().parse::<f64>() {
                SqlValue::Real(f)
            } else {
                SqlValue::Text(t)
            }
        }
        (Affinity::Real, SqlValue::Int(i)) => SqlValue::Real(i as f64),
        (Affinity::Text, SqlValue::Int(i)) => SqlValue::Text(i.to_string()),
        (Affinity::Text, SqlValue::Real(f)) => SqlValue::Text(format!("{f}")),
        (_, v) => v,
    }
}

fn check_unique(
    pager: &mut Pager,
    index: &Index,
    key_vals: &[SqlValue],
    exclude_rowid: Option<i64>,
) -> DbResult<()> {
    // NULLs never collide (SQL semantics).
    if key_vals.iter().any(|v| matches!(v, SqlValue::Null)) {
        return Ok(());
    }
    let start = encode_index_key(key_vals, i64::MIN);
    let prefix = index_key_prefix(&start).to_vec();
    let c = Cursor::seek_key(pager, index.root, &start)?;
    if c.valid() {
        let key = c.index_entry()?;
        if index_key_prefix(key) == prefix.as_slice() {
            let existing = index_key_rowid(key)?;
            if Some(existing) != exclude_rowid {
                return Err(DbError::Constraint(format!(
                    "UNIQUE constraint failed: {}",
                    index.name
                )));
            }
        }
    }
    Ok(())
}

fn add_index_entries(
    pager: &mut Pager,
    schema: &Schema,
    table: &Table,
    rowid: i64,
    vals: &[SqlValue],
    check_uniques: bool,
) -> DbResult<()> {
    for index in schema.indexes_of(&table.name) {
        let key_vals: Vec<SqlValue> = index.columns.iter().map(|&i| vals[i].clone()).collect();
        if check_uniques && index.unique {
            check_unique(pager, index, &key_vals, None)?;
        }
        btree::index_insert(pager, index.root, encode_index_key(&key_vals, rowid))?;
    }
    Ok(())
}

fn remove_index_entries(
    pager: &mut Pager,
    schema: &Schema,
    table: &Table,
    rowid: i64,
    vals: &[SqlValue],
) -> DbResult<()> {
    for index in schema.indexes_of(&table.name) {
        let key_vals: Vec<SqlValue> = index.columns.iter().map(|&i| vals[i].clone()).collect();
        btree::index_delete(pager, index.root, &encode_index_key(&key_vals, rowid))?;
    }
    Ok(())
}

fn insert(
    pager: &mut Pager,
    schema: &mut Schema,
    table: &str,
    columns: Option<&[String]>,
    rows: &[Vec<Expr>],
) -> DbResult<ExecResult> {
    let t = schema.table(table)?.clone();
    let col_map: Vec<usize> = match columns {
        Some(cols) => cols
            .iter()
            .map(|c| {
                t.column_index(c)
                    .ok_or_else(|| DbError::Schema(format!("no such column: {c}")))
            })
            .collect::<DbResult<_>>()?,
        None => (0..t.columns.len()).collect(),
    };
    let mut affected = 0u64;
    let mut next_rowid = btree::table_max_rowid(pager, t.root)?.unwrap_or(0) + 1;
    for row in rows {
        if row.len() != col_map.len() {
            return Err(DbError::Schema(format!(
                "expected {} values, got {}",
                col_map.len(),
                row.len()
            )));
        }
        let mut vals = vec![SqlValue::Null; t.columns.len()];
        for (expr, &col) in row.iter().zip(col_map.iter()) {
            let v = eval(expr, &NoRows)?;
            vals[col] = coerce(t.columns[col].affinity, v);
        }
        // Resolve the rowid.
        let rowid = match t.rowid_alias {
            Some(i) => match &vals[i] {
                SqlValue::Null => {
                    let r = next_rowid;
                    next_rowid += 1;
                    r
                }
                SqlValue::Int(v) => {
                    let v = *v;
                    if btree::table_get(pager, t.root, v)?.is_some() {
                        return Err(DbError::Constraint(format!(
                            "UNIQUE constraint failed: {}.{}",
                            t.name, t.columns[i].name
                        )));
                    }
                    next_rowid = next_rowid.max(v + 1);
                    v
                }
                other => {
                    return Err(DbError::Schema(format!(
                        "INTEGER PRIMARY KEY must be an integer, got {other:?}"
                    )))
                }
            },
            None => {
                let r = next_rowid;
                next_rowid += 1;
                r
            }
        };
        // Store NULL in the alias slot (reconstructed on read).
        let mut stored = vals.clone();
        if let Some(i) = t.rowid_alias {
            stored[i] = SqlValue::Null;
        }
        let materialized = materialize(&t, rowid, stored.clone());
        add_index_entries(pager, schema, &t, rowid, &materialized, true)?;
        btree::table_insert(pager, t.root, rowid, &encode_record(&stored))?;
        affected += 1;
    }
    Ok(ExecResult {
        affected,
        ..Default::default()
    })
}

// ---------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------

/// Aggregate kinds.
#[derive(Debug, Clone)]
struct AggSpec {
    name: String,
    arg: Option<Expr>,
    star: bool,
}

#[derive(Debug, Clone, Default)]
struct AggState {
    count: i64,
    sum_i: i64,
    sum_f: f64,
    all_int: bool,
    min: Option<SqlValue>,
    max: Option<SqlValue>,
    seen: bool,
}

impl AggState {
    fn new() -> Self {
        Self {
            all_int: true,
            ..Default::default()
        }
    }

    fn update(&mut self, v: &SqlValue) {
        if matches!(v, SqlValue::Null) {
            return;
        }
        self.seen = true;
        self.count += 1;
        match v {
            SqlValue::Int(i) => {
                self.sum_i = self.sum_i.wrapping_add(*i);
                self.sum_f += *i as f64;
            }
            SqlValue::Real(f) => {
                self.all_int = false;
                self.sum_f += f;
            }
            _ => {}
        }
        if self.min.as_ref().is_none_or(|m| v.total_cmp(m) == std::cmp::Ordering::Less) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v.total_cmp(m) == std::cmp::Ordering::Greater) {
            self.max = Some(v.clone());
        }
    }

    fn result(&self, spec: &AggSpec) -> SqlValue {
        match spec.name.as_str() {
            "count" => SqlValue::Int(self.count),
            "sum" => {
                if !self.seen {
                    SqlValue::Null
                } else if self.all_int {
                    SqlValue::Int(self.sum_i)
                } else {
                    SqlValue::Real(self.sum_f)
                }
            }
            "total" => SqlValue::Real(self.sum_f),
            "avg" => {
                if self.count == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Real(self.sum_f / self.count as f64)
                }
            }
            "min" => self.min.clone().unwrap_or(SqlValue::Null),
            "max" => self.max.clone().unwrap_or(SqlValue::Null),
            _ => SqlValue::Null,
        }
    }
}

/// Replace aggregate calls with `#agg.N` references, collecting specs.
fn rewrite_aggs(e: &Expr, specs: &mut Vec<AggSpec>) -> Expr {
    match e {
        Expr::Func { name, args, star }
            if is_aggregate(name) && (*star || args.len() <= 1) && !(matches!(name.as_str(), "min" | "max") && args.len() >= 2) =>
        {
            specs.push(AggSpec {
                name: name.clone(),
                arg: args.first().cloned(),
                star: *star,
            });
            Expr::Column {
                table: Some("#agg".into()),
                name: (specs.len() - 1).to_string(),
            }
        }
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rewrite_aggs(a, specs)),
            Box::new(rewrite_aggs(b, specs)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(rewrite_aggs(a, specs))),
        Expr::Not(a) => Expr::Not(Box::new(rewrite_aggs(a, specs))),
        Expr::Func { name, args, star } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_aggs(a, specs)).collect(),
            star: *star,
        },
        Expr::Case { arms, otherwise } => Expr::Case {
            arms: arms
                .iter()
                .map(|(c, v)| (rewrite_aggs(c, specs), rewrite_aggs(v, specs)))
                .collect(),
            otherwise: otherwise
                .as_ref()
                .map(|o| Box::new(rewrite_aggs(o, specs))),
        },
        other => other.clone(),
    }
}

/// Expand `*` and rewrite aggregates; returns (labels, exprs, agg specs).
fn projection(
    sel: &SelectStmt,
    bindings: &[Binding],
) -> DbResult<(Vec<String>, Vec<Expr>, Vec<AggSpec>)> {
    let mut labels = Vec::new();
    let mut exprs = Vec::new();
    let mut specs = Vec::new();
    for col in &sel.columns {
        match col {
            SelectCol::Star => {
                for b in bindings {
                    for c in &b.table.columns {
                        labels.push(c.name.clone());
                        exprs.push(Expr::Column {
                            table: Some(b.alias.clone()),
                            name: c.name.clone(),
                        });
                    }
                }
            }
            SelectCol::Expr(e, alias) => {
                labels.push(alias.clone().unwrap_or_else(|| expr_label(e)));
                exprs.push(rewrite_aggs(e, &mut specs));
            }
        }
    }
    Ok((labels, exprs, specs))
}

fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Func { name, .. } => format!("{name}()"),
        _ => "expr".to_string(),
    }
}

/// Enumerate joined rows, invoking `cb` for each complete binding.
#[allow(clippy::too_many_arguments)] // recursive enumerator threads the full query state
fn join_rows(
    pager: &mut Pager,
    schema: &Schema,
    bindings: &[Binding],
    from: &[FromTable],
    where_: Option<&Expr>,
    level: usize,
    ctx: &mut RowCtx<'_>,
    cb: &mut dyn FnMut(&mut Pager, &RowCtx<'_>) -> DbResult<()>,
) -> DbResult<()> {
    if level == bindings.len() {
        // All bound: apply WHERE.
        if let Some(w) = where_ {
            if !eval(w, ctx)?.is_truthy() {
                return Ok(());
            }
        }
        return cb(pager, ctx);
    }
    let binding = &bindings[level];
    // Conditions available at this level: the table's ON plus WHERE
    // conjuncts (used for planning only; full filters re-checked later).
    let mut planning_conjuncts: Vec<&Expr> = Vec::new();
    if let Some(on) = &from[level].on {
        planning_conjuncts.extend(conjuncts(on));
    }
    if let Some(w) = where_ {
        planning_conjuncts.extend(conjuncts(w));
    }
    let plan = plan_table(binding, schema, &planning_conjuncts, ctx);
    let rowids = plan_rowids(pager, &binding.table, &plan)?;
    for rowid in rowids {
        let Some(rec) = btree::table_get(pager, binding.table.root, rowid)? else {
            continue;
        };
        let vals = materialize(&binding.table, rowid, decode_record(&rec)?);
        ctx.rows[level] = Some((rowid, vals));
        // Apply this level's ON condition as soon as it is evaluable.
        if let Some(on) = &from[level].on {
            if !eval(on, ctx)?.is_truthy() {
                ctx.rows[level] = None;
                continue;
            }
        }
        join_rows(pager, schema, bindings, from, where_, level + 1, ctx, cb)?;
        ctx.rows[level] = None;
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn select(pager: &mut Pager, schema: &mut Schema, sel: &SelectStmt) -> DbResult<ExecResult> {
    // Bindings.
    let bindings: Vec<Binding> = sel
        .from
        .iter()
        .map(|f| {
            Ok(Binding {
                alias: f
                    .alias
                    .clone()
                    .unwrap_or_else(|| f.name.to_ascii_lowercase()),
                table: schema.table(&f.name)?.clone(),
            })
        })
        .collect::<DbResult<_>>()?;
    let (labels, exprs, agg_specs) = projection(sel, &bindings)?;
    // Rewrite aggregates in ORDER BY too (e.g. ORDER BY count(*)).
    let mut order_specs = agg_specs.clone();
    let order_exprs: Vec<Expr> = sel
        .order_by
        .iter()
        .map(|(e, _)| rewrite_aggs(e, &mut order_specs))
        .collect();
    let grouped = !sel.group_by.is_empty() || !order_specs.is_empty();

    // No FROM: evaluate once.
    if bindings.is_empty() {
        let ctx = RowCtx {
            bindings: &bindings,
            rows: Vec::new(),
            agg_values: Vec::new(),
        };
        let row: Row = exprs
            .iter()
            .map(|e| eval(e, &ctx))
            .collect::<DbResult<_>>()?;
        return Ok(ExecResult {
            columns: labels,
            rows: vec![row],
            affected: 0,
        });
    }

    let mut out: Vec<(Vec<SqlValue>, Row)> = Vec::new(); // (order keys, row)

    if grouped {
        // Aggregation: group rows, accumulate, then project per group.
        type GroupEntry = (Vec<SqlValue>, Vec<AggState>, Option<(usize, Vec<Option<(i64, Vec<SqlValue>)>>)>);
        let mut groups: HashMap<Vec<u8>, GroupEntry> = HashMap::new();
        let mut group_order: Vec<Vec<u8>> = Vec::new();
        {
            let mut ctx = RowCtx {
                bindings: &bindings,
                rows: vec![None; bindings.len()],
                agg_values: Vec::new(),
            };
            let group_by = sel.group_by.clone();
            let specs = order_specs.clone();
            join_rows(
                pager,
                schema,
                &bindings,
                &sel.from,
                sel.where_.as_ref(),
                0,
                &mut ctx,
                &mut |_pager, ctx| {
                    let key_vals: Vec<SqlValue> = group_by
                        .iter()
                        .map(|e| eval(e, ctx))
                        .collect::<DbResult<_>>()?;
                    let key = encode_record(&key_vals);
                    let entry = groups.entry(key.clone()).or_insert_with(|| {
                        group_order.push(key);
                        (
                            key_vals,
                            specs.iter().map(|_| AggState::new()).collect(),
                            Some((0, ctx.rows.clone())),
                        )
                    });
                    for (spec, state) in specs.iter().zip(entry.1.iter_mut()) {
                        if spec.star {
                            state.count += 1;
                            state.seen = true;
                        } else if let Some(arg) = &spec.arg {
                            let v = eval(arg, ctx)?;
                            state.update(&v);
                        } else {
                            state.count += 1;
                            state.seen = true;
                        }
                    }
                    Ok(())
                },
            )?;
        }
        // Aggregate with no GROUP BY over an empty input: one empty group.
        if groups.is_empty() && sel.group_by.is_empty() {
            let key = encode_record(&[]);
            group_order.push(key.clone());
            groups.insert(
                key,
                (
                    Vec::new(),
                    order_specs.iter().map(|_| AggState::new()).collect(),
                    None,
                ),
            );
        }
        for key in group_order {
            let (_, states, rep) = &groups[&key];
            let agg_values: Vec<SqlValue> = order_specs
                .iter()
                .zip(states.iter())
                .map(|(spec, st)| st.result(spec))
                .collect();
            let ctx = RowCtx {
                bindings: &bindings,
                rows: rep
                    .as_ref()
                    .map_or_else(|| vec![None; bindings.len()], |(_, r)| r.clone()),
                agg_values,
            };
            let row: Row = exprs
                .iter()
                .map(|e| eval(e, &ctx))
                .collect::<DbResult<_>>()?;
            let order_keys: Vec<SqlValue> = order_exprs
                .iter()
                .map(|e| eval(e, &ctx))
                .collect::<DbResult<_>>()?;
            out.push((order_keys, row));
        }
    } else {
        let mut ctx = RowCtx {
            bindings: &bindings,
            rows: vec![None; bindings.len()],
            agg_values: Vec::new(),
        };
        let exprs_ref = &exprs;
        let order_ref = &order_exprs;
        join_rows(
            pager,
            schema,
            &bindings,
            &sel.from,
            sel.where_.as_ref(),
            0,
            &mut ctx,
            &mut |_pager, ctx| {
                let row: Row = exprs_ref
                    .iter()
                    .map(|e| eval(e, ctx))
                    .collect::<DbResult<_>>()?;
                let order_keys: Vec<SqlValue> = order_ref
                    .iter()
                    .map(|e| eval(e, ctx))
                    .collect::<DbResult<_>>()?;
                out.push((order_keys, row));
                Ok(())
            },
        )?;
    }

    // DISTINCT.
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        out.retain(|(_, row)| seen.insert(encode_record(row)));
    }
    // ORDER BY.
    if !sel.order_by.is_empty() {
        let desc: Vec<bool> = sel.order_by.iter().map(|(_, d)| *d).collect();
        out.sort_by(|a, b| {
            for (i, d) in desc.iter().enumerate() {
                let ord = a.0[i].total_cmp(&b.0[i]);
                let ord = if *d { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    // LIMIT / OFFSET.
    let offset = match &sel.offset {
        Some(e) => eval(e, &NoRows)?.as_i64().unwrap_or(0).max(0) as usize,
        None => 0,
    };
    let limit = match &sel.limit {
        Some(e) => eval(e, &NoRows)?.as_i64().unwrap_or(i64::MAX).max(0) as usize,
        None => usize::MAX,
    };
    let rows: Vec<Row> = out
        .into_iter()
        .skip(offset)
        .take(limit)
        .map(|(_, r)| r)
        .collect();
    Ok(ExecResult {
        columns: labels,
        rows,
        affected: 0,
    })
}

// ---------------------------------------------------------------------
// UPDATE / DELETE / ANALYZE
// ---------------------------------------------------------------------

fn collect_target_rowids(
    pager: &mut Pager,
    schema: &Schema,
    table: &Table,
    where_: Option<&Expr>,
) -> DbResult<Vec<i64>> {
    let binding = Binding {
        alias: table.name.clone(),
        table: table.clone(),
    };
    let empty_ctx = RowCtx {
        bindings: std::slice::from_ref(&binding),
        rows: vec![None],
        agg_values: Vec::new(),
    };
    let planning: Vec<&Expr> = where_.map(conjuncts).unwrap_or_default();
    let plan = plan_table(&binding, schema, &planning, &empty_ctx);
    let candidates = plan_rowids(pager, table, &plan)?;
    let mut out = Vec::new();
    for rowid in candidates {
        let Some(rec) = btree::table_get(pager, table.root, rowid)? else {
            continue;
        };
        let vals = materialize(table, rowid, decode_record(&rec)?);
        let ctx = RowCtx {
            bindings: std::slice::from_ref(&binding),
            rows: vec![Some((rowid, vals))],
            agg_values: Vec::new(),
        };
        let keep = match where_ {
            Some(w) => eval(w, &ctx)?.is_truthy(),
            None => true,
        };
        if keep {
            out.push(rowid);
        }
    }
    Ok(out)
}

fn update(
    pager: &mut Pager,
    schema: &mut Schema,
    table: &str,
    sets: &[(String, Expr)],
    where_: Option<&Expr>,
) -> DbResult<ExecResult> {
    let t = schema.table(table)?.clone();
    let set_cols: Vec<(usize, &Expr)> = sets
        .iter()
        .map(|(c, e)| {
            let i = t
                .column_index(c)
                .ok_or_else(|| DbError::Schema(format!("no such column: {c}")))?;
            if t.rowid_alias == Some(i) {
                return Err(DbError::Unsupported(
                    "updating the INTEGER PRIMARY KEY is not supported".into(),
                ));
            }
            Ok((i, e))
        })
        .collect::<DbResult<_>>()?;
    let rowids = collect_target_rowids(pager, schema, &t, where_)?;
    let binding = Binding {
        alias: t.name.clone(),
        table: t.clone(),
    };
    let mut affected = 0;
    for rowid in rowids {
        let Some(rec) = btree::table_get(pager, t.root, rowid)? else {
            continue;
        };
        let old_vals = materialize(&t, rowid, decode_record(&rec)?);
        let ctx = RowCtx {
            bindings: std::slice::from_ref(&binding),
            rows: vec![Some((rowid, old_vals.clone()))],
            agg_values: Vec::new(),
        };
        let mut new_vals = old_vals.clone();
        for (i, e) in &set_cols {
            new_vals[*i] = coerce(t.columns[*i].affinity, eval(e, &ctx)?);
        }
        remove_index_entries(pager, schema, &t, rowid, &old_vals)?;
        // Unique re-checks exclude our own (removed) entries.
        for index in schema.indexes_of(&t.name) {
            if index.unique {
                let key_vals: Vec<SqlValue> =
                    index.columns.iter().map(|&i| new_vals[i].clone()).collect();
                check_unique(pager, index, &key_vals, Some(rowid))?;
            }
        }
        add_index_entries(pager, schema, &t, rowid, &new_vals, false)?;
        let mut stored = new_vals;
        if let Some(i) = t.rowid_alias {
            stored[i] = SqlValue::Null;
        }
        btree::table_insert(pager, t.root, rowid, &encode_record(&stored))?;
        affected += 1;
    }
    Ok(ExecResult {
        affected,
        ..Default::default()
    })
}

fn delete(
    pager: &mut Pager,
    schema: &mut Schema,
    table: &str,
    where_: Option<&Expr>,
) -> DbResult<ExecResult> {
    let t = schema.table(table)?.clone();
    let rowids = collect_target_rowids(pager, schema, &t, where_)?;
    let mut affected = 0;
    for rowid in rowids {
        let Some(rec) = btree::table_get(pager, t.root, rowid)? else {
            continue;
        };
        let vals = materialize(&t, rowid, decode_record(&rec)?);
        remove_index_entries(pager, schema, &t, rowid, &vals)?;
        btree::table_delete(pager, t.root, rowid)?;
        affected += 1;
    }
    Ok(ExecResult {
        affected,
        ..Default::default()
    })
}

/// ANALYZE: gather row counts per table into `twine_stats` (the
/// `sqlite_stat1` analogue, Speedtest1 test 990).
fn analyze(pager: &mut Pager, schema: &mut Schema) -> DbResult<ExecResult> {
    if schema.table("twine_stats").is_err() {
        create_table(
            pager,
            schema,
            "twine_stats",
            &[
                ColumnDef {
                    name: "tbl".into(),
                    affinity: Affinity::Text,
                    primary_key: false,
                },
                ColumnDef {
                    name: "nrow".into(),
                    affinity: Affinity::Integer,
                    primary_key: false,
                },
            ],
            false,
        )?;
    }
    delete(pager, schema, "twine_stats", None)?;
    let tables: Vec<Table> = schema
        .tables
        .values()
        .filter(|t| t.name != "twine_stats")
        .cloned()
        .collect();
    let stats_root = schema.table("twine_stats")?.root;
    for (rowid, t) in (1i64..).zip(tables) {
        let mut n = 0i64;
        let mut c = Cursor::first(pager, t.root)?;
        while c.valid() {
            n += 1;
            c.next(pager)?;
        }
        let rec = encode_record(&[SqlValue::Text(t.name.clone()), SqlValue::Int(n)]);
        btree::table_insert(pager, stats_root, rowid, &rec)?;
    }
    Ok(ExecResult::default())
}
