//! End-to-end SQL engine tests through the public `Connection` API.

use twine_sqldb::{Connection, DbError, MemVfs, SqlValue};

fn mem() -> Connection {
    Connection::open_memory()
}

fn ints(rows: &[Vec<SqlValue>]) -> Vec<i64> {
    rows.iter().map(|r| r[0].as_i64().unwrap()).collect()
}

#[test]
fn create_insert_select() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')").unwrap();
    let rows = db.query("SELECT b FROM t WHERE a = 2").unwrap();
    assert_eq!(rows, vec![vec![SqlValue::Text("two".into())]]);
    let n = db.query_scalar("SELECT count(*) FROM t").unwrap();
    assert_eq!(n, SqlValue::Int(3));
}

#[test]
fn auto_rowid_assignment() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)").unwrap();
    db.execute("INSERT INTO t(b) VALUES ('x')").unwrap();
    db.execute("INSERT INTO t(b) VALUES ('y')").unwrap();
    db.execute("INSERT INTO t VALUES (10, 'z')").unwrap();
    db.execute("INSERT INTO t(b) VALUES ('w')").unwrap();
    let rows = db.query("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(ints(&rows), vec![1, 2, 10, 11]);
}

#[test]
fn primary_key_constraint() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
    let e = db.execute("INSERT INTO t VALUES (1, 'y')");
    assert!(matches!(e, Err(DbError::Constraint(_))));
    // Failed autocommit statement must not leave partial state.
    assert_eq!(db.query_scalar("SELECT count(*) FROM t").unwrap(), SqlValue::Int(1));
}

#[test]
fn unique_index_constraint() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)").unwrap();
    db.execute("CREATE UNIQUE INDEX tb ON t(b)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
    assert!(matches!(
        db.execute("INSERT INTO t VALUES (2, 'x')"),
        Err(DbError::Constraint(_))
    ));
    db.execute("INSERT INTO t VALUES (2, 'y')").unwrap();
    // NULLs do not collide.
    db.execute("INSERT INTO t(b) VALUES (NULL)").unwrap();
    db.execute("INSERT INTO t(b) VALUES (NULL)").unwrap();
}

#[test]
fn where_filters_and_expressions() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER, c TEXT)").unwrap();
    db.execute("BEGIN").unwrap();
    for i in 0..100 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {}, 'row{i}')", i * 10)).unwrap();
    }
    db.execute("COMMIT").unwrap();
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE b BETWEEN 100 AND 200").unwrap(),
        SqlValue::Int(11)
    );
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE c LIKE 'row1%'").unwrap(),
        SqlValue::Int(11) // row1, row10..row19
    );
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE a IN (1, 5, 500)").unwrap(),
        SqlValue::Int(2)
    );
    // b = a*10 > 500 → a in 51..=99; odd a's: 51, 53, …, 99 → 25 rows.
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE b > 500 AND NOT (a % 2 = 0)").unwrap(),
        SqlValue::Int(25)
    );
}

#[test]
fn order_by_limit_offset() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)").unwrap();
    for (a, b) in [(1, 30), (2, 10), (3, 20), (4, 40)] {
        db.execute(&format!("INSERT INTO t VALUES ({a}, {b})")).unwrap();
    }
    let rows = db.query("SELECT a FROM t ORDER BY b").unwrap();
    assert_eq!(ints(&rows), vec![2, 3, 1, 4]);
    let rows = db.query("SELECT a FROM t ORDER BY b DESC LIMIT 2").unwrap();
    assert_eq!(ints(&rows), vec![4, 1]);
    let rows = db.query("SELECT a FROM t ORDER BY b LIMIT 2 OFFSET 1").unwrap();
    assert_eq!(ints(&rows), vec![3, 1]);
}

#[test]
fn aggregates_and_group_by() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)").unwrap();
    db.execute("BEGIN").unwrap();
    for i in 0..30 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {}, {i})", i % 3)).unwrap();
    }
    db.execute("COMMIT").unwrap();
    assert_eq!(db.query_scalar("SELECT sum(v) FROM t").unwrap(), SqlValue::Int(435));
    assert_eq!(db.query_scalar("SELECT avg(v) FROM t").unwrap(), SqlValue::Real(14.5));
    assert_eq!(db.query_scalar("SELECT min(v) FROM t").unwrap(), SqlValue::Int(0));
    assert_eq!(db.query_scalar("SELECT max(v) FROM t").unwrap(), SqlValue::Int(29));
    let rows = db
        .query("SELECT grp, count(*), sum(v) FROM t GROUP BY grp ORDER BY grp")
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0], vec![SqlValue::Int(0), SqlValue::Int(10), SqlValue::Int(135)]);
    // Aggregate over empty input.
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE v > 1000").unwrap(),
        SqlValue::Int(0)
    );
    assert_eq!(
        db.query_scalar("SELECT sum(v) FROM t WHERE v > 1000").unwrap(),
        SqlValue::Null
    );
}

#[test]
fn distinct() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 4)).unwrap();
    }
    let rows = db.query("SELECT DISTINCT b FROM t ORDER BY b").unwrap();
    assert_eq!(ints(&rows), vec![0, 1, 2, 3]);
}

#[test]
fn joins() {
    let mut db = mem();
    db.execute("CREATE TABLE users(id INTEGER PRIMARY KEY, name TEXT)").unwrap();
    db.execute("CREATE TABLE orders(id INTEGER PRIMARY KEY, user_id INTEGER, amount INTEGER)")
        .unwrap();
    db.execute("INSERT INTO users VALUES (1,'ada'), (2,'bob'), (3,'eve')").unwrap();
    db.execute(
        "INSERT INTO orders VALUES (1,1,100), (2,1,200), (3,2,50), (4,9,999)",
    )
    .unwrap();
    let rows = db
        .query(
            "SELECT users.name, sum(orders.amount) FROM users \
             JOIN orders ON orders.user_id = users.id \
             GROUP BY users.name ORDER BY users.name",
        )
        .unwrap();
    assert_eq!(
        rows,
        vec![
            vec![SqlValue::Text("ada".into()), SqlValue::Int(300)],
            vec![SqlValue::Text("bob".into()), SqlValue::Int(50)],
        ]
    );
    // Aliases.
    let rows = db
        .query("SELECT u.name FROM users u JOIN orders o ON o.user_id = u.id WHERE o.amount > 150")
        .unwrap();
    assert_eq!(rows, vec![vec![SqlValue::Text("ada".into())]]);
}

#[test]
fn update_and_delete() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)").unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
    }
    let r = db.execute("UPDATE t SET b = b * 10 WHERE a < 5").unwrap();
    assert_eq!(r.affected, 5);
    assert_eq!(db.query_scalar("SELECT b FROM t WHERE a = 3").unwrap(), SqlValue::Int(30));
    assert_eq!(db.query_scalar("SELECT b FROM t WHERE a = 7").unwrap(), SqlValue::Int(7));
    // After the update b = {0,10,20,30,40,5,6,7,8,9}; DELETE b>=30 removes
    // the rows with b=30 and b=40.
    let r = db.execute("DELETE FROM t WHERE b >= 30").unwrap();
    assert_eq!(r.affected, 2);
    let n = db.query_scalar("SELECT count(*) FROM t").unwrap();
    assert_eq!(n, SqlValue::Int(8));
}

#[test]
fn update_maintains_indexes() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)").unwrap();
    db.execute("CREATE INDEX tb ON t(b)").unwrap();
    for i in 0..50 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 2)).unwrap();
    }
    db.execute("UPDATE t SET b = 1000 WHERE a = 25").unwrap();
    // Index-driven query must see the new value and not the old.
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE b = 1000").unwrap(),
        SqlValue::Int(1)
    );
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE b = 50").unwrap(),
        SqlValue::Int(0)
    );
}

#[test]
fn explicit_transactions_rollback() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (2, 2)").unwrap();
    db.execute("UPDATE t SET b = 99 WHERE a = 1").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert_eq!(db.query_scalar("SELECT count(*) FROM t").unwrap(), SqlValue::Int(1));
    assert_eq!(db.query_scalar("SELECT b FROM t WHERE a = 1").unwrap(), SqlValue::Int(1));
    // And commit works.
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (2, 2)").unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(db.query_scalar("SELECT count(*) FROM t").unwrap(), SqlValue::Int(2));
}

#[test]
fn ddl_rollback_restores_schema() {
    let mut db = mem();
    db.execute("BEGIN").unwrap();
    db.execute("CREATE TABLE temp_t(a INTEGER)").unwrap();
    db.execute("INSERT INTO temp_t VALUES (1)").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert!(db.execute("SELECT * FROM temp_t").is_err());
}

#[test]
fn file_backed_persistence() {
    let vfs = MemVfs::new();
    {
        let mut db = Connection::open(Box::new(vfs.clone()), "test.db").unwrap();
        db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)").unwrap();
        db.execute("BEGIN").unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'value-{i}')")).unwrap();
        }
        db.execute("COMMIT").unwrap();
        db.close().unwrap();
    }
    let mut db = Connection::open(Box::new(vfs), "test.db").unwrap();
    assert_eq!(db.query_scalar("SELECT count(*) FROM t").unwrap(), SqlValue::Int(500));
    assert_eq!(
        db.query_scalar("SELECT b FROM t WHERE a = 42").unwrap(),
        SqlValue::Text("value-42".into())
    );
}

#[test]
fn blobs_roundtrip() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b BLOB)").unwrap();
    db.execute("INSERT INTO t VALUES (1, x'0011FF')").unwrap();
    db.execute("INSERT INTO t VALUES (2, randomblob(1024))").unwrap();
    let rows = db.query("SELECT b FROM t WHERE a = 1").unwrap();
    assert_eq!(rows[0][0], SqlValue::Blob(vec![0x00, 0x11, 0xFF]));
    assert_eq!(
        db.query_scalar("SELECT length(b) FROM t WHERE a = 2").unwrap(),
        SqlValue::Int(1024)
    );
}

#[test]
fn large_blobs_overflow_pages() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b BLOB)").unwrap();
    db.execute("INSERT INTO t VALUES (1, zeroblob(50000))").unwrap();
    assert_eq!(
        db.query_scalar("SELECT length(b) FROM t").unwrap(),
        SqlValue::Int(50000)
    );
}

#[test]
fn null_semantics_in_where() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)").unwrap();
    db.execute("INSERT INTO t(b) VALUES (1), (NULL), (3)").unwrap();
    assert_eq!(db.query_scalar("SELECT count(*) FROM t WHERE b = 1").unwrap(), SqlValue::Int(1));
    // NULL never matches =.
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE b = NULL").unwrap(),
        SqlValue::Int(0)
    );
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM t WHERE b IS NULL").unwrap(),
        SqlValue::Int(1)
    );
    assert_eq!(db.query_scalar("SELECT count(b) FROM t").unwrap(), SqlValue::Int(2));
    assert_eq!(db.query_scalar("SELECT count(*) FROM t").unwrap(), SqlValue::Int(3));
}

#[test]
fn rowid_queries_without_alias() {
    let mut db = mem();
    db.execute("CREATE TABLE t(x TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('a'), ('b')").unwrap();
    let rows = db.query("SELECT rowid, x FROM t ORDER BY rowid").unwrap();
    assert_eq!(rows[0][0], SqlValue::Int(1));
    assert_eq!(rows[1][0], SqlValue::Int(2));
    assert_eq!(
        db.query_scalar("SELECT x FROM t WHERE rowid = 2").unwrap(),
        SqlValue::Text("b".into())
    );
}

#[test]
fn drop_table_and_index() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)").unwrap();
    db.execute("CREATE INDEX tb ON t(b)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 2)").unwrap();
    db.execute("DROP INDEX tb").unwrap();
    assert!(db.execute("DROP INDEX tb").is_err());
    db.execute("DROP TABLE t").unwrap();
    assert!(db.execute("SELECT * FROM t").is_err());
    // Re-creating reuses the namespace.
    db.execute("CREATE TABLE t(z TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('fresh')").unwrap();
    assert_eq!(db.query_scalar("SELECT z FROM t").unwrap(), SqlValue::Text("fresh".into()));
}

#[test]
fn analyze_runs() {
    let mut db = mem();
    db.execute("CREATE TABLE t(a INTEGER PRIMARY KEY)").unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    db.execute("ANALYZE").unwrap();
    let rows = db.query("SELECT tbl, nrow FROM twine_stats").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][1], SqlValue::Int(10));
    // Re-run refreshes.
    db.execute("INSERT INTO t VALUES (100)").unwrap();
    db.execute("ANALYZE").unwrap();
    let rows = db.query("SELECT nrow FROM twine_stats WHERE tbl = 't'").unwrap();
    assert_eq!(rows[0][0], SqlValue::Int(11));
}

#[test]
fn speedtest_suite_runs_small() {
    use twine_sqldb::speedtest::{Speedtest, TEST_IDS};
    let mut db = mem();
    let mut st = Speedtest::new(60, 42);
    for id in TEST_IDS {
        st.run_test(&mut db, id)
            .unwrap_or_else(|e| panic!("speedtest {id} failed: {e}"));
    }
}

#[test]
fn micro_workloads_run() {
    use rand::SeedableRng;
    use twine_sqldb::speedtest;
    let mut db = mem();
    speedtest::micro_setup(&mut db).unwrap();
    speedtest::micro_insert(&mut db, 100, 1024).unwrap();
    let bytes = speedtest::micro_sequential_read(&mut db).unwrap();
    assert_eq!(bytes, 100 * 1024);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let bytes = speedtest::micro_random_read(&mut db, 50, &mut rng).unwrap();
    assert_eq!(bytes, 50 * 1024);
}
