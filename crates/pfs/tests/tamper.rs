//! Tamper-evidence tests for the protected file system (paper §IV-D:
//! "content is verified for integrity by the trusted enclave during
//! reading operations").
//!
//! The untrusted side sees only an array of encrypted 4 KiB nodes. These
//! tests play the malicious host: flip ciphertext bits in every node of a
//! stored file and assert the enclave-side reader refuses — it must never
//! hand corrupted plaintext back to the guest.

use twine_pfs::{MemStorage, PfsMode, PfsOptions, SgxFile, NODE_SIZE};

const KEY: [u8; 16] = [0x42; 16];

fn opts(mode: PfsMode) -> PfsOptions {
    PfsOptions {
        mode,
        cache_nodes: 8,
        enclave: None,
        profiler: None,
        journal: false,
    }
}

/// Write a recognisable multi-node file and hand back its ciphertext store.
fn stored_file(mode: PfsMode) -> (MemStorage, Vec<u8>) {
    let plaintext: Vec<u8> = (0..20_000u32)
        .flat_map(|i| [(i % 251) as u8, b'T', b'W'])
        .collect();
    let mut f = SgxFile::create(MemStorage::new(), KEY, opts(mode)).unwrap();
    f.write(&plaintext).unwrap();
    f.flush().unwrap();
    (f.into_storage().unwrap(), plaintext)
}

/// Reopen `store` and try to read the whole file back.
fn read_back(store: MemStorage, mode: PfsMode, len: usize) -> Result<Vec<u8>, String> {
    let mut f = SgxFile::open(store, KEY, opts(mode)).map_err(|e| format!("open: {e:?}"))?;
    let mut buf = vec![0u8; len];
    let mut done = 0;
    while done < len {
        let n = f.read(&mut buf[done..]).map_err(|e| format!("read: {e:?}"))?;
        if n == 0 {
            break;
        }
        done += n;
    }
    Ok(buf[..done].to_vec())
}

#[test]
fn single_ciphertext_bit_flip_is_refused() {
    for mode in [PfsMode::Intel, PfsMode::Optimised] {
        let (store, plaintext) = stored_file(mode);
        let baseline = read_back(store, mode, plaintext.len()).unwrap();
        assert_eq!(baseline, plaintext, "untampered file reads back");

        let (store, _) = stored_file(mode);
        let snap = store.snapshot();
        let nodes = snap.len() as u64;
        assert!(nodes >= 4, "20 KB file must span several nodes, got {nodes}");

        for idx in 0..nodes {
            let mut store = MemStorage::new();
            store.restore(snap.clone());
            let Some(node) = store.raw_node_mut(idx) else {
                continue;
            };
            // The middle of a node is ciphertext in every node type
            // (meta, MHT and data nodes are all encrypted end to end
            // apart from a small clear header).
            node[NODE_SIZE / 2] ^= 0x01;

            match read_back(store, mode, plaintext.len()) {
                Err(_) => {} // integrity check fired — expected
                Ok(data) => panic!(
                    "tampered node {idx} ({mode:?}) went undetected; \
                     reader returned {} bytes",
                    data.len()
                ),
            }
        }
    }
}

#[test]
fn clear_header_tamper_is_refused() {
    // The GMAC tag / header bytes at the very start of the meta node are
    // stored in the clear — flipping them must still be caught, because
    // they are exactly what authenticates the rest.
    for mode in [PfsMode::Intel, PfsMode::Optimised] {
        let (mut store, plaintext) = stored_file(mode);
        store.raw_node_mut(0).unwrap()[0] ^= 0x80;
        assert!(
            read_back(store, mode, plaintext.len()).is_err(),
            "meta-header tamper must be refused ({mode:?})"
        );
    }
}

#[test]
fn truncating_untrusted_storage_is_refused() {
    // Deleting a node (host "crash" or malicious truncation) must not
    // yield silently shortened plaintext.
    for mode in [PfsMode::Intel, PfsMode::Optimised] {
        let (store, plaintext) = stored_file(mode);
        let mut snap = store.snapshot();
        let last = snap.len() - 1;
        snap[last] = None;
        let mut store = MemStorage::new();
        store.restore(snap);
        match read_back(store, mode, plaintext.len()) {
            Err(_) => {}
            Ok(data) => assert_eq!(
                data, plaintext,
                "a read that succeeds after truncation must still be correct ({mode:?})"
            ),
        }
    }
}

#[test]
fn ciphertext_never_leaks_plaintext_runs() {
    // Ciphertext-at-rest: the stored nodes must not contain any long run
    // of the (highly regular) plaintext.
    let needle: Vec<u8> = (0..16u32).flat_map(|i| [(i % 251) as u8, b'T', b'W']).collect();
    for mode in [PfsMode::Intel, PfsMode::Optimised] {
        let (store, _) = stored_file(mode);
        for node in store.snapshot().into_iter().flatten() {
            assert!(
                !node.windows(needle.len()).any(|w| w == &needle[..]),
                "plaintext run found in untrusted storage ({mode:?})"
            );
        }
    }
}
