//! Crash-recovery battery for the journalled protected file system.
//!
//! A protected file in journal mode promises write atomicity against the
//! untrusted host: if the host crashes (or tears, or drops) the write
//! stream at *any* point during a flush, reopening the file recovers
//! either the complete pre-flush state or the complete post-flush state —
//! never a hybrid — and content corruption is still detected as tampering
//! afterwards.
//!
//! The battery records the exact store-operation stream of a flush, then
//! replays every prefix of it (plus torn/lost/bit-flipped variants of the
//! operation at the cut) into a copy of the pre-state and checks what an
//! `open` recovers.

use proptest::prelude::*;
use twine_pfs::{MemStorage, PfsError, PfsMode, PfsOptions, SgxFile, UntrustedStorage, NODE_SIZE};

const KEY: [u8; 16] = [0x5A; 16];

fn jopts(mode: PfsMode) -> PfsOptions {
    PfsOptions {
        mode,
        cache_nodes: 8,
        enclave: None,
        profiler: None,
        journal: true,
    }
}

/// One recorded store mutation.
#[derive(Clone)]
enum Op {
    Write(u64, Box<[u8; NODE_SIZE]>),
    Truncate(u64),
}

/// Storage wrapper that logs every mutation, in order.
#[derive(Default)]
struct RecordingStorage {
    inner: MemStorage,
    ops: Vec<Op>,
}

impl UntrustedStorage for RecordingStorage {
    fn read_node(&mut self, idx: u64, buf: &mut [u8; NODE_SIZE]) -> Result<bool, PfsError> {
        self.inner.read_node(idx, buf)
    }
    fn write_node(&mut self, idx: u64, buf: &[u8; NODE_SIZE]) -> Result<(), PfsError> {
        self.ops.push(Op::Write(idx, Box::new(*buf)));
        self.inner.write_node(idx, buf)
    }
    fn node_count(&self) -> u64 {
        self.inner.node_count()
    }
    fn truncate(&mut self, nodes: u64) -> Result<(), PfsError> {
        self.ops.push(Op::Truncate(nodes));
        self.inner.truncate(nodes)
    }
}

fn apply(store: &mut MemStorage, op: &Op) {
    match op {
        Op::Write(idx, buf) => store.write_node(*idx, buf).unwrap(),
        Op::Truncate(n) => store.truncate(*n).unwrap(),
    }
}

/// Apply `op` as a torn write: only the first half of the sector lands.
/// Truncates are atomic and applied whole.
fn apply_torn(store: &mut MemStorage, op: &Op) {
    match op {
        Op::Write(idx, buf) => {
            let mut merged = [0u8; NODE_SIZE];
            let had = store.read_node(*idx, &mut merged).unwrap();
            if !had {
                merged.fill(0);
            }
            merged[..NODE_SIZE / 2].copy_from_slice(&buf[..NODE_SIZE / 2]);
            store.write_node(*idx, &merged).unwrap();
        }
        Op::Truncate(n) => store.truncate(*n).unwrap(),
    }
}

fn read_all(f: &mut SgxFile<MemStorage>) -> Result<Vec<u8>, PfsError> {
    f.seek(0)?;
    let mut out = vec![0u8; f.size() as usize];
    f.read(&mut out)?;
    Ok(out)
}

/// Open a crash state and classify the outcome: recovered content, or a
/// detected tamper. Any other error is a test failure.
fn recover(snapshot: Vec<Option<Box<[u8; NODE_SIZE]>>>, mode: PfsMode) -> Result<Vec<u8>, ()> {
    let mut store = MemStorage::new();
    store.restore(snapshot);
    match SgxFile::open(store, KEY, jopts(mode)) {
        Ok(mut f) => match read_all(&mut f) {
            Ok(content) => Ok(content),
            Err(PfsError::Tampered(_)) => Err(()),
            Err(e) => panic!("unexpected recovery read error: {e:?}"),
        },
        Err(PfsError::Tampered(_)) => Err(()),
        Err(e) => panic!("unexpected recovery open error: {e:?}"),
    }
}

/// Build state A, record the flush that mutates it to state B, and return
/// (pre-state snapshot, op stream, content A, content B).
#[allow(clippy::type_complexity)]
fn recorded_transition(
    mode: PfsMode,
    seed: u8,
    a_len: usize,
    b_len: usize,
) -> (Vec<Option<Box<[u8; NODE_SIZE]>>>, Vec<Op>, Vec<u8>, Vec<u8>) {
    let a: Vec<u8> = (0..a_len).map(|i| (i as u8).wrapping_mul(31) ^ seed).collect();
    let b: Vec<u8> = (0..b_len).map(|i| (i as u8).wrapping_mul(17) ^ !seed).collect();
    let mut f = SgxFile::create(RecordingStorage::default(), KEY, jopts(mode)).unwrap();
    f.write(&a).unwrap();
    f.flush().unwrap();
    let mut store = f.into_storage().unwrap();
    let pre = store.inner.snapshot();
    store.ops.clear();
    let mut f = SgxFile::open(store, KEY, jopts(mode)).unwrap();
    f.seek(0).unwrap();
    f.write(&b).unwrap();
    if b_len < a_len {
        f.set_size(b_len as u64).unwrap();
    }
    f.flush().unwrap();
    let store = f.into_storage().unwrap();
    (pre, store.ops, a, b)
}

fn assert_pre_or_post(content: &[u8], a: &[u8], b: &[u8], what: &str) {
    assert!(
        content == a || content == b,
        "{what}: recovered a hybrid state ({} bytes, a={} b={})",
        content.len(),
        a.len(),
        b.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// A clean crash after any prefix of the flush's store operations
    /// recovers to exactly the pre- or post-flush content.
    #[test]
    fn crash_at_every_prefix_recovers_pre_or_post(
        seed in 0u8..=255,
        a_nodes in 1usize..4,
        b_nodes in 1usize..4,
    ) {
        for mode in [PfsMode::Intel, PfsMode::Optimised] {
            let (pre, ops, a, b) =
                recorded_transition(mode, seed, a_nodes * 4096 + 123, b_nodes * 4096 + 57);
            prop_assert!(!ops.is_empty());
            for k in 0..=ops.len() {
                let mut store = MemStorage::new();
                store.restore(pre.clone());
                for op in &ops[..k] {
                    apply(&mut store, op);
                }
                let content = recover(store.snapshot(), mode)
                    .expect("a pure crash prefix must always recover");
                assert_pre_or_post(&content, &a, &b, &format!("{mode:?} prefix {k}"));
            }
        }
    }

    /// The operation at the crash point may itself be torn (half the
    /// sector lands) or lost (acknowledged, never durable): still pre or
    /// post, never a hybrid. A torn sector that damages a *committed*
    /// journal is allowed to surface as detected tampering, never as
    /// silently wrong content.
    #[test]
    fn torn_or_lost_write_at_crash_point(seed in 0u8..=255, b_extra in 0usize..2000) {
        let mode = PfsMode::Intel;
        let (pre, ops, a, b) = recorded_transition(mode, seed, 9000, 9000 + b_extra);
        for k in 0..ops.len() {
            // Torn: prefix + half of op k.
            let mut store = MemStorage::new();
            store.restore(pre.clone());
            for op in &ops[..k] {
                apply(&mut store, op);
            }
            apply_torn(&mut store, &ops[k]);
            if let Ok(content) = recover(store.snapshot(), mode) {
                assert_pre_or_post(&content, &a, &b, &format!("torn at {k}"));
            }
            // Lost: op k dropped entirely, crash right after.
            let mut store = MemStorage::new();
            store.restore(pre.clone());
            for op in &ops[..k] {
                apply(&mut store, op);
            }
            let content = recover(store.snapshot(), mode)
                .expect("a lost-write crash point is a pure prefix");
            assert_pre_or_post(&content, &a, &b, &format!("lost at {k}"));
        }
    }

    /// A lost or bit-flipped write mid-stream with the flush *continuing*
    /// to completion either still yields the post state (the damage hit
    /// journal nodes that were retired) or is detected as tampering —
    /// never silently wrong content.
    #[test]
    fn damage_mid_stream_detected_or_harmless(seed in 0u8..=255, flip_bit in 0usize..32768) {
        let mode = PfsMode::Optimised;
        let (pre, ops, _a, b) = recorded_transition(mode, seed, 9000, 10_500);
        for k in 0..ops.len() {
            // Lost op k, every other op applied.
            let mut store = MemStorage::new();
            store.restore(pre.clone());
            for (i, op) in ops.iter().enumerate() {
                if i != k {
                    apply(&mut store, op);
                }
            }
            if let Ok(content) = recover(store.snapshot(), mode) {
                prop_assert_eq!(&content, &b, "lost-and-continued at {}", k);
            }
            // Bit flip in op k's payload, every op applied.
            let mut store = MemStorage::new();
            store.restore(pre.clone());
            for (i, op) in ops.iter().enumerate() {
                match (i == k, op) {
                    (true, Op::Write(idx, buf)) => {
                        let mut damaged = **buf;
                        let at = flip_bit % (NODE_SIZE * 8);
                        damaged[at / 8] ^= 1 << (at % 8);
                        store.write_node(*idx, &damaged).unwrap();
                    }
                    _ => apply(&mut store, op),
                }
            }
            if let Ok(content) = recover(store.snapshot(), mode) {
                // A flip may land in structurally unused bytes; content
                // must still be exactly the post state, never a hybrid.
                prop_assert_eq!(&content, &b, "flip-and-continued at {}", k);
            }
        }
    }

    /// After a crash and successful recovery, the Merkle tree still
    /// detects content tampering — recovery must not weaken integrity.
    #[test]
    fn tamper_detected_after_recovery(seed in 0u8..=255) {
        let mode = PfsMode::Intel;
        let (pre, ops, a, b) = recorded_transition(mode, seed, 9000, 9000);
        let k = ops.len() / 2;
        let mut store = MemStorage::new();
        store.restore(pre.clone());
        for op in &ops[..k] {
            apply(&mut store, op);
        }
        // Recover once (repairs or discards the journal), then tamper.
        let mut recovered = MemStorage::new();
        recovered.restore(store.snapshot());
        let f = SgxFile::open(recovered, KEY, jopts(mode)).unwrap();
        let mut recovered = f.into_storage().unwrap();
        let phys = twine_pfs::node::data_phys(0);
        let node = recovered.raw_node_mut(phys).expect("data node present");
        node[200] ^= 0x10;
        let mut f = SgxFile::open(recovered, KEY, jopts(mode)).unwrap();
        match read_all(&mut f) {
            Err(PfsError::Tampered(_)) => {}
            Ok(content) => {
                prop_assert!(
                    content != a && content != b,
                    "tampered content must not silently equal a valid state"
                );
                panic!("tamper after recovery not detected");
            }
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }
}
