//! Instrumented profiling of protected-file operations.
//!
//! Reproduces the methodology of the paper's §V-F: the IPFS modules are
//! broken into components (memory clearing, OCALL transitions, read
//! operations, cryptography) and each is timed. The Figure 7 harness reads
//! the per-category totals from here.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use twine_sgx::SimClock;

/// Cost categories matching the Figure 7 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfsCategory {
    /// Clearing node structures (`memset`).
    Memset,
    /// Enclave boundary crossings and edge-routine copies.
    Ocall,
    /// Reading/writing ciphertext nodes (storage work, buffer shuffling).
    ReadOps,
    /// AES-GCM / AES-CCM encryption, decryption and key derivation.
    Crypto,
    /// Everything else inside the PFS (cache management, tree walks).
    Other,
}

/// Number of categories.
pub const NUM_CATEGORIES: usize = 5;

/// A snapshot of accumulated cycles per category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfSnapshot {
    /// Cycles per category, indexed by `PfsCategory as usize`.
    pub cycles: [u64; NUM_CATEGORIES],
}

impl ProfSnapshot {
    /// Cycles for one category.
    #[must_use]
    pub fn get(&self, cat: PfsCategory) -> u64 {
        self.cycles[cat as usize]
    }

    /// Total cycles across categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Difference against an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &ProfSnapshot) -> ProfSnapshot {
        let mut out = ProfSnapshot::default();
        for i in 0..NUM_CATEGORIES {
            out.cycles[i] = self.cycles[i] - earlier.cycles[i];
        }
        out
    }
}

struct Inner {
    snapshot: ProfSnapshot,
    raw: ProfSnapshot,
    clock: SimClock,
    weights: [f64; NUM_CATEGORIES],
}

/// Shared profiler handle. Real elapsed time of instrumented sections is
/// scaled by a per-category *calibration weight* and folded into both the
/// counters and the enclave's virtual clock, so profiling and timing agree.
///
/// Weights translate this build's software costs into the paper testbed's
/// hardware costs: e.g. our portable software AES-GCM runs ~50× slower than
/// AES-NI, while `memset` of enclave pages is *more* expensive on real SGX
/// (every write goes through the memory-encryption engine). The raw
/// (unweighted) measurements stay available through [`Self::raw_snapshot`].
/// Thread-safe (`Arc<Mutex<…>>`): one profiler can be shared by every shard
/// of a multi-threaded service; per-category totals are exact under
/// concurrent attribution.
#[derive(Clone)]
pub struct PfsProfiler {
    inner: Arc<Mutex<Inner>>,
}

impl PfsProfiler {
    /// New profiler charging `clock` with neutral weights (1.0).
    #[must_use]
    pub fn new(clock: SimClock) -> Self {
        Self::with_weights(clock, [1.0; NUM_CATEGORIES])
    }

    /// New profiler with per-category calibration weights (indexed by
    /// `PfsCategory as usize`).
    #[must_use]
    pub fn with_weights(clock: SimClock, weights: [f64; NUM_CATEGORIES]) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                snapshot: ProfSnapshot::default(),
                raw: ProfSnapshot::default(),
                clock,
                weights,
            })),
        }
    }

    /// Calibration for SGX-hardware equivalence (DESIGN.md §4):
    /// * `Memset` ×6 — enclave stores traverse the MEE; clearing 4 KiB pages
    ///   is several times dearer than on plain DRAM;
    /// * `Ocall` ×1 — already modelled in cycles, not measured;
    /// * `ReadOps` ×4 — edge-routine copies also cross the MEE;
    /// * `Crypto` ×0.02 — portable software AES → AES-NI (~50× faster);
    /// * `Other` ×1.
    #[must_use]
    pub fn sgx_hardware_weights() -> [f64; NUM_CATEGORIES] {
        [6.0, 1.0, 4.0, 0.02, 1.0]
    }

    /// Time a closure, attributing its (weighted) duration to `cat`.
    pub fn measure<R>(&self, cat: PfsCategory, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        let d = start.elapsed();
        let raw = (d.as_secs_f64() * twine_sgx::clock::CPU_HZ as f64) as u64;
        let mut inner = self.inner.lock().unwrap();
        let weighted = (raw as f64 * inner.weights[cat as usize]) as u64;
        inner.raw.cycles[cat as usize] += raw;
        inner.snapshot.cycles[cat as usize] += weighted;
        inner.clock.add_cycles(weighted);
        r
    }

    /// Attribute externally-known cycles (e.g. modelled OCALL costs) to a
    /// category without charging the clock again.
    pub fn attribute_cycles(&self, cat: PfsCategory, cycles: u64) {
        self.inner.lock().unwrap().snapshot.cycles[cat as usize] += cycles;
    }

    /// Current totals (weighted cycles — what timing uses).
    #[must_use]
    pub fn snapshot(&self) -> ProfSnapshot {
        self.inner.lock().unwrap().snapshot
    }

    /// Current raw (unweighted) real-time-derived cycles.
    #[must_use]
    pub fn raw_snapshot(&self) -> ProfSnapshot {
        self.inner.lock().unwrap().raw
    }

    /// Reset counters.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.snapshot = ProfSnapshot::default();
        inner.raw = ProfSnapshot::default();
    }

    /// The clock this profiler charges.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.inner.lock().unwrap().clock.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_attributes_and_charges_clock() {
        let clock = SimClock::new();
        let p = PfsProfiler::new(clock.clone());
        let r = p.measure(PfsCategory::Crypto, || {
            // Do a small amount of real work.
            let mut x = 0u64;
            for i in 0..100_000u64 {
                x = x.wrapping_add(i * i);
            }
            x
        });
        assert!(r > 0);
        assert!(p.snapshot().get(PfsCategory::Crypto) > 0);
        assert_eq!(p.snapshot().get(PfsCategory::Memset), 0);
        assert_eq!(clock.cycles(), p.snapshot().total());
    }

    #[test]
    fn attribute_does_not_double_charge() {
        let clock = SimClock::new();
        let p = PfsProfiler::new(clock.clone());
        p.attribute_cycles(PfsCategory::Ocall, 500);
        assert_eq!(p.snapshot().get(PfsCategory::Ocall), 500);
        assert_eq!(clock.cycles(), 0);
    }

    #[test]
    fn snapshot_since() {
        let p = PfsProfiler::new(SimClock::new());
        p.attribute_cycles(PfsCategory::ReadOps, 100);
        let s1 = p.snapshot();
        p.attribute_cycles(PfsCategory::ReadOps, 50);
        assert_eq!(p.snapshot().since(&s1).get(PfsCategory::ReadOps), 50);
    }
}
