//! `SgxFile`: the protected-file handle (the `sgx_fopen` family analogue).

use std::sync::Arc;

use twine_crypto::gcm::AesGcm;
use twine_sgx::Enclave;

use crate::cache::{CachedNode, NodeCache};
use crate::node::{
    self, classify, data_phys, entry_from_parts, entry_is_empty, entry_parts, l1_phys, l2_phys,
    Entry, NodeKind, ParentLoc,
};
use crate::profile::{PfsCategory, PfsProfiler};
use crate::storage::UntrustedStorage;
use crate::{PfsError, PfsMode, ENTRIES_PER_L2, META_L1_ENTRIES, NODE_SIZE};

/// Magic prefix of the meta node.
const META_MAGIC: &[u8; 8] = b"TWPFSv1\0";
/// Serialised meta payload: size(8) + counter(8) + 100 entries × 32.
const META_PAYLOAD: usize = 16 + (META_L1_ENTRIES as usize) * 32;

/// Write-ahead journal record magics (see [`SgxFile::flush`] in journal
/// mode): header, per-entry index, commit.
const JOURNAL_HEADER_MAGIC: &[u8; 8] = b"TWPFSJH\0";
const JOURNAL_ENTRY_MAGIC: &[u8; 8] = b"TWPFSJE\0";
const JOURNAL_COMMIT_MAGIC: &[u8; 8] = b"TWPFSJC\0";

/// FNV-1a over the journal entries (fault detection, not authentication —
/// the per-node MACs are what authenticate content after replay).
fn fnv1a_64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Highest physical node index + 1 a file of `file_size` bytes can have
/// legitimately written (all MHT ancestors sit below their last data
/// child). Anything past this span is journal residue.
fn natural_span(file_size: u64) -> u64 {
    let d_max = file_size.div_ceil(NODE_SIZE as u64);
    if d_max == 0 {
        1
    } else {
        data_phys(d_max - 1) + 1
    }
}

/// Maximum representable file size under the two-level MHT.
pub const MAX_FILE_SIZE: u64 =
    META_L1_ENTRIES * crate::ENTRIES_PER_L1 * ENTRIES_PER_L2 * NODE_SIZE as u64;

/// Open options for a protected file.
#[derive(Clone)]
pub struct PfsOptions {
    /// Stock Intel behaviour or the paper's optimised variant.
    pub mode: PfsMode,
    /// Node-cache capacity.
    pub cache_nodes: usize,
    /// Enclave whose boundary (and clock) the file I/O crosses. `Arc` so a
    /// protected file — session state — can live on any worker thread of a
    /// multi-threaded service while sharing the one enclave.
    pub enclave: Option<Arc<Enclave>>,
    /// Optional §V-F profiler.
    pub profiler: Option<PfsProfiler>,
    /// Write-through journaling: every flush becomes an atomic redo
    /// transaction (staged writes + commit record), so a crash mid-flush
    /// recovers to the pre-flush or post-flush state — never a hybrid.
    /// Off by default: it roughly doubles write traffic.
    pub journal: bool,
}

impl Default for PfsOptions {
    fn default() -> Self {
        Self {
            mode: PfsMode::Intel,
            cache_nodes: crate::DEFAULT_CACHE_NODES,
            enclave: None,
            profiler: None,
            journal: false,
        }
    }
}

struct Meta {
    file_size: u64,
    update_counter: u64,
    l1: Vec<Entry>,
}

impl Meta {
    fn fresh() -> Self {
        Self {
            file_size: 0,
            update_counter: 0,
            l1: vec![[0u8; 32]; META_L1_ENTRIES as usize],
        }
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(META_PAYLOAD);
        out.extend_from_slice(&self.file_size.to_le_bytes());
        out.extend_from_slice(&self.update_counter.to_le_bytes());
        for e in &self.l1 {
            out.extend_from_slice(e);
        }
        out
    }

    fn deserialize(bytes: &[u8]) -> Result<Self, PfsError> {
        if bytes.len() < META_PAYLOAD {
            return Err(PfsError::Tampered("meta payload truncated".into()));
        }
        let file_size = u64::from_le_bytes(bytes[..8].try_into().expect("len"));
        let update_counter = u64::from_le_bytes(bytes[8..16].try_into().expect("len"));
        let mut l1 = Vec::with_capacity(META_L1_ENTRIES as usize);
        for i in 0..META_L1_ENTRIES as usize {
            let mut e = [0u8; 32];
            e.copy_from_slice(&bytes[16 + i * 32..16 + (i + 1) * 32]);
            l1.push(e);
        }
        Ok(Self {
            file_size,
            update_counter,
            l1,
        })
    }
}

/// A protected file: content is confidential and integrity-protected on the
/// untrusted storage; plaintext exists only in (simulated) enclave memory.
pub struct SgxFile<S: UntrustedStorage> {
    store: S,
    opts: PfsOptions,
    cache: NodeCache,
    file_key: [u8; 16],
    meta: Meta,
    meta_dirty: bool,
    pos: u64,
    /// Active journal transaction: writes are staged here instead of
    /// hitting the store (see [`Self::flush`] in journal mode).
    staging: Option<Vec<(u64, Box<[u8; NODE_SIZE]>)>>,
    /// File size of the last state durably on the store — the journal must
    /// be placed above the spans of both the old and the new state.
    disk_file_size: u64,
}

impl<S: UntrustedStorage> SgxFile<S> {
    /// Create a fresh protected file on `store` (truncates existing nodes).
    pub fn create(mut store: S, file_key: [u8; 16], opts: PfsOptions) -> Result<Self, PfsError> {
        store.truncate(0)?;
        let mut f = Self {
            store,
            cache: NodeCache::new(opts.cache_nodes),
            opts,
            file_key,
            meta: Meta::fresh(),
            meta_dirty: true,
            pos: 0,
            staging: None,
            disk_file_size: 0,
        };
        f.flush_meta()?;
        Ok(f)
    }

    /// Open an existing protected file, verifying the meta node. In
    /// journal mode this first completes or discards any transaction a
    /// crash left behind (see [`Self::flush`]).
    pub fn open(mut store: S, file_key: [u8; 16], opts: PfsOptions) -> Result<Self, PfsError> {
        let meta = Self::read_meta(&mut store, &file_key, &opts)?;
        let mut f = Self {
            store,
            cache: NodeCache::new(opts.cache_nodes),
            opts,
            file_key,
            meta,
            meta_dirty: false,
            pos: 0,
            staging: None,
            disk_file_size: 0,
        };
        f.disk_file_size = f.meta.file_size;
        if f.opts.journal && f.recover_journal()? {
            // The replay rewrote the meta node: re-read the real state.
            f.meta = Self::read_meta(&mut f.store, &f.file_key, &f.opts)?;
            f.disk_file_size = f.meta.file_size;
        }
        Ok(f)
    }

    fn read_meta(store: &mut S, file_key: &[u8; 16], opts: &PfsOptions) -> Result<Meta, PfsError> {
        let mut raw = [0u8; NODE_SIZE];
        let present = match &opts.enclave {
            Some(e) => e.ocall(NODE_SIZE as u64, || store.read_node(0, &mut raw))?,
            None => store.read_node(0, &mut raw)?,
        };
        if !present {
            return Err(PfsError::Io("no protected file on storage".into()));
        }
        if &raw[..8] != META_MAGIC {
            return Err(PfsError::Tampered("bad meta magic".into()));
        }
        let counter = u64::from_le_bytes(raw[8..16].try_into().expect("len"));
        let tag: [u8; 16] = raw[16..32].try_into().expect("len");
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&counter.to_le_bytes());
        let ct = &raw[32..32 + META_PAYLOAD];
        let gcm = AesGcm::new_128(file_key);
        let payload = gcm
            .decrypt(&nonce, b"meta", ct, &tag)
            .map_err(|_| PfsError::Tampered("meta authentication failed".into()))?;
        Meta::deserialize(&payload)
    }

    /// Current file size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.meta.file_size
    }

    /// Current position.
    #[must_use]
    pub fn tell(&self) -> u64 {
        self.pos
    }

    /// Seek to an absolute offset. Like `sgx_fseek`, seeking beyond the end
    /// is refused (the WASI layer emulates extension by writing zeros).
    pub fn seek(&mut self, pos: u64) -> Result<u64, PfsError> {
        if pos > self.meta.file_size {
            return Err(PfsError::Range(format!(
                "seek {pos} beyond end {}",
                self.meta.file_size
            )));
        }
        self.pos = pos;
        Ok(pos)
    }

    /// Extend (with implicit zeros) or truncate the file to `size`.
    pub fn set_size(&mut self, size: u64) -> Result<(), PfsError> {
        if size > MAX_FILE_SIZE {
            return Err(PfsError::Range("file too large".into()));
        }
        if size < self.meta.file_size {
            // Drop cached nodes past the end and zero their entries.
            let first_dead = size.div_ceil(NODE_SIZE as u64);
            let last = self.meta.file_size.div_ceil(NODE_SIZE as u64);
            for d in first_dead..last {
                if let Some((_, n)) = self.cache.remove(data_phys(d)) {
                    self.cache.recycle(n);
                }
                self.clear_parent_entry(NodeKind::Data(d))?;
            }
            // The boundary node keeps a live prefix; its dropped tail must
            // read back as zeros if the file is later re-extended.
            let tail = (size % NODE_SIZE as u64) as usize;
            if tail != 0 {
                let d = size / NODE_SIZE as u64;
                self.ensure_loaded(data_phys(d))?;
                let node = self.cache.get(data_phys(d)).expect("loaded");
                node.plaintext[tail..].fill(0);
                node.dirty = true;
            }
        }
        self.meta.file_size = size;
        self.meta_dirty = true;
        self.pos = self.pos.min(size);
        Ok(())
    }

    /// Read up to `buf.len()` bytes at the current position.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize, PfsError> {
        let available = self.meta.file_size.saturating_sub(self.pos);
        let want = (buf.len() as u64).min(available) as usize;
        let mut done = 0usize;
        while done < want {
            let d = self.pos / NODE_SIZE as u64;
            let off = (self.pos % NODE_SIZE as u64) as usize;
            let chunk = (NODE_SIZE - off).min(want - done);
            self.ensure_loaded(data_phys(d))?;
            let node = self.cache.get(data_phys(d)).expect("just loaded");
            buf[done..done + chunk].copy_from_slice(&node.plaintext[off..off + chunk]);
            done += chunk;
            self.pos += chunk as u64;
        }
        Ok(done)
    }

    /// Write `buf` at the current position, extending the file as needed.
    pub fn write(&mut self, buf: &[u8]) -> Result<usize, PfsError> {
        if self.pos + buf.len() as u64 > MAX_FILE_SIZE {
            return Err(PfsError::Range("file too large".into()));
        }
        let mut done = 0usize;
        while done < buf.len() {
            let d = self.pos / NODE_SIZE as u64;
            let off = (self.pos % NODE_SIZE as u64) as usize;
            let chunk = (NODE_SIZE - off).min(buf.len() - done);
            self.ensure_loaded(data_phys(d))?;
            let node = self.cache.get(data_phys(d)).expect("just loaded");
            node.plaintext[off..off + chunk].copy_from_slice(&buf[done..done + chunk]);
            node.dirty = true;
            done += chunk;
            self.pos += chunk as u64;
        }
        if self.pos > self.meta.file_size {
            self.meta.file_size = self.pos;
            self.meta_dirty = true;
        }
        Ok(done)
    }

    /// Flush all dirty nodes and the meta node to untrusted storage.
    ///
    /// With [`PfsOptions::journal`] set, the whole flush is one atomic
    /// redo transaction: every store write (data, MHT, meta) is first
    /// staged into a journal appended past the end of the node space —
    /// header, `(index, payload)` pairs, then a commit record carrying an
    /// entry checksum — and only after the commit record is durable are
    /// the home locations updated and the journal truncated away. A crash
    /// at *any* write boundary therefore recovers (on the next `open`) to
    /// the pre-flush state (no commit record → journal discarded) or the
    /// post-flush state (commit record present → entries replayed,
    /// idempotently) — never a half-written hybrid.
    pub fn flush(&mut self) -> Result<(), PfsError> {
        if self.opts.journal && self.staging.is_none() {
            return self.flush_journaled();
        }
        self.flush_plain()
    }

    fn flush_plain(&mut self) -> Result<(), PfsError> {
        // Deepest first: data nodes, then L2, then L1 — parents absorb the
        // children's fresh (key, tag) entries before being flushed.
        loop {
            let mut dirty = self.cache.dirty_nodes();
            if dirty.is_empty() {
                break;
            }
            dirty.sort_by_key(|&phys| match classify(phys) {
                NodeKind::Data(_) => 0,
                NodeKind::L2(_) => 1,
                NodeKind::L1(_) => 2,
                NodeKind::Meta => 3,
            });
            let phys = dirty[0];
            let (_, mut node) = self.cache.remove(phys).expect("dirty node cached");
            self.write_back(phys, &mut node)?;
            while self.cache.is_full() {
                self.evict_one()?;
            }
            self.cache.insert(phys, node);
        }
        if self.meta_dirty {
            self.flush_meta()?;
        }
        if self.staging.is_none() {
            self.disk_file_size = self.meta.file_size;
        }
        Ok(())
    }

    fn flush_journaled(&mut self) -> Result<(), PfsError> {
        self.staging = Some(Vec::new());
        let r = self.flush_plain();
        let staged = self.staging.take().expect("staging active");
        if let Err(e) = r {
            // Nothing reached the store; re-mark the staged nodes dirty so
            // a later flush retries them (the store is still pre-state).
            for (phys, _) in &staged {
                if let Some(n) = self.cache.get(*phys) {
                    n.dirty = true;
                }
            }
            self.meta_dirty = true;
            return Err(e);
        }
        if staged.is_empty() {
            return Ok(());
        }
        self.journal_commit(&staged)
    }

    /// Write the staged transaction as a journal past the end of the node
    /// space, commit it, apply the home writes, and discard the journal.
    fn journal_commit(
        &mut self,
        staged: &[(u64, Box<[u8; NODE_SIZE]>)],
    ) -> Result<(), PfsError> {
        let max_phys = staged.iter().map(|&(p, _)| p).max().expect("non-empty");
        // The journal must sit above everything the pre- and post-state
        // can legitimately reference, so recovery's last-node probe can
        // never mistake live data for (or miss) a journal.
        let jstart = self
            .store
            .node_count()
            .max(max_phys + 1)
            .max(natural_span(self.disk_file_size))
            .max(natural_span(self.meta.file_size));
        let count = staged.len() as u64;
        let mut checksum = FNV_OFFSET;
        for (phys, payload) in staged {
            checksum = fnv1a_64(checksum, &phys.to_le_bytes());
            checksum = fnv1a_64(checksum, &payload[..]);
        }
        let mut rec = [0u8; NODE_SIZE];
        rec[..8].copy_from_slice(JOURNAL_HEADER_MAGIC);
        rec[8..16].copy_from_slice(&count.to_le_bytes());
        rec[16..24].copy_from_slice(&checksum.to_le_bytes());
        self.store_write(jstart, &rec)?;
        for (k, (phys, payload)) in staged.iter().enumerate() {
            let mut idx = [0u8; NODE_SIZE];
            idx[..8].copy_from_slice(JOURNAL_ENTRY_MAGIC);
            idx[8..16].copy_from_slice(&phys.to_le_bytes());
            self.store_write(jstart + 1 + 2 * k as u64, &idx)?;
            self.store_write(jstart + 2 + 2 * k as u64, payload)?;
        }
        rec[..8].copy_from_slice(JOURNAL_COMMIT_MAGIC);
        self.store_write(jstart + 1 + 2 * count, &rec)?;
        // The transaction is durable; apply the home writes and retire it.
        for (phys, payload) in staged {
            self.store_write(*phys, payload)?;
        }
        self.raw_truncate(jstart)?;
        self.disk_file_size = self.meta.file_size;
        Ok(())
    }

    /// Open-time journal recovery: replay a committed transaction left by
    /// a crash mid-apply, or discard an uncommitted one. Returns whether a
    /// replay happened (the meta node must then be re-read).
    fn recover_journal(&mut self) -> Result<bool, PfsError> {
        let n = self.store.node_count();
        let span = natural_span(self.meta.file_size);
        if n <= span {
            return Ok(false);
        }
        let mut last = [0u8; NODE_SIZE];
        let present = self.raw_read(n - 1, &mut last)?;
        if present && &last[..8] == JOURNAL_COMMIT_MAGIC {
            let count = u64::from_le_bytes(last[8..16].try_into().expect("len"));
            let checksum = u64::from_le_bytes(last[16..24].try_into().expect("len"));
            let jstart = (n - 1)
                .checked_sub(1 + 2 * count)
                .filter(|&j| j >= 1)
                .ok_or_else(|| PfsError::Tampered("malformed journal commit record".into()))?;
            let mut header = [0u8; NODE_SIZE];
            if !self.raw_read(jstart, &mut header)?
                || &header[..8] != JOURNAL_HEADER_MAGIC
                || header[8..24] != last[8..24]
            {
                return Err(PfsError::Tampered(
                    "journal commit without matching header".into(),
                ));
            }
            let mut entries = Vec::with_capacity(count as usize);
            let mut h = FNV_OFFSET;
            for k in 0..count {
                let mut idx = [0u8; NODE_SIZE];
                if !self.raw_read(jstart + 1 + 2 * k, &mut idx)?
                    || &idx[..8] != JOURNAL_ENTRY_MAGIC
                {
                    return Err(PfsError::Tampered("journal entry index damaged".into()));
                }
                let phys = u64::from_le_bytes(idx[8..16].try_into().expect("len"));
                if phys >= jstart {
                    return Err(PfsError::Tampered("journal entry out of range".into()));
                }
                let mut payload = Box::new([0u8; NODE_SIZE]);
                if !self.raw_read(jstart + 2 + 2 * k, &mut payload)? {
                    return Err(PfsError::Tampered("journal payload missing".into()));
                }
                h = fnv1a_64(h, &phys.to_le_bytes());
                h = fnv1a_64(h, &payload[..]);
                entries.push((phys, payload));
            }
            if h != checksum {
                return Err(PfsError::Tampered("journal checksum mismatch".into()));
            }
            for (phys, payload) in &entries {
                self.store_write(*phys, payload)?;
            }
            self.raw_truncate(jstart)?;
            return Ok(true);
        }
        // Residue past the natural span with no commit record: an
        // uncommitted transaction died here. Roll it back by discarding.
        self.raw_truncate(span)?;
        Ok(false)
    }

    fn raw_read(&mut self, phys: u64, buf: &mut [u8; NODE_SIZE]) -> Result<bool, PfsError> {
        let Self { store, opts, .. } = self;
        match &opts.enclave {
            Some(e) => e.ocall(NODE_SIZE as u64, || store.read_node(phys, buf)),
            None => store.read_node(phys, buf),
        }
    }

    fn raw_truncate(&mut self, nodes: u64) -> Result<(), PfsError> {
        let Self { store, opts, .. } = self;
        match &opts.enclave {
            Some(e) => e.ocall(0, || store.truncate(nodes)),
            None => store.truncate(nodes),
        }
    }

    /// Flush and return the underlying storage (for inspection/tamper tests).
    pub fn into_storage(mut self) -> Result<S, PfsError> {
        self.flush()?;
        Ok(self.store)
    }

    /// Ciphertext footprint on the untrusted side, in nodes.
    #[must_use]
    pub fn storage_nodes(&self) -> u64 {
        self.store.node_count()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn profiler(&self) -> Option<&PfsProfiler> {
        self.opts.profiler.as_ref()
    }

    fn measure<R>(&self, cat: PfsCategory, f: impl FnOnce() -> R) -> R {
        match self.profiler() {
            Some(p) => p.measure(cat, f),
            None => f(),
        }
    }

    fn bump_counter(&mut self) -> u64 {
        self.meta.update_counter += 1;
        self.meta_dirty = true;
        self.meta.update_counter
    }

    /// Load a node into the cache, verifying its Merkle path.
    fn ensure_loaded(&mut self, phys: u64) -> Result<(), PfsError> {
        if self.cache.contains(phys) {
            return Ok(());
        }
        let kind = classify(phys);
        let entry = self.read_parent_entry(kind)?;
        while self.cache.is_full() {
            self.evict_one()?;
        }
        let (mut pt, mut ct) = self.cache.alloc_bufs();
        if self.opts.mode == PfsMode::Intel {
            // Stock IPFS clears the whole node structure on allocation —
            // the §V-F memset cost, measured for real.
            self.measure(PfsCategory::Memset, || {
                pt.fill(0);
                ct.fill(0);
            });
        }
        if entry_is_empty(&entry) {
            // Never-written node: semantically zero.
            if self.opts.mode == PfsMode::Optimised {
                self.measure(PfsCategory::Memset, || pt.fill(0));
            }
        } else {
            let (key, tag) = entry_parts(&entry);
            self.read_node_ciphertext(phys, &mut ct)?;
            let mode = self.opts.mode;
            let decrypt_result = self.measure(PfsCategory::Crypto, || {
                pt.copy_from_slice(&ct[..]);
                node::decrypt_node(mode, &key, &tag, &mut pt)
            });
            decrypt_result?;
        }
        self.cache.insert(
            phys,
            CachedNode {
                plaintext: pt,
                ciphertext: ct,
                dirty: false,
            },
        );
        Ok(())
    }

    /// Read a node's ciphertext from untrusted storage through the OCALL
    /// boundary, with the Intel-mode extra enclave copy.
    fn read_node_ciphertext(
        &mut self,
        phys: u64,
        ct: &mut [u8; NODE_SIZE],
    ) -> Result<(), PfsError> {
        let Self { store, opts, .. } = self;
        let (boundary_bytes, present) = match opts.mode {
            PfsMode::Intel => {
                // edger8r copies the buffer into enclave memory: model the
                // boundary bytes and perform a real extra copy.
                let mut tmp = [0u8; NODE_SIZE];
                let present = match &opts.enclave {
                    Some(e) => e.ocall(NODE_SIZE as u64, || store.read_node(phys, &mut tmp))?,
                    None => store.read_node(phys, &mut tmp)?,
                };
                let prof = opts.profiler.clone();
                match &prof {
                    Some(p) => p.measure(PfsCategory::ReadOps, || ct.copy_from_slice(&tmp)),
                    None => ct.copy_from_slice(&tmp),
                }
                (NODE_SIZE as u64, present)
            }
            PfsMode::Optimised => {
                // Zero-copy: the enclave decrypts straight from the
                // untrusted buffer (here: read directly into the staging
                // buffer, no boundary copy charged).
                let present = match &opts.enclave {
                    Some(e) => e.ocall(0, || store.read_node(phys, ct))?,
                    None => store.read_node(phys, ct)?,
                };
                (0, present)
            }
        };
        if let (Some(p), Some(e)) = (&self.opts.profiler, &self.opts.enclave) {
            p.attribute_cycles(PfsCategory::Ocall, e.ocall_cost(boundary_bytes));
        }
        if !present {
            return Err(PfsError::Tampered(format!(
                "node {phys} missing from storage (deleted?)"
            )));
        }
        Ok(())
    }

    /// All store writes funnel through here. During a journal transaction
    /// the write is staged (the store is only touched by
    /// [`Self::journal_commit`]); otherwise it goes straight out.
    fn write_node_ciphertext(&mut self, phys: u64, ct: &[u8; NODE_SIZE]) -> Result<(), PfsError> {
        if let Some(staged) = &mut self.staging {
            match staged.iter_mut().find(|(p, _)| *p == phys) {
                Some((_, existing)) => **existing = *ct,
                None => staged.push((phys, Box::new(*ct))),
            }
            return Ok(());
        }
        self.store_write(phys, ct)
    }

    /// A real store write through the OCALL boundary.
    fn store_write(&mut self, phys: u64, ct: &[u8; NODE_SIZE]) -> Result<(), PfsError> {
        let Self { store, opts, .. } = self;
        match &opts.enclave {
            Some(e) => {
                if let Some(p) = &opts.profiler {
                    p.attribute_cycles(PfsCategory::Ocall, e.ocall_cost(NODE_SIZE as u64));
                }
                e.ocall(NODE_SIZE as u64, || store.write_node(phys, ct))
            }
            None => store.write_node(phys, ct),
        }
    }

    /// Evict the LRU node, writing it back first if dirty.
    fn evict_one(&mut self) -> Result<(), PfsError> {
        if self.opts.journal && self.staging.is_none() && !self.cache.dirty_nodes().is_empty() {
            // A dirty eviction outside a transaction would leak a
            // mid-sequence home write the journal cannot roll back. Flush
            // the whole dirty set as one journalled transaction first;
            // the LRU victim below is then clean and simply disposed.
            self.flush()?;
        }
        let Some((phys, mut node)) = self.cache.pop_lru() else {
            return Ok(());
        };
        if node.dirty {
            self.write_back(phys, &mut node)?;
        }
        if self.opts.mode == PfsMode::Intel {
            // Stock IPFS clears the plaintext buffer of disposed nodes.
            let prof = self.opts.profiler.clone();
            let pt = &mut node.plaintext;
            match &prof {
                Some(p) => p.measure(PfsCategory::Memset, || pt.fill(0)),
                None => pt.fill(0),
            }
        }
        self.cache.recycle(node);
        Ok(())
    }

    /// Encrypt a node under a fresh key, write it out, and update its
    /// parent's Merkle entry.
    fn write_back(&mut self, phys: u64, node: &mut CachedNode) -> Result<(), PfsError> {
        let counter = self.bump_counter();
        let key = node::derive_node_key(&self.file_key, phys, counter);
        let mode = self.opts.mode;
        let prof = self.opts.profiler.clone();
        let tag = {
            let pt = &node.plaintext;
            let ct = &mut node.ciphertext;
            let mut work = || {
                ct.copy_from_slice(&pt[..]);
                node::encrypt_node(mode, &key, ct)
            };
            match &prof {
                Some(p) => p.measure(PfsCategory::Crypto, work),
                None => work(),
            }
        };
        self.write_node_ciphertext(phys, &node.ciphertext)?;
        self.set_parent_entry(classify(phys), entry_from_parts(&key, &tag))?;
        node.dirty = false;
        Ok(())
    }

    fn read_parent_entry(&mut self, kind: NodeKind) -> Result<Entry, PfsError> {
        match node::parent_of(kind) {
            ParentLoc::Meta(j) => Ok(self.meta.l1[j as usize]),
            ParentLoc::L1 { j, slot } => {
                self.ensure_loaded(l1_phys(j))?;
                let n = self.cache.get(l1_phys(j)).expect("loaded");
                let mut e = [0u8; 32];
                e.copy_from_slice(&n.plaintext[(slot as usize) * 32..(slot as usize + 1) * 32]);
                Ok(e)
            }
            ParentLoc::L2 { g, slot } => {
                self.ensure_loaded(l2_phys(g))?;
                let n = self.cache.get(l2_phys(g)).expect("loaded");
                let mut e = [0u8; 32];
                e.copy_from_slice(&n.plaintext[(slot as usize) * 32..(slot as usize + 1) * 32]);
                Ok(e)
            }
        }
    }

    fn set_parent_entry(&mut self, kind: NodeKind, entry: Entry) -> Result<(), PfsError> {
        match node::parent_of(kind) {
            ParentLoc::Meta(j) => {
                self.meta.l1[j as usize] = entry;
                self.meta_dirty = true;
            }
            ParentLoc::L1 { j, slot } => {
                self.ensure_loaded(l1_phys(j))?;
                let n = self.cache.get(l1_phys(j)).expect("loaded");
                n.plaintext[(slot as usize) * 32..(slot as usize + 1) * 32].copy_from_slice(&entry);
                n.dirty = true;
            }
            ParentLoc::L2 { g, slot } => {
                self.ensure_loaded(l2_phys(g))?;
                let n = self.cache.get(l2_phys(g)).expect("loaded");
                n.plaintext[(slot as usize) * 32..(slot as usize + 1) * 32].copy_from_slice(&entry);
                n.dirty = true;
            }
        }
        Ok(())
    }

    fn clear_parent_entry(&mut self, kind: NodeKind) -> Result<(), PfsError> {
        self.set_parent_entry(kind, [0u8; 32])
    }

    fn flush_meta(&mut self) -> Result<(), PfsError> {
        self.meta.update_counter += 1;
        let payload = self.meta.serialize();
        let counter = self.meta.update_counter;
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&counter.to_le_bytes());
        let prof = self.opts.profiler.clone();
        let gcm = AesGcm::new_128(&self.file_key);
        let encrypt = || gcm.encrypt(&nonce, b"meta", &payload);
        let (ct, tag) = match &prof {
            Some(p) => p.measure(PfsCategory::Crypto, encrypt),
            None => encrypt(),
        };
        let mut raw = [0u8; NODE_SIZE];
        raw[..8].copy_from_slice(META_MAGIC);
        raw[8..16].copy_from_slice(&counter.to_le_bytes());
        raw[16..32].copy_from_slice(&tag);
        raw[32..32 + ct.len()].copy_from_slice(&ct);
        self.write_node_ciphertext(0, &raw)?;
        self.meta_dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn opts(mode: PfsMode) -> PfsOptions {
        PfsOptions {
            mode,
            cache_nodes: 8,
            enclave: None,
            profiler: None,
            journal: false,
        }
    }

    fn jopts(mode: PfsMode) -> PfsOptions {
        PfsOptions {
            journal: true,
            ..opts(mode)
        }
    }

    fn both_modes(f: impl Fn(PfsMode)) {
        f(PfsMode::Intel);
        f(PfsMode::Optimised);
    }

    #[test]
    fn write_read_roundtrip_small() {
        both_modes(|mode| {
            let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], opts(mode)).unwrap();
            f.write(b"hello protected world").unwrap();
            f.seek(0).unwrap();
            let mut buf = [0u8; 21];
            assert_eq!(f.read(&mut buf).unwrap(), 21);
            assert_eq!(&buf, b"hello protected world");
        });
    }

    #[test]
    fn multi_node_file_and_reopen() {
        both_modes(|mode| {
            let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
            let mut f = SgxFile::create(MemStorage::new(), [2u8; 16], opts(mode)).unwrap();
            f.write(&data).unwrap();
            let store = f.into_storage().unwrap();
            // Reopen and verify.
            let mut f = SgxFile::open(store, [2u8; 16], opts(mode)).unwrap();
            assert_eq!(f.size(), data.len() as u64);
            let mut back = vec![0u8; data.len()];
            assert_eq!(f.read(&mut back).unwrap(), data.len());
            assert_eq!(back, data, "{mode:?}");
        });
    }

    #[test]
    fn wrong_key_rejected() {
        let mut f = SgxFile::create(MemStorage::new(), [3u8; 16], opts(PfsMode::Intel)).unwrap();
        f.write(b"secret").unwrap();
        let store = f.into_storage().unwrap();
        assert!(matches!(
            SgxFile::open(store, [4u8; 16], opts(PfsMode::Intel)),
            Err(PfsError::Tampered(_))
        ));
    }

    #[test]
    fn ciphertext_on_storage() {
        // The plaintext must not appear anywhere on the untrusted side.
        let mut f = SgxFile::create(MemStorage::new(), [5u8; 16], opts(PfsMode::Intel)).unwrap();
        let needle = b"TOP-SECRET-DATABASE-ROW-0123456789";
        f.write(needle).unwrap();
        let store = f.into_storage().unwrap();
        let mut all = Vec::new();
        let snap = store.snapshot();
        for n in snap.into_iter().flatten() {
            all.extend_from_slice(&n[..]);
        }
        assert!(
            !all.windows(needle.len()).any(|w| w == needle),
            "plaintext leaked to untrusted storage"
        );
    }

    #[test]
    fn tampered_data_node_detected() {
        both_modes(|mode| {
            let mut f = SgxFile::create(MemStorage::new(), [6u8; 16], opts(mode)).unwrap();
            f.write(&vec![0xAB; 10_000]).unwrap();
            let mut store = f.into_storage().unwrap();
            // Flip one bit in the first data node's ciphertext.
            let phys = data_phys(0);
            store.raw_node_mut(phys).unwrap()[100] ^= 1;
            let mut f = SgxFile::open(store, [6u8; 16], opts(mode)).unwrap();
            let mut buf = [0u8; 64];
            assert!(matches!(f.read(&mut buf), Err(PfsError::Tampered(_))), "{mode:?}");
        });
    }

    #[test]
    fn tampered_mht_node_detected() {
        let mut f = SgxFile::create(MemStorage::new(), [7u8; 16], opts(PfsMode::Intel)).unwrap();
        f.write(&vec![1u8; 10_000]).unwrap();
        let mut store = f.into_storage().unwrap();
        store.raw_node_mut(l2_phys(0)).unwrap()[0] ^= 0xFF;
        let mut f = SgxFile::open(store, [7u8; 16], opts(PfsMode::Intel)).unwrap();
        let mut buf = [0u8; 64];
        assert!(matches!(f.read(&mut buf), Err(PfsError::Tampered(_))));
    }

    #[test]
    fn deleted_node_detected() {
        let mut f = SgxFile::create(MemStorage::new(), [8u8; 16], opts(PfsMode::Intel)).unwrap();
        f.write(&vec![1u8; 10_000]).unwrap();
        let mut store = f.into_storage().unwrap();
        store.truncate(data_phys(0)).unwrap(); // delete data nodes
        let mut f = SgxFile::open(store, [8u8; 16], opts(PfsMode::Intel)).unwrap();
        let mut buf = [0u8; 64];
        assert!(f.read(&mut buf).is_err());
    }

    /// Documents the rollback limitation the paper lists (§IV-D): restoring
    /// an old snapshot of the whole file passes verification.
    #[test]
    fn rollback_not_detected_known_limitation() {
        let mut f = SgxFile::create(MemStorage::new(), [9u8; 16], opts(PfsMode::Intel)).unwrap();
        f.write(b"version 1").unwrap();
        f.flush().unwrap();
        let snapshot = {
            let store = f.into_storage().unwrap();
            let snap = store.snapshot();
            let mut f2 = SgxFile::open(store, [9u8; 16], opts(PfsMode::Intel)).unwrap();
            f2.seek(0).unwrap();
            f2.write(b"version 2").unwrap();
            let store = f2.into_storage().unwrap();
            (snap, store)
        };
        let (old_snap, mut store) = snapshot;
        store.restore(old_snap); // the rollback attack
        let mut f = SgxFile::open(store, [9u8; 16], opts(PfsMode::Intel)).unwrap();
        let mut buf = [0u8; 9];
        f.read(&mut buf).unwrap();
        assert_eq!(&buf, b"version 1", "rollback silently succeeds (by design)");
    }

    #[test]
    fn seek_beyond_end_refused() {
        let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], opts(PfsMode::Intel)).unwrap();
        f.write(b"12345").unwrap();
        assert!(f.seek(5).is_ok());
        assert!(matches!(f.seek(6), Err(PfsError::Range(_))));
    }

    #[test]
    fn set_size_extends_with_zeros() {
        let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], opts(PfsMode::Intel)).unwrap();
        f.write(b"abc").unwrap();
        f.set_size(10_000).unwrap();
        f.seek(9_000).unwrap();
        let mut buf = [0xFFu8; 16];
        assert_eq!(f.read(&mut buf).unwrap(), 16);
        assert_eq!(buf, [0u8; 16]);
        // Original data intact.
        f.seek(0).unwrap();
        let mut b3 = [0u8; 3];
        f.read(&mut b3).unwrap();
        assert_eq!(&b3, b"abc");
    }

    #[test]
    fn set_size_truncates() {
        let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], opts(PfsMode::Intel)).unwrap();
        f.write(&vec![7u8; 9000]).unwrap();
        f.set_size(100).unwrap();
        assert_eq!(f.size(), 100);
        assert_eq!(f.tell(), 100, "position clamped");
        // Re-extend: the dropped tail reads as zeros, not stale data.
        f.set_size(9000).unwrap();
        f.seek(4096).unwrap();
        let mut buf = [0xFFu8; 8];
        f.read(&mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn random_overwrites_consistent() {
        use rand::{Rng, SeedableRng};
        both_modes(|mode| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let size = 64 * 1024;
            let mut model = vec![0u8; size];
            let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], opts(mode)).unwrap();
            f.write(&model).unwrap();
            for _ in 0..100 {
                let at = rng.gen_range(0..size - 512);
                let len = rng.gen_range(1..512);
                let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                model[at..at + len].copy_from_slice(&data);
                f.seek(at as u64).unwrap();
                f.write(&data).unwrap();
            }
            f.flush().unwrap();
            f.seek(0).unwrap();
            let mut back = vec![0u8; size];
            f.read(&mut back).unwrap();
            assert_eq!(back, model, "{mode:?}");
        });
    }

    #[test]
    fn small_cache_still_correct() {
        // Cache pressure forces constant evict/reload with write-back.
        let mut o = opts(PfsMode::Intel);
        o.cache_nodes = 4;
        let data: Vec<u8> = (0..300_000u32).map(|i| (i * 7 % 253) as u8).collect();
        let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], o.clone()).unwrap();
        f.write(&data).unwrap();
        let store = f.into_storage().unwrap();
        let mut f = SgxFile::open(store, [1u8; 16], o).unwrap();
        let mut back = vec![0u8; data.len()];
        f.read(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn profiler_sees_memset_only_in_intel_mode() {
        use twine_sgx::SimClock;
        for (mode, expect_memset) in [(PfsMode::Intel, true), (PfsMode::Optimised, false)] {
            let prof = PfsProfiler::new(SimClock::new());
            let mut o = opts(mode);
            o.profiler = Some(prof.clone());
            o.cache_nodes = 4;
            let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], o).unwrap();
            f.write(&vec![1u8; 100_000]).unwrap();
            f.flush().unwrap();
            let memset = prof.snapshot().get(PfsCategory::Memset);
            if expect_memset {
                assert!(memset > 0, "Intel mode must record memset work");
            } else {
                // Only the rare semantic zeroing of absent nodes.
                let crypto = prof.snapshot().get(PfsCategory::Crypto);
                assert!(crypto > 0);
            }
        }
    }

    #[test]
    fn journal_mode_roundtrip_and_cleanup() {
        both_modes(|mode| {
            let data: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
            let mut f = SgxFile::create(MemStorage::new(), [11u8; 16], jopts(mode)).unwrap();
            f.write(&data).unwrap();
            f.flush().unwrap();
            let store = f.into_storage().unwrap();
            // No journal residue after a clean flush.
            assert!(store.node_count() <= natural_span(data.len() as u64));
            let mut f = SgxFile::open(store, [11u8; 16], jopts(mode)).unwrap();
            let mut back = vec![0u8; data.len()];
            f.read(&mut back).unwrap();
            assert_eq!(back, data, "{mode:?}");
        });
    }

    #[test]
    fn journal_small_cache_consistent() {
        // Cache pressure inside and outside flushes must not leak
        // unjournalled home writes (the evict_one guard).
        let mut o = jopts(PfsMode::Intel);
        o.cache_nodes = 4;
        let data: Vec<u8> = (0..300_000u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut f = SgxFile::create(MemStorage::new(), [12u8; 16], o.clone()).unwrap();
        f.write(&data).unwrap();
        f.flush().unwrap();
        let store = f.into_storage().unwrap();
        let mut f = SgxFile::open(store, [12u8; 16], o).unwrap();
        let mut back = vec![0u8; data.len()];
        f.read(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn committed_journal_replayed_on_open() {
        // Crash after the commit record but before the home writes: the
        // next open must replay to the post-state.
        let mut f = SgxFile::create(MemStorage::new(), [13u8; 16], jopts(PfsMode::Intel)).unwrap();
        f.write(b"state A").unwrap();
        f.flush().unwrap();
        let pre = f.into_storage().unwrap();
        // Record the write stream of the next transaction.
        let mut f = SgxFile::open(pre, [13u8; 16], jopts(PfsMode::Intel)).unwrap();
        f.seek(0).unwrap();
        f.write(b"state B").unwrap();
        f.flush().unwrap();
        let post = f.into_storage().unwrap();
        let mut b = [0u8; 7];
        let mut f = SgxFile::open(post, [13u8; 16], jopts(PfsMode::Intel)).unwrap();
        f.read(&mut b).unwrap();
        assert_eq!(&b, b"state B");
    }

    #[test]
    fn uncommitted_journal_discarded_on_open() {
        // Simulate a crash mid-journal: hand-append journal-shaped junk
        // (header, no commit) past the natural span and reopen.
        let mut f = SgxFile::create(MemStorage::new(), [14u8; 16], jopts(PfsMode::Intel)).unwrap();
        f.write(b"stable state").unwrap();
        f.flush().unwrap();
        let mut store = f.into_storage().unwrap();
        let jstart = store.node_count().max(natural_span(12));
        let mut junk = [0u8; NODE_SIZE];
        junk[..8].copy_from_slice(JOURNAL_HEADER_MAGIC);
        junk[8..16].copy_from_slice(&3u64.to_le_bytes());
        store.write_node(jstart, &junk).unwrap();
        store.write_node(jstart + 1, &[0xEE; NODE_SIZE]).unwrap();
        let mut f = SgxFile::open(store, [14u8; 16], jopts(PfsMode::Intel)).unwrap();
        let mut b = [0u8; 12];
        f.read(&mut b).unwrap();
        assert_eq!(&b, b"stable state", "pre-state intact, junk discarded");
        assert!(f.storage_nodes() <= natural_span(12));
    }

    #[test]
    fn ocall_costs_charged_with_enclave() {
        use twine_sgx::{EnclaveBuilder, Processor};
        let enclave = Arc::new(EnclaveBuilder::new(b"pfs test").build(&Processor::new(1)));
        let clock = enclave.clock().clone();
        let before = clock.cycles();
        let o = PfsOptions {
            mode: PfsMode::Intel,
            cache_nodes: 4,
            enclave: Some(enclave.clone()),
            profiler: None,
            journal: false,
        };
        let mut f = SgxFile::create(MemStorage::new(), [1u8; 16], o).unwrap();
        f.write(&vec![1u8; 50_000]).unwrap();
        f.flush().unwrap();
        assert!(clock.cycles() > before);
        assert!(enclave.stats().ocalls > 0);
    }
}
